//! Parameter estimation: the inverse of the generator.
//!
//! The paper fits lognormal, exponential and Zipf curves to empirical
//! marginals (Figs 7, 11–14, 19) and reads two tail exponents off a CCDF
//! (Fig 17). This module provides those estimators plus goodness-of-fit
//! model selection, so the closed-loop experiments can recover Table 2
//! from a synthetic trace.

mod continuous;
mod tail;
mod zipf;

pub use continuous::{
    fit_exponential, fit_gamma, fit_lognormal, fit_normal, fit_pareto, fit_weibull, ExponentialFit,
    GammaFit, LogNormalFit, NormalFit, ParetoFit, WeibullFit,
};
pub use tail::{hill_estimator, two_regime_tail, TwoRegimeTail};
pub use zipf::{fit_zipf_points, fit_zipf_rank_frequency, ZipfFit};

use serde::{Deserialize, Serialize};

/// Error from a fitting routine (insufficient or invalid data).
#[derive(Debug, Clone, PartialEq)]
pub struct FitError {
    /// Human-readable description.
    pub message: String,
}

impl FitError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fit error: {}", self.message)
    }
}

impl std::error::Error for FitError {}

/// Ordinary least squares on `(x, y)` pairs.
///
/// Returns `(slope, intercept, r²)`. This is the backbone of the log-log
/// Zipf fits (the paper's gnuplot `fit` lines).
pub fn linear_regression(points: &[(f64, f64)]) -> Result<(f64, f64, f64), FitError> {
    if points.len() < 2 {
        return Err(FitError::new(format!(
            "linear regression needs >= 2 points, got {}",
            points.len()
        )));
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let mx = sx / n;
    let my = sy / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for &(x, y) in points {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 {
        return Err(FitError::new("linear regression: zero x-variance"));
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Ok((slope, intercept, r2))
}

/// Which distribution family best matches a positive-valued sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Family {
    /// Lognormal (the paper's duration family).
    LogNormal,
    /// Exponential (the paper's OFF-time family).
    Exponential,
    /// Pareto (heavy tail).
    Pareto,
    /// Weibull.
    Weibull,
    /// Gamma (the Padhye–Kurose stored-media alternative).
    Gamma,
}

/// Result of model selection across candidate families.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelChoice {
    /// Winning family (smallest KS distance).
    pub family: Family,
    /// KS distance of each candidate, in [`ModelChoice::CANDIDATES`] order.
    pub ks_distances: Vec<(Family, f64)>,
}

impl ModelChoice {
    /// The candidate families considered, in evaluation order.
    pub const CANDIDATES: [Family; 5] = [
        Family::LogNormal,
        Family::Exponential,
        Family::Pareto,
        Family::Weibull,
        Family::Gamma,
    ];
}

impl Family {
    /// Number of free parameters the family's fit estimates.
    pub fn n_params(self) -> usize {
        match self {
            Family::Exponential => 1,
            Family::LogNormal | Family::Pareto | Family::Weibull | Family::Gamma => 2,
        }
    }
}

/// Fits all candidate families to positive data and picks the one with the
/// smallest Kolmogorov–Smirnov distance, breaking statistical ties toward
/// parsimony.
///
/// The paper's §4.2 claim "lognormal, not as heavy as Pareto" is exactly a
/// model-selection statement; this function lets the experiments make it
/// quantitative.
///
/// Tie-break: KS distances closer than half the KS sampling scale
/// `1/√n` are statistically indistinguishable (a two-parameter family
/// that *nests* a one-parameter one, like Weibull ⊃ Exponential, always
/// wins such a coin flip on finite samples). Among candidates within that
/// band of the minimum, the family with the fewest parameters is chosen —
/// the one-standard-error rule applied to KS model selection.
pub fn select_model(data: &[f64]) -> Result<ModelChoice, FitError> {
    use crate::dist::Continuous;
    use crate::hypothesis::ks_distance;

    if data.len() < 10 {
        return Err(FitError::new("model selection needs >= 10 observations"));
    }
    let mut sorted = data.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);

    let mut ks: Vec<(Family, f64)> = Vec::new();
    if let Ok(f) = fit_lognormal(data) {
        // A fit on degenerate data can return out-of-domain parameters
        // (e.g. sigma = 0); skip the family instead of panicking.
        if let Ok(d) = crate::dist::LogNormal::new(f.mu, f.sigma) {
            ks.push((Family::LogNormal, ks_distance(&sorted, |x| d.cdf(x))));
        }
    }
    if let Ok(f) = fit_exponential(data) {
        // A fit on degenerate data can return out-of-domain parameters
        // (e.g. sigma = 0); skip the family instead of panicking.
        if let Ok(d) = crate::dist::Exponential::new(f.lambda) {
            ks.push((Family::Exponential, ks_distance(&sorted, |x| d.cdf(x))));
        }
    }
    if let Ok(f) = fit_pareto(data) {
        // A fit on degenerate data can return out-of-domain parameters
        // (e.g. sigma = 0); skip the family instead of panicking.
        if let Ok(d) = crate::dist::Pareto::new(f.xm, f.alpha) {
            ks.push((Family::Pareto, ks_distance(&sorted, |x| d.cdf(x))));
        }
    }
    if let Ok(f) = fit_weibull(data) {
        // A fit on degenerate data can return out-of-domain parameters
        // (e.g. sigma = 0); skip the family instead of panicking.
        if let Ok(d) = crate::dist::Weibull::new(f.lambda, f.k) {
            ks.push((Family::Weibull, ks_distance(&sorted, |x| d.cdf(x))));
        }
    }
    if let Ok(f) = fit_gamma(data) {
        // A fit on degenerate data can return out-of-domain parameters
        // (e.g. sigma = 0); skip the family instead of panicking.
        if let Ok(d) = crate::dist::Gamma::new(f.k, f.theta) {
            ks.push((Family::Gamma, ks_distance(&sorted, |x| d.cdf(x))));
        }
    }
    let best = ks
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .ok_or_else(|| FitError::new("no family could be fitted"))?;
    // Parsimony band: candidates this close to the minimum are within KS
    // sampling noise of each other on an n-sized sample.
    let tolerance = 0.5 / (data.len() as f64).sqrt();
    let winner = ks
        .iter()
        .filter(|(_, d)| d - best.1 <= tolerance)
        .min_by(|a, b| {
            a.0.n_params()
                .cmp(&b.0.n_params())
                .then_with(|| a.1.total_cmp(&b.1))
        })
        .unwrap_or(best); // the band always contains the minimum itself
    Ok(ModelChoice {
        family: winner.0,
        ks_distances: ks.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{LogNormal, Sample};
    use crate::rng::SeedStream;

    #[test]
    fn regression_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 - 2.0)).collect();
        let (m, b, r2) = linear_regression(&pts).unwrap();
        assert!((m - 3.0).abs() < 1e-12);
        assert!((b + 2.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn regression_rejects_degenerate() {
        assert!(linear_regression(&[(1.0, 2.0)]).is_err());
        assert!(linear_regression(&[(1.0, 2.0), (1.0, 3.0)]).is_err());
    }

    #[test]
    fn model_selection_prefers_lognormal_for_lognormal_data() {
        let d = LogNormal::new(5.23553, 1.54432).unwrap(); // paper's session ON
        let mut rng = SeedStream::new(201).rng("select");
        let xs = d.sample_n(&mut rng, 20_000);
        let choice = select_model(&xs).unwrap();
        assert_eq!(
            choice.family,
            Family::LogNormal,
            "{:?}",
            choice.ks_distances
        );
    }

    #[test]
    fn model_selection_prefers_exponential_for_exponential_data() {
        let d = crate::dist::Exponential::with_mean(203_150.0).unwrap();
        let mut rng = SeedStream::new(202).rng("select2");
        let xs = d.sample_n(&mut rng, 20_000);
        let choice = select_model(&xs).unwrap();
        assert_eq!(
            choice.family,
            Family::Exponential,
            "{:?}",
            choice.ks_distances
        );
    }
}
