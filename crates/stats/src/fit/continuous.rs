//! Maximum-likelihood fits for the continuous families the paper uses.

use super::FitError;
use serde::{Deserialize, Serialize};

/// Fitted lognormal parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormalFit {
    /// Log-location (mean of `ln x`).
    pub mu: f64,
    /// Log-scale (std dev of `ln x`).
    pub sigma: f64,
    /// Observations used.
    pub n: usize,
}

/// MLE lognormal fit: `mu, sigma` are the moments of `ln x`.
///
/// All observations must be strictly positive (the paper's `⌊t⌋+1`
/// transform guarantees this for second-resolution durations).
pub fn fit_lognormal(data: &[f64]) -> Result<LogNormalFit, FitError> {
    if data.len() < 2 {
        return Err(FitError::new("lognormal fit needs >= 2 observations"));
    }
    let mut sum = 0.0;
    for &x in data {
        if !(x > 0.0) {
            return Err(FitError::new(format!(
                "lognormal fit requires positive data, found {x}"
            )));
        }
        sum += x.ln();
    }
    let n = data.len() as f64;
    let mu = sum / n;
    let var = data.iter().map(|&x| (x.ln() - mu).powi(2)).sum::<f64>() / n;
    if var <= 0.0 {
        return Err(FitError::new("lognormal fit: zero variance in log-space"));
    }
    Ok(LogNormalFit {
        mu,
        sigma: var.sqrt(),
        n: data.len(),
    })
}

/// Fitted exponential parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExponentialFit {
    /// Rate (1 / mean).
    pub lambda: f64,
    /// Mean (the paper quotes the Fig 12 fit by its mean, 203,150 s).
    pub mean: f64,
    /// Observations used.
    pub n: usize,
}

/// MLE exponential fit: `lambda = 1 / mean(x)`.
pub fn fit_exponential(data: &[f64]) -> Result<ExponentialFit, FitError> {
    if data.is_empty() {
        return Err(FitError::new("exponential fit needs >= 1 observation"));
    }
    if data.iter().any(|&x| x < 0.0) {
        return Err(FitError::new("exponential fit requires non-negative data"));
    }
    let mean = data.iter().sum::<f64>() / data.len() as f64;
    if !(mean > 0.0) {
        return Err(FitError::new("exponential fit: zero mean"));
    }
    Ok(ExponentialFit {
        lambda: 1.0 / mean,
        mean,
        n: data.len(),
    })
}

/// Fitted normal parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormalFit {
    /// Mean.
    pub mu: f64,
    /// Standard deviation.
    pub sigma: f64,
    /// Observations used.
    pub n: usize,
}

/// MLE normal fit (sample mean / population std dev).
pub fn fit_normal(data: &[f64]) -> Result<NormalFit, FitError> {
    if data.len() < 2 {
        return Err(FitError::new("normal fit needs >= 2 observations"));
    }
    let n = data.len() as f64;
    let mu = data.iter().sum::<f64>() / n;
    let var = data.iter().map(|&x| (x - mu).powi(2)).sum::<f64>() / n;
    if var <= 0.0 {
        return Err(FitError::new("normal fit: zero variance"));
    }
    Ok(NormalFit {
        mu,
        sigma: var.sqrt(),
        n: data.len(),
    })
}

/// Fitted Pareto parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParetoFit {
    /// Scale (fitted as the sample minimum).
    pub xm: f64,
    /// Shape (tail index).
    pub alpha: f64,
    /// Observations used.
    pub n: usize,
}

/// MLE Pareto fit: `xm = min(x)`, `alpha = n / Σ ln(x / xm)`.
pub fn fit_pareto(data: &[f64]) -> Result<ParetoFit, FitError> {
    if data.len() < 2 {
        return Err(FitError::new("Pareto fit needs >= 2 observations"));
    }
    let xm = data.iter().cloned().fold(f64::INFINITY, f64::min);
    if !(xm > 0.0) {
        return Err(FitError::new("Pareto fit requires positive data"));
    }
    let s: f64 = data.iter().map(|&x| (x / xm).ln()).sum();
    if s <= 0.0 {
        return Err(FitError::new("Pareto fit: degenerate data (all equal)"));
    }
    Ok(ParetoFit {
        xm,
        alpha: data.len() as f64 / s,
        n: data.len(),
    })
}

/// Fitted Weibull parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeibullFit {
    /// Scale.
    pub lambda: f64,
    /// Shape.
    pub k: f64,
    /// Observations used.
    pub n: usize,
}

/// MLE Weibull fit via the standard fixed-point iteration on the shape.
///
/// Iterates `k ← [Σ xᵏ ln x / Σ xᵏ − mean(ln x)]⁻¹` to convergence, then
/// sets `λ = (Σ xᵏ / n)^{1/k}`.
pub fn fit_weibull(data: &[f64]) -> Result<WeibullFit, FitError> {
    if data.len() < 2 {
        return Err(FitError::new("Weibull fit needs >= 2 observations"));
    }
    if data.iter().any(|&x| !(x > 0.0)) {
        return Err(FitError::new("Weibull fit requires positive data"));
    }
    let n = data.len() as f64;
    let mean_ln: f64 = data.iter().map(|&x| x.ln()).sum::<f64>() / n;
    let mut k = 1.0_f64;
    for _ in 0..200 {
        let mut s_xk = 0.0;
        let mut s_xk_lnx = 0.0;
        for &x in data {
            let xk = x.powf(k);
            s_xk += xk;
            s_xk_lnx += xk * x.ln();
        }
        let denom = s_xk_lnx / s_xk - mean_ln;
        if !(denom > 0.0) {
            return Err(FitError::new("Weibull fit: iteration diverged"));
        }
        let k_new = 1.0 / denom;
        if (k_new - k).abs() < 1e-10 * k {
            k = k_new;
            break;
        }
        // Damping keeps the iteration stable for very skewed data.
        k = 0.5 * (k + k_new);
    }
    let lambda = (data.iter().map(|&x| x.powf(k)).sum::<f64>() / n).powf(1.0 / k);
    if !(lambda > 0.0) || !lambda.is_finite() || !k.is_finite() {
        return Err(FitError::new("Weibull fit: non-finite result"));
    }
    Ok(WeibullFit {
        lambda,
        k,
        n: data.len(),
    })
}

/// Fitted gamma parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GammaFit {
    /// Shape.
    pub k: f64,
    /// Scale.
    pub theta: f64,
    /// Observations used.
    pub n: usize,
}

/// Approximate-MLE gamma fit via the Minka/generalized-Newton closed
/// start `k ≈ (3 − s + sqrt((s−3)² + 24s)) / (12s)` with
/// `s = ln(mean) − mean(ln x)`, refined by two Newton steps on the
/// digamma-free surrogate; `theta = mean / k`.
pub fn fit_gamma(data: &[f64]) -> Result<GammaFit, FitError> {
    if data.len() < 2 {
        return Err(FitError::new("gamma fit needs >= 2 observations"));
    }
    if data.iter().any(|&x| !(x > 0.0)) {
        return Err(FitError::new("gamma fit requires positive data"));
    }
    let n = data.len() as f64;
    let mean = data.iter().sum::<f64>() / n;
    let mean_ln = data.iter().map(|&x| x.ln()).sum::<f64>() / n;
    let s = mean.ln() - mean_ln;
    if !(s > 0.0) {
        return Err(FitError::new(
            "gamma fit: degenerate data (zero log-spread)",
        ));
    }
    let k = (3.0 - s + ((s - 3.0) * (s - 3.0) + 24.0 * s).sqrt()) / (12.0 * s);
    if !(k > 0.0) || !k.is_finite() {
        return Err(FitError::new("gamma fit: non-finite shape"));
    }
    Ok(GammaFit {
        k,
        theta: mean / k,
        n: data.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exponential, LogNormal, Pareto, Sample, Weibull};
    use crate::rng::SeedStream;

    #[test]
    fn lognormal_recovers_paper_params() {
        // Table 2 intra-session interarrival parameters.
        let d = LogNormal::new(4.89991, 1.32074).unwrap();
        let mut rng = SeedStream::new(301).rng("fit-ln");
        let xs = d.sample_n(&mut rng, 50_000);
        let f = fit_lognormal(&xs).unwrap();
        assert!((f.mu - 4.89991).abs() < 0.02, "mu {}", f.mu);
        assert!((f.sigma - 1.32074).abs() < 0.02, "sigma {}", f.sigma);
    }

    #[test]
    fn lognormal_rejects_nonpositive() {
        assert!(fit_lognormal(&[1.0, 0.0, 2.0]).is_err());
        assert!(fit_lognormal(&[1.0]).is_err());
        assert!(fit_lognormal(&[2.0, 2.0, 2.0]).is_err());
    }

    #[test]
    fn exponential_recovers_paper_mean() {
        let d = Exponential::with_mean(203_150.0).unwrap();
        let mut rng = SeedStream::new(302).rng("fit-exp");
        let xs = d.sample_n(&mut rng, 100_000);
        let f = fit_exponential(&xs).unwrap();
        assert!((f.mean / 203_150.0 - 1.0).abs() < 0.02, "mean {}", f.mean);
    }

    #[test]
    fn exponential_rejects_negative() {
        assert!(fit_exponential(&[-1.0, 2.0]).is_err());
        assert!(fit_exponential(&[]).is_err());
    }

    #[test]
    fn pareto_recovers_params() {
        let d = Pareto::new(10.0, 1.8).unwrap();
        let mut rng = SeedStream::new(303).rng("fit-par");
        let xs = d.sample_n(&mut rng, 100_000);
        let f = fit_pareto(&xs).unwrap();
        assert!((f.xm - 10.0).abs() < 0.05, "xm {}", f.xm);
        assert!((f.alpha - 1.8).abs() < 0.03, "alpha {}", f.alpha);
    }

    #[test]
    fn weibull_recovers_params() {
        let d = Weibull::new(250.0, 0.8).unwrap();
        let mut rng = SeedStream::new(304).rng("fit-wei");
        let xs = d.sample_n(&mut rng, 50_000);
        let f = fit_weibull(&xs).unwrap();
        assert!((f.k - 0.8).abs() < 0.02, "k {}", f.k);
        assert!((f.lambda / 250.0 - 1.0).abs() < 0.03, "lambda {}", f.lambda);
    }

    #[test]
    fn gamma_recovers_params() {
        let d = crate::dist::Gamma::new(2.5, 40.0).unwrap();
        let mut rng = SeedStream::new(306).rng("fit-gamma");
        let xs = d.sample_n(&mut rng, 50_000);
        let f = fit_gamma(&xs).unwrap();
        assert!((f.k - 2.5).abs() < 0.1, "k {}", f.k);
        assert!((f.theta - 40.0).abs() < 2.0, "theta {}", f.theta);
    }

    #[test]
    fn gamma_rejects_bad_input() {
        assert!(fit_gamma(&[1.0]).is_err());
        assert!(fit_gamma(&[1.0, -2.0]).is_err());
        assert!(fit_gamma(&[3.0, 3.0, 3.0]).is_err());
    }

    #[test]
    fn normal_recovers_params() {
        let d = crate::dist::Normal::new(-3.0, 2.5).unwrap();
        let mut rng = SeedStream::new(305).rng("fit-norm");
        let xs = d.sample_n(&mut rng, 100_000);
        let f = fit_normal(&xs).unwrap();
        assert!((f.mu + 3.0).abs() < 0.03);
        assert!((f.sigma - 2.5).abs() < 0.03);
    }
}
