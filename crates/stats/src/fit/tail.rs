//! Tail-index estimation.
//!
//! Fig 17 of the paper reads *two* tail exponents off the transfer
//! interarrival CCDF: α ≈ 2.8 for interarrivals up to 100 s and α ≈ 1
//! beyond. [`two_regime_tail`] reproduces that measurement; the Hill
//! estimator provides an independent check on the far tail.

use super::{linear_regression, FitError};
use serde::{Deserialize, Serialize};

/// Hill estimator of the tail index from the top `k` order statistics.
///
/// For `P[X > x] ~ x^{-alpha}`, returns the estimate of `alpha`.
/// `data` need not be sorted. Requires `2 <= k < data.len()` and positive
/// upper order statistics.
pub fn hill_estimator(data: &[f64], k: usize) -> Result<f64, FitError> {
    if data.len() < 3 || k < 2 || k >= data.len() {
        return Err(FitError::new(format!(
            "Hill estimator needs 2 <= k < n, got k={k}, n={}",
            data.len()
        )));
    }
    let mut sorted = data.to_vec();
    sorted.sort_unstable_by(|a, b| b.total_cmp(a)); // descending
    let xk = sorted[k];
    if !(xk > 0.0) {
        return Err(FitError::new(
            "Hill estimator requires positive order statistics",
        ));
    }
    let mean_log: f64 = sorted[..k].iter().map(|&x| (x / xk).ln()).sum::<f64>() / k as f64;
    if !(mean_log > 0.0) {
        return Err(FitError::new("Hill estimator: degenerate upper tail"));
    }
    Ok(1.0 / mean_log)
}

/// Result of the Fig 17 two-regime CCDF tail analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoRegimeTail {
    /// Tail exponent fitted on CCDF points with `x <= boundary`.
    pub alpha_short: f64,
    /// Tail exponent fitted on CCDF points with `x > boundary`.
    pub alpha_long: f64,
    /// The regime boundary used.
    pub boundary: f64,
    /// R² of the short-regime log-log fit.
    pub r2_short: f64,
    /// R² of the long-regime log-log fit.
    pub r2_long: f64,
}

/// Fits separate power-law exponents to the CCDF below and above `boundary`.
///
/// `ccdf_points` are `(x, P[X >= x])` pairs, e.g. from
/// [`crate::empirical::Ecdf::ccdf_points`]. Only points with positive `x`
/// and probability enter the log-log regressions. `min_x` discards the
/// distribution body below it (the paper reads its exponents off the tail
/// region, not the body near 1 second).
pub fn two_regime_tail(
    ccdf_points: &[(f64, f64)],
    boundary: f64,
    min_x: f64,
) -> Result<TwoRegimeTail, FitError> {
    let short: Vec<(f64, f64)> = ccdf_points
        .iter()
        .filter(|&&(x, p)| x >= min_x && x <= boundary && p > 0.0)
        .map(|&(x, p)| (x.ln(), p.ln()))
        .collect();
    let long: Vec<(f64, f64)> = ccdf_points
        .iter()
        .filter(|&&(x, p)| x > boundary && p > 0.0)
        .map(|&(x, p)| (x.ln(), p.ln()))
        .collect();
    if short.len() < 2 || long.len() < 2 {
        return Err(FitError::new(format!(
            "two-regime tail needs >= 2 points per regime, got {} and {}",
            short.len(),
            long.len()
        )));
    }
    let (ms, _, r2s) = linear_regression(&short)?;
    let (ml, _, r2l) = linear_regression(&long)?;
    Ok(TwoRegimeTail {
        alpha_short: -ms,
        alpha_long: -ml,
        boundary,
        r2_short: r2s,
        r2_long: r2l,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Pareto, Sample};
    use crate::rng::SeedStream;

    #[test]
    fn hill_recovers_pareto_index() {
        let d = Pareto::new(1.0, 1.5).unwrap();
        let mut rng = SeedStream::new(501).rng("hill");
        let xs = d.sample_n(&mut rng, 100_000);
        let alpha = hill_estimator(&xs, 5_000).unwrap();
        assert!((alpha - 1.5).abs() < 0.1, "alpha {alpha}");
    }

    #[test]
    fn hill_rejects_bad_k() {
        let xs = vec![1.0, 2.0, 3.0];
        assert!(hill_estimator(&xs, 1).is_err());
        assert!(hill_estimator(&xs, 3).is_err());
        assert!(hill_estimator(&[], 2).is_err());
    }

    #[test]
    fn two_regimes_from_synthetic_ccdf() {
        // Construct a CCDF with a kink at x = 100: slope -2.8 before,
        // -1.0 after (the paper's Fig 17 shape).
        let mut pts = Vec::new();
        for i in 1..=200 {
            let x = 1.0 + (i as f64) * 0.5; // 1.5 .. 101
            if x <= 100.0 {
                pts.push((x, x.powf(-2.8)));
            }
        }
        let c = 100f64.powf(-2.8) / 100f64.powf(-1.0); // continuity constant
        for i in 1..=100 {
            let x = 100.0 * 1.05f64.powi(i);
            pts.push((x, c * x.powf(-1.0)));
        }
        let t = two_regime_tail(&pts, 100.0, 1.0).unwrap();
        assert!(
            (t.alpha_short - 2.8).abs() < 0.01,
            "short {}",
            t.alpha_short
        );
        assert!((t.alpha_long - 1.0).abs() < 0.01, "long {}", t.alpha_long);
        assert!(t.r2_short > 0.999 && t.r2_long > 0.999);
    }

    #[test]
    fn two_regimes_need_points_on_both_sides() {
        let pts = vec![(1.0, 0.9), (2.0, 0.5), (3.0, 0.2)];
        assert!(two_regime_tail(&pts, 100.0, 0.0).is_err());
    }
}
