//! ON/OFF renewal processes.
//!
//! Figure 1 of the paper describes client activity as alternating ON and
//! OFF periods at both the session layer (ON = session, OFF = "log-off"
//! time) and the transfer layer (ON = transfer, OFF = "think" time).
//! [`OnOff`] generates such an alternation from two duration distributions.

use crate::dist::DynSample;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One ON interval produced by an [`OnOff`] process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnOffInterval {
    /// Start of the ON period (seconds).
    pub start: f64,
    /// End of the ON period (seconds).
    pub end: f64,
}

impl OnOffInterval {
    /// Duration of the ON period.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Alternating ON/OFF renewal process.
///
/// Starting at `t0` in the ON state, draws ON durations from one
/// distribution and OFF durations from another, until the horizon is
/// reached. The final ON interval is clipped to the horizon (live content
/// ends when the event ends).
pub struct OnOff<'a> {
    on: &'a dyn DynSample,
    off: &'a dyn DynSample,
}

impl<'a> OnOff<'a> {
    /// Creates the process from ON- and OFF-duration distributions.
    pub fn new(on: &'a dyn DynSample, off: &'a dyn DynSample) -> Self {
        Self { on, off }
    }

    /// Generates ON intervals from `t0` until `horizon`.
    ///
    /// Draws with non-positive duration are treated as zero (skipped for ON,
    /// instantaneous for OFF) so pathological distributions cannot wedge the
    /// loop: time always advances by at least `min_advance`.
    pub fn generate(
        &self,
        rng: &mut dyn Rng,
        t0: f64,
        horizon: f64,
        min_advance: f64,
    ) -> Vec<OnOffInterval> {
        assert!(min_advance > 0.0, "min_advance must be positive");
        let mut out = Vec::new();
        let mut t = t0;
        while t < horizon {
            let on_len = self.on.sample_dyn(rng).max(0.0);
            if on_len > 0.0 {
                let end = (t + on_len).min(horizon);
                out.push(OnOffInterval { start: t, end });
                t = end;
            }
            if t >= horizon {
                break;
            }
            let off_len = self.off.sample_dyn(rng).max(0.0);
            t += off_len.max(min_advance);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exponential, LogNormal};
    use crate::rng::SeedStream;

    #[test]
    fn intervals_ordered_and_disjoint() {
        let on = LogNormal::new(5.23553, 1.54432).unwrap(); // paper session ON
        let off = Exponential::with_mean(203_150.0).unwrap(); // paper session OFF
        let p = OnOff::new(&on, &off);
        let mut rng = SeedStream::new(801).rng("onoff");
        let ivs = p.generate(&mut rng, 0.0, 2_419_200.0, 1.0);
        assert!(!ivs.is_empty());
        for w in ivs.windows(2) {
            assert!(
                w[0].end <= w[1].start,
                "overlap: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        assert!(ivs.iter().all(|iv| iv.start < iv.end));
        assert!(ivs.last().unwrap().end <= 2_419_200.0);
    }

    #[test]
    fn clips_final_interval_to_horizon() {
        let on = Exponential::with_mean(1e9).unwrap(); // huge ON times
        let off = Exponential::with_mean(1.0).unwrap();
        let p = OnOff::new(&on, &off);
        let mut rng = SeedStream::new(802).rng("onoff2");
        let ivs = p.generate(&mut rng, 0.0, 100.0, 1.0);
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].end, 100.0);
    }

    #[test]
    fn mean_cycle_structure() {
        // With mean ON = 10 and mean OFF = 30, ~horizon/40 cycles expected.
        let on = Exponential::with_mean(10.0).unwrap();
        let off = Exponential::with_mean(30.0).unwrap();
        let p = OnOff::new(&on, &off);
        let mut rng = SeedStream::new(803).rng("onoff3");
        let ivs = p.generate(&mut rng, 0.0, 400_000.0, 0.001);
        let cycles = ivs.len() as f64;
        assert!((cycles - 10_000.0).abs() < 600.0, "cycles {cycles}");
        let on_frac: f64 = ivs.iter().map(|iv| iv.duration()).sum::<f64>() / 400_000.0;
        assert!((on_frac - 0.25).abs() < 0.02, "on fraction {on_frac}");
    }

    #[test]
    fn starts_at_t0() {
        let on = Exponential::with_mean(5.0).unwrap();
        let off = Exponential::with_mean(5.0).unwrap();
        let p = OnOff::new(&on, &off);
        let mut rng = SeedStream::new(804).rng("onoff4");
        let ivs = p.generate(&mut rng, 1_234.5, 2_000.0, 1.0);
        assert_eq!(ivs[0].start, 1_234.5);
    }
}
