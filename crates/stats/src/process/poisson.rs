//! Poisson arrival processes: homogeneous, piecewise-stationary, thinned.

use crate::dist::{Discrete, ParamError, Poisson};
use crate::rng::{u01, u01_open0};
use rand::Rng;

/// Homogeneous Poisson process with constant rate (arrivals per second).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonProcess {
    rate: f64,
}

impl PoissonProcess {
    /// Creates a homogeneous Poisson process with `rate > 0`.
    pub fn new(rate: f64) -> Result<Self, ParamError> {
        if !(rate > 0.0) || !rate.is_finite() {
            return Err(ParamError::new(format!(
                "PoissonProcess requires rate > 0, got {rate}"
            )));
        }
        Ok(Self { rate })
    }

    /// Arrival rate (events per second).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Generates sorted arrival times in `[t0, t1)` via exponential gaps.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, t0: f64, t1: f64) -> Vec<f64> {
        assert!(t0 <= t1, "empty interval");
        let mut out = Vec::new();
        let mut t = t0;
        loop {
            t += -u01_open0(rng).ln() / self.rate;
            if t >= t1 {
                break;
            }
            out.push(t);
        }
        out
    }
}

/// A time-varying arrival rate function.
pub trait RateFn {
    /// Instantaneous rate at time `t` (events per second, >= 0).
    fn rate(&self, t: f64) -> f64;

    /// An upper bound on the rate over `[t0, t1)` (for thinning).
    fn max_rate(&self, t0: f64, t1: f64) -> f64;
}

/// Piecewise-constant rate: `rates[i]` applies on
/// `[i·window, (i+1)·window)`. When `periodic`, the profile repeats
/// (indices wrap) — this models the paper's diurnal 24-hour profile.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseRate {
    rates: Vec<f64>,
    window: f64,
    periodic: bool,
}

impl PiecewiseRate {
    /// Creates a piecewise-constant rate profile.
    pub fn new(rates: Vec<f64>, window: f64, periodic: bool) -> Result<Self, ParamError> {
        if rates.is_empty() {
            return Err(ParamError::new(
                "PiecewiseRate requires at least one window",
            ));
        }
        if !(window > 0.0) || !window.is_finite() {
            return Err(ParamError::new(format!(
                "PiecewiseRate window must be > 0, got {window}"
            )));
        }
        if rates.iter().any(|&r| !(r >= 0.0) || !r.is_finite()) {
            return Err(ParamError::new(
                "PiecewiseRate rates must be finite and >= 0",
            ));
        }
        Ok(Self {
            rates,
            window,
            periodic,
        })
    }

    /// Window width in seconds.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// The raw per-window rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Total covered duration of one pass over the profile.
    pub fn span(&self) -> f64 {
        self.rates.len() as f64 * self.window
    }

    fn index_at(&self, t: f64) -> Option<usize> {
        if t < 0.0 {
            return None;
        }
        let idx = (t / self.window) as usize;
        if self.periodic {
            Some(idx % self.rates.len())
        } else if idx < self.rates.len() {
            Some(idx)
        } else {
            None
        }
    }
}

impl RateFn for PiecewiseRate {
    fn rate(&self, t: f64) -> f64 {
        self.index_at(t).map_or(0.0, |i| self.rates[i])
    }

    fn max_rate(&self, _t0: f64, _t1: f64) -> f64 {
        self.rates.iter().cloned().fold(0.0, f64::max)
    }
}

/// The paper's piecewise-stationary Poisson process (§3.4).
///
/// Within each window of the [`PiecewiseRate`] profile, arrivals form a
/// homogeneous Poisson process with that window's rate. Generation is
/// exact: per window a `Poisson(λ·w)` count is drawn and the arrivals are
/// placed uniformly.
#[derive(Debug, Clone)]
pub struct PiecewisePoisson {
    profile: PiecewiseRate,
}

impl PiecewisePoisson {
    /// Creates the process from a rate profile.
    pub fn new(profile: PiecewiseRate) -> Self {
        Self { profile }
    }

    /// The rate profile.
    pub fn profile(&self) -> &PiecewiseRate {
        &self.profile
    }

    /// Generates sorted arrival times in `[t0, t1)`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, t0: f64, t1: f64) -> Vec<f64> {
        assert!(t0 <= t1, "empty interval");
        let w = self.profile.window;
        let mut out = Vec::new();
        // Walk window boundaries covering [t0, t1).
        let mut wstart = (t0 / w).floor() * w;
        while wstart < t1 {
            let wend = wstart + w;
            let lo = wstart.max(t0);
            let hi = wend.min(t1);
            let rate = self.profile.rate(0.5 * (lo + hi));
            let len = hi - lo;
            if rate > 0.0 && len > 0.0 {
                let mean = rate * len;
                // lsw::allow(L005): mean > 0 by the guard above
                let count = Poisson::new(mean).expect("positive mean").sample_k(rng);
                let base = out.len();
                for _ in 0..count {
                    out.push(lo + u01(rng) * len);
                }
                out[base..].sort_unstable_by(f64::total_cmp);
            }
            wstart = wend;
        }
        out
    }

    /// Expected number of arrivals in `[t0, t1)`.
    pub fn expected_count(&self, t0: f64, t1: f64) -> f64 {
        let w = self.profile.window;
        let mut total = 0.0;
        let mut wstart = (t0 / w).floor() * w;
        while wstart < t1 {
            let wend = wstart + w;
            let lo = wstart.max(t0);
            let hi = wend.min(t1);
            total += self.profile.rate(0.5 * (lo + hi)) * (hi - lo).max(0.0);
            wstart = wend;
        }
        total
    }
}

/// Lewis–Shedler thinning for arbitrary rate functions.
///
/// Generates a homogeneous process at the bounding rate and keeps each
/// arrival at `t` with probability `rate(t) / max_rate`. This is the
/// mechanism behind GISMO's programmable (user-supplied) diurnal profiles.
pub struct ThinnedPoisson<F: RateFn> {
    rate_fn: F,
}

impl<F: RateFn> ThinnedPoisson<F> {
    /// Wraps a rate function.
    pub fn new(rate_fn: F) -> Self {
        Self { rate_fn }
    }

    /// The underlying rate function.
    pub fn rate_fn(&self) -> &F {
        &self.rate_fn
    }

    /// Generates sorted arrival times in `[t0, t1)`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, t0: f64, t1: f64) -> Vec<f64> {
        assert!(t0 <= t1, "empty interval");
        let lambda_max = self.rate_fn.max_rate(t0, t1);
        if !(lambda_max > 0.0) {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut t = t0;
        loop {
            t += -u01_open0(rng).ln() / lambda_max;
            if t >= t1 {
                break;
            }
            if u01(rng) * lambda_max < self.rate_fn.rate(t) {
                out.push(t);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypothesis::{ks_test, poisson_dispersion_test};
    use crate::rng::SeedStream;
    use crate::timeseries::bin_counts;

    #[test]
    fn homogeneous_count_matches_rate() {
        let p = PoissonProcess::new(2.0).unwrap();
        let mut rng = SeedStream::new(701).rng("pp");
        let arrivals = p.generate(&mut rng, 0.0, 10_000.0);
        let n = arrivals.len() as f64;
        // Expect 20,000 ± ~3·sqrt(20,000).
        assert!((n - 20_000.0).abs() < 3.0 * 20_000f64.sqrt(), "n = {n}");
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]), "sorted");
    }

    #[test]
    fn homogeneous_interarrivals_exponential() {
        let p = PoissonProcess::new(5.0).unwrap();
        let mut rng = SeedStream::new(702).rng("pp2");
        let arrivals = p.generate(&mut rng, 0.0, 5_000.0);
        let gaps: Vec<f64> = arrivals.windows(2).map(|w| w[1] - w[0]).collect();
        let d = crate::dist::Exponential::new(5.0).unwrap();
        let r = ks_test(&gaps, |x| crate::dist::Continuous::cdf(&d, x)).unwrap();
        assert!(r.accepts(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn rejects_bad_params() {
        assert!(PoissonProcess::new(0.0).is_err());
        assert!(PiecewiseRate::new(vec![], 900.0, true).is_err());
        assert!(PiecewiseRate::new(vec![1.0], 0.0, true).is_err());
        assert!(PiecewiseRate::new(vec![-1.0], 900.0, true).is_err());
    }

    #[test]
    fn piecewise_rate_lookup_and_periodicity() {
        let r = PiecewiseRate::new(vec![1.0, 2.0, 3.0], 10.0, true).unwrap();
        assert_eq!(r.rate(0.0), 1.0);
        assert_eq!(r.rate(15.0), 2.0);
        assert_eq!(r.rate(29.9), 3.0);
        assert_eq!(r.rate(30.0), 1.0); // wraps
        assert_eq!(r.rate(-5.0), 0.0);
        let r2 = PiecewiseRate::new(vec![1.0, 2.0], 10.0, false).unwrap();
        assert_eq!(r2.rate(25.0), 0.0); // beyond the profile, non-periodic
        assert_eq!(r2.max_rate(0.0, 100.0), 2.0);
    }

    #[test]
    fn piecewise_counts_follow_profile() {
        // Low / high alternating profile; counts per window must track it.
        let profile = PiecewiseRate::new(vec![0.5, 5.0], 1_000.0, true).unwrap();
        let pp = PiecewisePoisson::new(profile);
        let mut rng = SeedStream::new(703).rng("pwp");
        let arrivals = pp.generate(&mut rng, 0.0, 20_000.0);
        let counts = bin_counts(&arrivals, 1_000.0, 20_000.0);
        let lo_mean = counts.iter().step_by(2).map(|&c| c as f64).sum::<f64>() / 10.0;
        let hi_mean = counts
            .iter()
            .skip(1)
            .step_by(2)
            .map(|&c| c as f64)
            .sum::<f64>()
            / 10.0;
        assert!((lo_mean - 500.0).abs() < 100.0, "lo {lo_mean}");
        assert!((hi_mean - 5_000.0).abs() < 300.0, "hi {hi_mean}");
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]), "sorted");
    }

    #[test]
    fn piecewise_within_window_is_poisson() {
        // §3.4's claim: within a stationary window the process is Poisson.
        let profile = PiecewiseRate::new(vec![3.0], 1_000_000.0, false).unwrap();
        let pp = PiecewisePoisson::new(profile);
        let mut rng = SeedStream::new(704).rng("pwp2");
        let arrivals = pp.generate(&mut rng, 0.0, 40_000.0);
        // Dispersion of per-100s counts should be Poisson-consistent.
        let counts = bin_counts(&arrivals, 100.0, 40_000.0);
        let r = poisson_dispersion_test(&counts).unwrap();
        assert!(r.accepts(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn piecewise_expected_count() {
        let profile = PiecewiseRate::new(vec![1.0, 3.0], 100.0, true).unwrap();
        let pp = PiecewisePoisson::new(profile);
        assert!((pp.expected_count(0.0, 200.0) - 400.0).abs() < 1e-9);
        assert!((pp.expected_count(50.0, 150.0) - (50.0 + 150.0)).abs() < 1e-9);
    }

    #[test]
    fn thinning_matches_piecewise() {
        // The same profile generated by thinning must produce statistically
        // indistinguishable counts.
        let profile = PiecewiseRate::new(vec![0.5, 5.0], 1_000.0, true).unwrap();
        let thin = ThinnedPoisson::new(profile);
        let mut rng = SeedStream::new(705).rng("thin");
        let arrivals = thin.generate(&mut rng, 0.0, 20_000.0);
        let counts = bin_counts(&arrivals, 1_000.0, 20_000.0);
        let lo_mean = counts.iter().step_by(2).map(|&c| c as f64).sum::<f64>() / 10.0;
        let hi_mean = counts
            .iter()
            .skip(1)
            .step_by(2)
            .map(|&c| c as f64)
            .sum::<f64>()
            / 10.0;
        assert!((lo_mean - 500.0).abs() < 100.0, "lo {lo_mean}");
        assert!((hi_mean - 5_000.0).abs() < 300.0, "hi {hi_mean}");
    }

    #[test]
    fn thinning_zero_rate_yields_nothing() {
        let profile = PiecewiseRate::new(vec![0.0], 100.0, true).unwrap();
        let thin = ThinnedPoisson::new(profile);
        let mut rng = SeedStream::new(706).rng("thin0");
        assert!(thin.generate(&mut rng, 0.0, 1_000.0).is_empty());
    }
}
