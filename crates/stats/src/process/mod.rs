//! Arrival processes.
//!
//! The paper's central modeling claim (§3.4) is that client arrivals follow
//! a **piecewise-stationary Poisson process**: a strong diurnal profile sets
//! the mean rate per 15-minute window, and within a window arrivals are
//! Poisson. [`PiecewisePoisson`] implements exactly that; [`ThinnedPoisson`]
//! handles arbitrary (programmable) rate functions via Lewis–Shedler
//! thinning, which is how GISMO's "user-supplied diurnal function" extension
//! is realized; [`OnOff`] generates the session-layer ON/OFF alternation of
//! Figure 1.

mod onoff;
mod poisson;

pub use onoff::{OnOff, OnOffInterval};
pub use poisson::{PiecewisePoisson, PiecewiseRate, PoissonProcess, RateFn, ThinnedPoisson};
