//! Deterministic randomness plumbing.
//!
//! Every stochastic component in the workspace draws from an explicitly
//! seeded RNG so that traces, experiments and tests are reproducible
//! bit-for-bit. A single master seed fans out into independent *named
//! substreams*: the substream seed is derived by hashing the master seed
//! with a label (and optionally an index), so adding a new consumer never
//! perturbs the draws seen by existing ones.
//!
//! ```
//! use lsw_stats::rng::SeedStream;
//! use rand::RngExt;
//!
//! let seeds = SeedStream::new(7);
//! let mut a = seeds.rng("arrivals");
//! let mut b = seeds.rng("lengths");
//! // Independent streams: interleaving draws from one never affects the other.
//! let x: f64 = a.random();
//! let y: f64 = b.random();
//! assert_ne!(x, y);
//!
//! // Same label ⇒ same stream.
//! let mut a2 = seeds.rng("arrivals");
//! assert_eq!(a2.random::<f64>(), x);
//! ```

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The concrete RNG used throughout the workspace.
///
/// ChaCha8 is deterministic across platforms and rust versions, fast enough
/// for tens of millions of draws per second, and has no detectable
/// statistical defects at this round count.
pub type LswRng = ChaCha8Rng;

/// Derives independent named RNG substreams from a master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    master: u64,
}

impl SeedStream {
    /// Creates a seed stream from a master seed.
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// Returns the master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives the substream seed for `label`.
    pub fn seed(&self, label: &str) -> u64 {
        fnv1a_with(self.master, label.as_bytes())
    }

    /// Derives the substream seed for `label` and an index (e.g. per-client
    /// or per-day streams).
    pub fn seed_indexed(&self, label: &str, index: u64) -> u64 {
        let base = self.seed(label);
        // Mix in the index with splitmix64 so consecutive indices are far apart.
        splitmix64(base ^ splitmix64(index))
    }

    /// Creates an RNG for the named substream.
    pub fn rng(&self, label: &str) -> LswRng {
        LswRng::seed_from_u64(self.seed(label))
    }

    /// Creates an RNG for the named, indexed substream.
    pub fn rng_indexed(&self, label: &str, index: u64) -> LswRng {
        LswRng::seed_from_u64(self.seed_indexed(label, index))
    }

    /// Derives a child `SeedStream` namespaced under `label`, for components
    /// that themselves own multiple substreams.
    pub fn child(&self, label: &str) -> SeedStream {
        SeedStream::new(self.seed(label))
    }
}

/// FNV-1a over `bytes`, keyed by folding `key` into the initial state.
fn fnv1a_with(key: u64, bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut h = OFFSET ^ splitmix64(key);
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    // Final avalanche so short labels still produce well-mixed seeds.
    splitmix64(h)
}

/// splitmix64 finalizer — a full-avalanche 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Draws a uniform `f64` in `[0, 1)` with 53 bits of precision.
#[inline]
pub fn u01<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Take the top 53 bits of a u64; 2^-53 scaling gives [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / 9007199254740992.0)
}

/// Draws a uniform `f64` in `(0, 1]` — safe to pass to `ln()`.
#[inline]
pub fn u01_open0<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    1.0 - u01(rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_stream() {
        let s = SeedStream::new(123);
        let mut a = s.rng("x");
        let mut b = s.rng("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_differ() {
        let s = SeedStream::new(123);
        let mut a = s.rng("x");
        let mut b = s.rng("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_master_seeds_differ() {
        let a = SeedStream::new(1).seed("x");
        let b = SeedStream::new(2).seed("x");
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_differ() {
        let s = SeedStream::new(9);
        let s0 = s.seed_indexed("client", 0);
        let s1 = s.seed_indexed("client", 1);
        assert_ne!(s0, s1);
        // And they are reproducible.
        assert_eq!(s0, s.seed_indexed("client", 0));
    }

    #[test]
    fn child_namespacing() {
        let s = SeedStream::new(9);
        let c = s.child("sub");
        assert_ne!(c.seed("x"), s.seed("x"));
        assert_eq!(c.seed("x"), s.child("sub").seed("x"));
    }

    #[test]
    fn u01_in_range() {
        let mut r = SeedStream::new(5).rng("u");
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        let mut sum = 0.0;
        const N: usize = 100_000;
        for _ in 0..N {
            let x = u01(&mut r);
            assert!((0.0..1.0).contains(&x));
            min = min.min(x);
            max = max.max(x);
            sum += x;
        }
        // Mean of U[0,1) is 0.5 with sd ~ 0.000913 at N = 1e5.
        assert!((sum / N as f64 - 0.5).abs() < 0.005);
        assert!(min < 0.01 && max > 0.99);
    }

    #[test]
    fn u01_open0_never_zero() {
        let mut r = SeedStream::new(5).rng("u");
        for _ in 0..10_000 {
            let x = u01_open0(&mut r);
            assert!(x > 0.0 && x <= 1.0);
            assert!(x.ln().is_finite());
        }
    }
}
