//! Empirical statistics: summaries, ECDF/CCDF, histograms, rank-frequency.
//!
//! These are the building blocks of every marginal-distribution figure in
//! the paper: the *frequency* panels are (log-binned) histograms, the
//! *cumulative* panels are ECDFs, the *CCDF* panels are their complements,
//! and the Fig 2 / Fig 7 popularity-vs-rank panels are [`RankFrequency`]
//! tables.

use serde::{Deserialize, Serialize};

/// Moment and quantile summary of a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Population variance (divides by n).
    pub variance: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Coefficient of variation (σ/μ); `NaN` when the mean is 0.
    pub cv: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 25th percentile.
    pub p25: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Sample skewness (third standardized moment).
    pub skewness: f64,
}

impl Summary {
    /// Computes a summary of `data`. Returns `None` for empty input.
    pub fn from_data(data: &[f64]) -> Option<Self> {
        if data.is_empty() {
            return None;
        }
        let n = data.len();
        let nf = n as f64;
        let mean = data.iter().sum::<f64>() / nf;
        let mut m2 = 0.0;
        let mut m3 = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in data {
            let d = x - mean;
            m2 += d * d;
            m3 += d * d * d;
            min = min.min(x);
            max = max.max(x);
        }
        let variance = m2 / nf;
        let std_dev = variance.sqrt();
        let skewness = if std_dev > 0.0 {
            (m3 / nf) / std_dev.powi(3)
        } else {
            0.0
        };
        let mut sorted: Vec<f64> = data.to_vec();
        sorted.sort_unstable_by(f64::total_cmp);
        let q = |p: f64| quantile_sorted(&sorted, p);
        Some(Self {
            n,
            mean,
            variance,
            std_dev,
            cv: if mean != 0.0 {
                std_dev / mean
            } else {
                f64::NAN
            },
            min,
            max,
            median: q(0.5),
            p25: q(0.25),
            p75: q(0.75),
            p95: q(0.95),
            p99: q(0.99),
            skewness,
        })
    }
}

/// Linear-interpolation quantile of a pre-sorted slice.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let p = p.clamp(0.0, 1.0);
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = (lo + 1).min(sorted.len() - 1);
    let frac = pos - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Empirical cumulative distribution function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from observations (NaNs are rejected by debug assert
    /// and sorted to the end otherwise).
    pub fn new(mut data: Vec<f64>) -> Self {
        debug_assert!(data.iter().all(|x| !x.is_nan()), "ECDF input contains NaN");
        data.sort_unstable_by(f64::total_cmp);
        Self { sorted: data }
    }

    /// Number of observations.
    pub fn n(&self) -> usize {
        self.sorted.len()
    }

    /// `P[X <= x]`.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        self.sorted.partition_point(|&v| v <= x) as f64 / self.sorted.len() as f64
    }

    /// `P[X >= x]` — the paper plots CCDFs as `P[X >= x]`, hence the
    /// non-strict inequality.
    pub fn ccdf_ge(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let below = self.sorted.partition_point(|&v| v < x);
        (self.sorted.len() - below) as f64 / self.sorted.len() as f64
    }

    /// Quantile by linear interpolation.
    pub fn quantile(&self, p: f64) -> f64 {
        quantile_sorted(&self.sorted, p)
    }

    /// Step points `(x_i, i/n)` with duplicates collapsed — ready to plot.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            let x = self.sorted[i];
            let mut j = i + 1;
            while j < n && self.sorted[j] == x {
                j += 1;
            }
            out.push((x, j as f64 / n as f64));
            i = j;
        }
        out
    }

    /// CCDF step points `(x_i, P[X >= x_i])` with duplicates collapsed.
    pub fn ccdf_points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            let x = self.sorted[i];
            let mut j = i + 1;
            while j < n && self.sorted[j] == x {
                j += 1;
            }
            out.push((x, (n - i) as f64 / n as f64));
            i = j;
        }
        out
    }

    /// Sorted backing data (for fitters that want order statistics).
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

/// How histogram bin edges are laid out.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Binning {
    /// `nbins` equal-width bins covering `[lo, hi]`.
    Linear {
        /// Inclusive lower edge.
        lo: f64,
        /// Inclusive upper edge.
        hi: f64,
        /// Number of bins (>= 1).
        nbins: usize,
    },
    /// Logarithmically spaced bins covering `[lo, hi]`, `lo > 0`, with
    /// `per_decade` bins per factor of 10 — what the paper's log-x
    /// frequency panels effectively use.
    Log {
        /// Inclusive lower edge (> 0).
        lo: f64,
        /// Inclusive upper edge.
        hi: f64,
        /// Bins per decade (>= 1).
        per_decade: usize,
    },
}

/// A histogram with either linear or logarithmic bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    binning: Binning,
    edges: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
    /// Observations falling below the first edge / above the last.
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates an empty histogram with the given binning.
    pub fn new(binning: Binning) -> Self {
        let edges = match binning {
            Binning::Linear { lo, hi, nbins } => {
                assert!(lo < hi && nbins >= 1, "invalid linear binning");
                (0..=nbins)
                    .map(|i| lo + (hi - lo) * i as f64 / nbins as f64)
                    .collect::<Vec<f64>>()
            }
            Binning::Log { lo, hi, per_decade } => {
                assert!(
                    lo > 0.0 && lo < hi && per_decade >= 1,
                    "invalid log binning"
                );
                let decades = (hi / lo).log10();
                let nbins = (decades * per_decade as f64).ceil() as usize;
                let nbins = nbins.max(1);
                let mut edges: Vec<f64> = (0..=nbins)
                    .map(|i| lo * 10f64.powf(decades * i as f64 / nbins as f64))
                    .collect();
                // Pin the endpoints exactly so boundary observations are
                // never misclassified as under/overflow by powf round-off.
                edges[0] = lo;
                edges[nbins] = hi;
                edges
            }
        };
        let nbins = edges.len() - 1;
        Self {
            binning,
            edges,
            counts: vec![0; nbins],
            total: 0,
            underflow: 0,
            overflow: 0,
        }
    }

    /// Builds a histogram directly from data.
    pub fn from_data(binning: Binning, data: &[f64]) -> Self {
        let mut h = Self::new(binning);
        for &x in data {
            h.add(x);
        }
        h
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        let first = self.edges[0];
        // lsw::allow(L005): constructor guarantees at least two edges
        let last = *self.edges.last().expect("edges non-empty");
        if x < first {
            self.underflow += 1;
            return;
        }
        if x > last {
            self.overflow += 1;
            return;
        }
        let idx = match self.binning {
            Binning::Linear { lo, hi, nbins } => {
                (((x - lo) / (hi - lo) * nbins as f64) as usize).min(nbins - 1)
            }
            Binning::Log { .. } => {
                // Binary search over the (sorted) edges.
                let i = self.edges.partition_point(|&e| e <= x);
                i.saturating_sub(1).min(self.counts.len() - 1)
            }
        };
        self.counts[idx] += 1;
    }

    /// Number of bins.
    pub fn nbins(&self) -> usize {
        self.counts.len()
    }

    /// Bin edges (`nbins + 1` values).
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Raw counts per bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations offered (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below the first edge.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations above the last edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Geometric (log bins) or arithmetic (linear bins) bin centers.
    pub fn centers(&self) -> Vec<f64> {
        self.edges
            .windows(2)
            .map(|w| match self.binning {
                Binning::Linear { .. } => 0.5 * (w[0] + w[1]),
                Binning::Log { .. } => (w[0] * w[1]).sqrt(),
            })
            .collect()
    }

    /// Relative frequency per bin: `count / total`. This matches the
    /// "Frequency" axis of the paper's marginal plots.
    pub fn frequencies(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Density per bin: `count / (total · width)` — integrates to ≤ 1.
    pub fn densities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.edges
            .windows(2)
            .zip(&self.counts)
            .map(|(w, &c)| c as f64 / (self.total as f64 * (w[1] - w[0])))
            .collect()
    }

    /// `(center, frequency)` pairs with empty bins skipped — plot-ready.
    pub fn frequency_points(&self) -> Vec<(f64, f64)> {
        self.centers()
            .into_iter()
            .zip(self.frequencies())
            .filter(|&(_, f)| f > 0.0)
            .collect()
    }
}

/// Rank-frequency (popularity) table: entities sorted by descending count.
///
/// Drives Fig 2 (AS popularity) and Fig 7 (client interest profile).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankFrequency {
    /// Counts sorted descending; rank `k` (1-based) has count `counts[k-1]`.
    counts: Vec<u64>,
    total: u64,
}

impl RankFrequency {
    /// Builds a rank-frequency table from per-entity counts (zeros dropped).
    pub fn from_counts(mut counts: Vec<u64>) -> Self {
        counts.retain(|&c| c > 0);
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total = counts.iter().sum();
        Self { counts, total }
    }

    /// Number of ranked entities.
    pub fn n(&self) -> usize {
        self.counts.len()
    }

    /// Total of all counts.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count at 1-based rank `k`.
    pub fn count_at(&self, k: usize) -> Option<u64> {
        self.counts.get(k - 1).copied()
    }

    /// `(rank, relative frequency)` pairs — the paper's Fig 7 axes.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| ((i + 1) as f64, c as f64 / self.total as f64))
            .collect()
    }

    /// `(rank, raw count)` pairs.
    pub fn count_points(&self) -> Vec<(f64, f64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| ((i + 1) as f64, c as f64))
            .collect()
    }

    /// Fraction of the total commanded by the top `k` entities.
    pub fn top_k_share(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let s: u64 = self.counts.iter().take(k).sum();
        s as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::from_data(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.variance, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!((s.skewness).abs() < 1e-12);
        assert!(Summary::from_data(&[]).is_none());
    }

    #[test]
    fn summary_skewness_sign() {
        let right = Summary::from_data(&[1.0, 1.0, 1.0, 10.0]).unwrap();
        assert!(right.skewness > 0.0);
        let left = Summary::from_data(&[-10.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(left.skewness < 0.0);
    }

    #[test]
    fn ecdf_cdf_and_ccdf() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(e.cdf(0.0), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.0), 0.75);
        assert_eq!(e.cdf(10.0), 1.0);
        // CCDF uses >= (paper convention).
        assert_eq!(e.ccdf_ge(2.0), 0.75);
        assert_eq!(e.ccdf_ge(3.0), 0.25);
        assert_eq!(e.ccdf_ge(3.1), 0.0);
        // CDF + strict-CCDF identity at non-atoms.
        assert!((e.cdf(2.5) + e.ccdf_ge(2.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ecdf_points_collapse_duplicates() {
        let e = Ecdf::new(vec![1.0, 1.0, 2.0]);
        assert_eq!(e.points(), vec![(1.0, 2.0 / 3.0), (2.0, 1.0)]);
        assert_eq!(e.ccdf_points(), vec![(1.0, 1.0), (2.0, 1.0 / 3.0)]);
    }

    #[test]
    fn linear_histogram_counts() {
        let h = Histogram::from_data(
            Binning::Linear {
                lo: 0.0,
                hi: 10.0,
                nbins: 5,
            },
            &[0.5, 1.5, 2.5, 2.6, 9.9, 10.0, -1.0, 11.0],
        );
        assert_eq!(h.nbins(), 5);
        assert_eq!(h.counts(), &[2, 2, 0, 0, 2]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn log_histogram_decades() {
        let h = Histogram::new(Binning::Log {
            lo: 1.0,
            hi: 1_000.0,
            per_decade: 2,
        });
        assert_eq!(h.nbins(), 6);
        let mut h = h;
        h.add(1.0);
        h.add(5.0);
        h.add(500.0);
        h.add(1_000.0); // exactly the last edge: belongs to the last bin
        assert_eq!(h.counts().iter().sum::<u64>(), 4);
        assert_eq!(h.overflow(), 0);
        // Frequencies sum to 1 when nothing under/overflows.
        let s: f64 = h.frequencies().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn densities_integrate_to_one() {
        let h = Histogram::from_data(
            Binning::Linear {
                lo: 0.0,
                hi: 1.0,
                nbins: 10,
            },
            &(0..1000).map(|i| i as f64 / 1000.0).collect::<Vec<_>>(),
        );
        let integral: f64 = h
            .densities()
            .iter()
            .zip(h.edges().windows(2))
            .map(|(d, w)| d * (w[1] - w[0]))
            .sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_frequency_sorts_and_normalizes() {
        let rf = RankFrequency::from_counts(vec![5, 0, 20, 10]);
        assert_eq!(rf.n(), 3);
        assert_eq!(rf.total(), 35);
        assert_eq!(rf.count_at(1), Some(20));
        assert_eq!(rf.count_at(3), Some(5));
        assert_eq!(rf.count_at(4), None);
        let pts = rf.points();
        assert_eq!(pts[0], (1.0, 20.0 / 35.0));
        assert!((rf.top_k_share(2) - 30.0 / 35.0).abs() < 1e-12);
        assert_eq!(rf.top_k_share(100), 1.0);
    }
}
