//! Parallel-execution policy and deterministic merge primitives.
//!
//! The workspace parallelizes generation and characterization without ever
//! letting thread count change a result: workers own *contiguous* chunks
//! of a work list, produce locally ordered runs, and the runs are combined
//! with an order-preserving k-way merge. [`Parallelism`] is the single
//! knob that says how many workers to use; [`merge_sorted_runs`] is the
//! combiner whose output is provably identical to a global stable sort of
//! the concatenated runs — so one worker and sixty-four workers emit the
//! same bytes.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::ops::Range;

/// Environment variable overriding the automatic worker count.
pub const THREADS_ENV: &str = "LSW_THREADS";

/// How many worker threads parallel stages may use.
///
/// The default ([`Parallelism::auto`]) reads the `LSW_THREADS` environment
/// variable, falling back to the number of available cores. Worker count
/// never affects results — only wall-clock time — so `auto` is always
/// safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// Worker count from `LSW_THREADS`, else the number of available
    /// cores, else 1.
    pub fn auto() -> Self {
        let from_env = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        let threads = from_env.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        Self { threads }
    }

    /// Exactly `threads` workers (clamped to at least one).
    pub fn fixed(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A single worker: every parallel stage degenerates to the
    /// sequential path.
    pub fn sequential() -> Self {
        Self::fixed(1)
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Splits `0..n` into at most [`threads`](Self::threads) contiguous,
    /// near-equal, non-empty ranges covering every index exactly once.
    ///
    /// Chunks are only a scheduling decision: callers must combine chunk
    /// results in chunk order (or via [`merge_sorted_runs`]) so the split
    /// never shows in the output.
    pub fn chunk_ranges(&self, n: usize) -> Vec<Range<usize>> {
        let workers = self.threads.min(n).max(1);
        if n == 0 {
            // A single empty chunk, so callers always get >= 1 range.
            #[allow(clippy::single_range_in_vec_init)]
            return vec![0..0];
        }
        let base = n / workers;
        let extra = n % workers;
        let mut ranges = Vec::with_capacity(workers);
        let mut start = 0;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            ranges.push(start..start + len);
            start += len;
        }
        debug_assert_eq!(start, n);
        ranges
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::auto()
    }
}

/// An `f64` sort key ordered by [`f64::total_cmp`], usable wherever an
/// [`Ord`] key is required (notably [`merge_sorted_runs`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F64Key(pub f64);

impl Eq for F64Key {}

impl PartialOrd for F64Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64Key {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// One run head inside the merge heap. Ordered so the `BinaryHeap`
/// (a max-heap) pops the smallest `(key, run)` first: equal keys resolve
/// to the earliest run, which is what makes the merge equivalent to a
/// *stable* sort of the concatenated runs.
struct Head<T, K: Ord> {
    key: K,
    run: usize,
    item: T,
}

impl<T, K: Ord> PartialEq for Head<T, K> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.run == other.run
    }
}

impl<T, K: Ord> Eq for Head<T, K> {}

impl<T, K: Ord> PartialOrd for Head<T, K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T, K: Ord> Ord for Head<T, K> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the max-heap must surface the minimum head.
        (&other.key, other.run).cmp(&(&self.key, self.run))
    }
}

/// K-way merges locally sorted runs into one globally sorted vector.
///
/// Each input run must already be sorted (stably) by `key`. The output is
/// exactly what a *stable* sort by `key` of the concatenated runs would
/// produce: ties are resolved first by run index, then by position within
/// the run. A binary heap over the run heads makes the merge
/// `O(n log k)` for `n` total elements across `k` runs.
///
/// This is the combiner behind every chunked parallel stage: because the
/// result equals the stable sort of the chunk-order concatenation, it is
/// byte-identical no matter how many chunks the work was split into.
pub fn merge_sorted_runs<T, K, F>(runs: Vec<Vec<T>>, key: F) -> Vec<T>
where
    K: Ord,
    F: Fn(&T) -> K,
{
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<T>> = runs.into_iter().map(Vec::into_iter).collect();
    let mut heap: BinaryHeap<Head<T, K>> = BinaryHeap::with_capacity(iters.len());
    for (run, it) in iters.iter_mut().enumerate() {
        if let Some(item) = it.next() {
            heap.push(Head {
                key: key(&item),
                run,
                item,
            });
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Head { run, item, .. }) = heap.pop() {
        out.push(item);
        if let Some(next) = iters[run].next() {
            heap.push(Head {
                key: key(&next),
                run,
                item: next,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_clamps_to_one() {
        assert_eq!(Parallelism::fixed(0).threads(), 1);
        assert_eq!(Parallelism::fixed(7).threads(), 7);
        assert_eq!(Parallelism::sequential().threads(), 1);
    }

    #[test]
    fn auto_is_positive() {
        assert!(Parallelism::auto().threads() >= 1);
    }

    #[test]
    fn chunks_cover_and_balance() {
        for (n, workers) in [(10, 3), (3, 10), (1, 1), (100, 7), (8, 8)] {
            let ranges = Parallelism::fixed(workers).chunk_ranges(n);
            assert!(ranges.len() <= workers);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "chunks must be contiguous");
            }
            let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
            assert!(max - min <= 1, "chunks must be near-equal: {lens:?}");
            assert!(*min >= 1, "chunks must be non-empty: {lens:?}");
        }
    }

    #[test]
    fn empty_input_single_empty_chunk() {
        assert_eq!(Parallelism::fixed(4).chunk_ranges(0), vec![0..0]);
    }

    #[test]
    fn merge_of_sorted_runs_is_sorted() {
        let runs = vec![vec![1u32, 4, 9], vec![2, 3, 10], vec![], vec![5, 6, 7, 8]];
        let merged = merge_sorted_runs(runs, |&x| x);
        assert_eq!(merged, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn merge_ties_resolve_in_run_order() {
        // Items carry (key, origin) — equal keys must come out in run
        // order, then position order, i.e. exactly a stable sort of the
        // concatenation.
        let runs = vec![
            vec![(1, "a0"), (1, "a1"), (3, "a2")],
            vec![(1, "b0"), (2, "b1"), (3, "b2")],
        ];
        let merged = merge_sorted_runs(runs, |&(k, _)| k);
        let tags: Vec<&str> = merged.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, vec!["a0", "a1", "b0", "b1", "a2", "b2"]);
    }

    #[test]
    fn merge_equals_stable_sort_of_concatenation() {
        // Deterministic pseudo-random runs with many ties.
        let mut state = 88172645463325252u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut runs: Vec<Vec<(u8, usize)>> = Vec::new();
        let mut orig = 0usize;
        for _ in 0..5 {
            let len = (next() % 40) as usize;
            let mut run: Vec<(u8, usize)> = (0..len)
                .map(|_| {
                    let item = ((next() % 8) as u8, orig);
                    orig += 1;
                    item
                })
                .collect();
            run.sort_by_key(|&(k, _)| k);
            runs.push(run);
        }
        let mut expected: Vec<(u8, usize)> = runs.concat();
        expected.sort_by_key(|&(k, _)| k);
        assert_eq!(merge_sorted_runs(runs, |&(k, _)| k), expected);
    }

    #[test]
    fn f64key_total_order() {
        let mut keys = [
            F64Key(1.5),
            F64Key(-0.0),
            F64Key(0.0),
            F64Key(f64::NAN),
            F64Key(-2.0),
        ];
        keys.sort();
        assert_eq!(keys[0].0, -2.0);
        assert!(keys[4].0.is_nan());
    }
}
