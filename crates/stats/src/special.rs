//! Special mathematical functions used by the distribution and test code.
//!
//! Everything here is implemented from scratch with well-known, numerically
//! solid approximations:
//!
//! * [`erf`] / [`erfc`] — complementary error function via the Numerical
//!   Recipes Chebyshev approximation (absolute error < 1.2e-7), with exact
//!   symmetry handling.
//! * [`inv_norm_cdf`] — Acklam's rational approximation for the standard
//!   normal quantile, polished with one Halley step (relative error below
//!   1e-13 after refinement).
//! * [`ln_gamma`] — Lanczos approximation (g = 7, n = 9).
//! * [`gamma_p`] / [`gamma_q`] — regularized incomplete gamma functions via
//!   series / continued-fraction expansions.
//! * [`gen_harmonic`] — generalized harmonic numbers `H_{n,s}` used to
//!   normalize bounded Zipf distributions.
//! * [`riemann_zeta`] — `ζ(s)` for `s > 1`, used by the zeta distribution.

/// Machine-epsilon-scale tolerance used by iterative expansions.
const EPS: f64 = 1e-15;

/// Error function `erf(x) = 2/sqrt(pi) * ∫₀ˣ e^{-t²} dt`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Uses the Chebyshev fit from Numerical Recipes (absolute error < 1.2e-7
/// everywhere, much better near 0 after symmetry reduction).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal probability density function `φ(x)`.
pub fn norm_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse of the standard normal CDF (the probit function).
///
/// Acklam's rational approximation refined with a single Halley iteration;
/// accurate to ~1e-13 over `p ∈ (0, 1)`. Returns `-INFINITY` / `INFINITY`
/// at the endpoints and `NaN` outside `[0, 1]`.
pub fn inv_norm_cdf(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step using the exact CDF/PDF pair. Guarded for
    // the far tails where norm_pdf underflows (the initial estimate is the
    // best we can do there).
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    if u.is_finite() {
        x - u / (1.0 + x * u / 2.0)
    } else {
        x
    }
}

/// Natural logarithm of the gamma function, Lanczos approximation.
///
/// Accurate to better than 1e-10 for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7, n = 9.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// `P(a, x) = γ(a, x) / Γ(a)`; computed by series expansion for `x < a + 1`
/// and via the continued fraction for `Q(a, x)` otherwise.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p: a must be positive, got {a}");
    assert!(x >= 0.0, "gamma_p: x must be non-negative, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q: a must be positive, got {a}");
    assert!(x >= 0.0, "gamma_q: x must be non-negative, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cf(a, x)
    }
}

/// Series expansion of `P(a, x)`, convergent for `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Lentz continued fraction for `Q(a, x)`, convergent for `x >= a + 1`.
fn gamma_cf(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Generalized harmonic number `H_{n,s} = Σ_{k=1}^{n} k^{-s}`.
///
/// This is the normalization constant of a bounded Zipf distribution over
/// `n` items with exponent `s`. Exact summation; `O(n)`.
pub fn gen_harmonic(n: u64, s: f64) -> f64 {
    let mut sum = 0.0;
    for k in 1..=n {
        sum += (k as f64).powf(-s);
    }
    sum
}

/// Riemann zeta function `ζ(s)` for `s > 1`.
///
/// Computed by direct summation with an Euler–Maclaurin tail correction:
/// `Σ_{k=1}^{N} k^{-s} + N^{1-s}/(s-1) − N^{-s}/2 + s·N^{-s-1}/12`
/// (the tail runs from `N+1`, hence the negative half-term).
pub fn riemann_zeta(s: f64) -> f64 {
    assert!(s > 1.0, "riemann_zeta requires s > 1, got {s}");
    const N: u64 = 10_000;
    let mut sum = 0.0;
    for k in 1..=N {
        sum += (k as f64).powf(-s);
    }
    let n = N as f64;
    sum + n.powf(1.0 - s) / (s - 1.0) - 0.5 * n.powf(-s) + s * n.powf(-s - 1.0) / 12.0
}

/// Kolmogorov–Smirnov limiting distribution tail `Q_KS(λ)`.
///
/// `Q_KS(λ) = 2 Σ_{j≥1} (-1)^{j-1} e^{-2 j² λ²}`; this is the asymptotic
/// p-value of an observed scaled KS statistic λ.
pub fn ks_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let a2 = -2.0 * lambda * lambda;
    let mut sum = 0.0;
    let mut sign = 1.0;
    let mut prev_term = 0.0_f64;
    for j in 1..=100 {
        let term = sign * (a2 * (j as f64) * (j as f64)).exp();
        sum += term;
        if term.abs() <= 1e-12 * prev_term.abs() || term.abs() <= 1e-16 {
            return (2.0 * sum).clamp(0.0, 1.0);
        }
        prev_term = term;
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} !~ {b} (tol {tol})");
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 2e-7);
        close(erf(1.0), 0.8427007929497149, 2e-7);
        close(erf(2.0), 0.9953222650189527, 2e-7);
        close(erf(-1.0), -0.8427007929497149, 2e-7);
    }

    #[test]
    fn erfc_symmetry() {
        for &x in &[0.1, 0.5, 1.0, 2.3, 4.0] {
            close(erfc(x) + erfc(-x), 2.0, 1e-10);
        }
    }

    #[test]
    fn norm_cdf_known_values() {
        close(norm_cdf(0.0), 0.5, 2e-7);
        close(norm_cdf(1.0), 0.8413447460685429, 2e-7);
        close(norm_cdf(-1.959963984540054), 0.025, 2e-7);
        close(norm_cdf(3.0), 0.9986501019683699, 2e-7);
    }

    #[test]
    fn inv_norm_cdf_round_trip() {
        for &p in &[
            0.001, 0.01, 0.025, 0.1, 0.3, 0.5, 0.7, 0.9, 0.975, 0.99, 0.999,
        ] {
            close(norm_cdf(inv_norm_cdf(p)), p, 1e-9);
        }
    }

    #[test]
    fn inv_norm_cdf_endpoints() {
        assert_eq!(inv_norm_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(inv_norm_cdf(1.0), f64::INFINITY);
        assert!(inv_norm_cdf(-0.1).is_nan());
        assert!(inv_norm_cdf(1.1).is_nan());
        assert!(inv_norm_cdf(f64::NAN).is_nan());
    }

    #[test]
    fn ln_gamma_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-10);
        close(ln_gamma(2.0), 0.0, 1e-10);
        close(ln_gamma(5.0), (24.0_f64).ln(), 1e-9);
        close(ln_gamma(0.5), (std::f64::consts::PI).sqrt().ln(), 1e-9);
        // Γ(10) = 9! = 362880
        close(ln_gamma(10.0), (362880.0_f64).ln(), 1e-8);
    }

    #[test]
    fn gamma_p_q_complement() {
        for &(a, x) in &[(0.5, 0.2), (1.0, 1.0), (2.5, 4.0), (10.0, 3.0), (3.0, 20.0)] {
            close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-10);
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 - e^{-x}.
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-10);
        }
    }

    #[test]
    fn gamma_p_chi_square_median() {
        // Chi-square with k dof has CDF P(k/2, x/2); median of chi2(2) = 2 ln 2.
        close(gamma_p(1.0, (2.0 * (2.0_f64).ln()) / 2.0), 0.5, 1e-10);
    }

    #[test]
    fn gen_harmonic_values() {
        close(gen_harmonic(1, 1.0), 1.0, 1e-12);
        close(gen_harmonic(3, 1.0), 1.0 + 0.5 + 1.0 / 3.0, 1e-12);
        close(gen_harmonic(10, 0.0), 10.0, 1e-12);
        // H_{4,2} = 1 + 1/4 + 1/9 + 1/16
        close(
            gen_harmonic(4, 2.0),
            1.0 + 0.25 + 1.0 / 9.0 + 1.0 / 16.0,
            1e-12,
        );
    }

    #[test]
    fn riemann_zeta_known_values() {
        close(riemann_zeta(2.0), std::f64::consts::PI.powi(2) / 6.0, 1e-9);
        close(riemann_zeta(4.0), std::f64::consts::PI.powi(4) / 90.0, 1e-9);
        close(riemann_zeta(3.0), 1.2020569031595943, 1e-9);
        // The paper's transfers-per-session exponent: cross-check against a
        // brute-force partial sum with an integral tail bound.
        let s = 2.70417;
        let brute: f64 = (1..=2_000_000u64).map(|k| (k as f64).powf(-s)).sum();
        let tail = (2_000_000f64).powf(1.0 - s) / (s - 1.0);
        close(riemann_zeta(s), brute + tail, 1e-8);
    }

    #[test]
    fn ks_q_limits() {
        close(ks_q(0.0), 1.0, 1e-12);
        assert!(ks_q(10.0) < 1e-10);
        // Known value: Q_KS(1.0) ≈ 0.26999967.
        close(ks_q(1.0), 0.26999967, 1e-6);
        // Monotone decreasing.
        assert!(ks_q(0.5) > ks_q(1.0));
        assert!(ks_q(1.0) > ks_q(1.5));
    }
}
