//! Continuous uniform distribution on `[a, b)`.

use super::{Continuous, ParamError, Sample};
use crate::rng::u01;
use rand::Rng;

/// Uniform distribution on `[a, b)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    a: f64,
    b: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[a, b)`; requires `a < b` and both
    /// finite.
    pub fn new(a: f64, b: f64) -> Result<Self, ParamError> {
        if !(a.is_finite() && b.is_finite() && a < b) {
            return Err(ParamError::new(format!(
                "Uniform requires finite a < b, got [{a}, {b})"
            )));
        }
        Ok(Self { a, b })
    }

    /// Lower bound.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Upper bound.
    pub fn b(&self) -> f64 {
        self.b
    }
}

impl Sample for Uniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.a + u01(rng) * (self.b - self.a)
    }
}

impl Continuous for Uniform {
    fn pdf(&self, x: f64) -> f64 {
        if x >= self.a && x < self.b {
            1.0 / (self.b - self.a)
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        ((x - self.a) / (self.b - self.a)).clamp(0.0, 1.0)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.a + p.clamp(0.0, 1.0) * (self.b - self.a)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.a + self.b)
    }

    fn variance(&self) -> f64 {
        let w = self.b - self.a;
        w * w / 12.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedStream;

    #[test]
    fn rejects_bad_params() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(f64::NAN, 1.0).is_err());
        assert!(Uniform::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn samples_in_range_with_correct_mean() {
        let d = Uniform::new(-2.0, 6.0).unwrap();
        let mut rng = SeedStream::new(3).rng("unif");
        let xs = d.sample_n(&mut rng, 50_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(xs.iter().all(|&x| (-2.0..6.0).contains(&x)));
        assert!((mean - 2.0).abs() < 0.05);
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let d = Uniform::new(10.0, 20.0).unwrap();
        for &p in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-12);
        }
        assert_eq!(d.mean(), 15.0);
        assert!((d.variance() - 100.0 / 12.0).abs() < 1e-12);
    }
}
