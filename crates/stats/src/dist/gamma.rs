//! Gamma distribution.
//!
//! Padhye & Kurose \[26\] (the paper's related work) fit stored-media ON/OFF
//! periods with "lognormal or gamma" shapes; including gamma completes the
//! model-selection candidate set so the §4.2 "lognormal wins" claim is
//! tested against the full family the literature considered.

use super::{Continuous, ParamError, Sample};
use crate::rng::{u01, u01_open0};
use crate::special::{gamma_p, ln_gamma};
use rand::Rng;

/// Gamma distribution with shape `k > 0` and scale `theta > 0`.
///
/// Sampling uses Marsaglia & Tsang's squeeze method (with the standard
/// boost for `k < 1`), costing ~1.05 normal draws per sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    k: f64,
    theta: f64,
}

impl Gamma {
    /// Creates a gamma with shape `k > 0` and scale `theta > 0`.
    pub fn new(k: f64, theta: f64) -> Result<Self, ParamError> {
        if !(k > 0.0) || !k.is_finite() || !(theta > 0.0) || !theta.is_finite() {
            return Err(ParamError::new(format!(
                "Gamma requires k > 0 and theta > 0, got k={k}, theta={theta}"
            )));
        }
        Ok(Self { k, theta })
    }

    /// Shape parameter.
    pub fn shape(&self) -> f64 {
        self.k
    }

    /// Scale parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Marsaglia–Tsang sampler for shape >= 1 (standard scale).
    fn sample_mt<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        debug_assert!(shape >= 1.0);
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            // One standard normal via Box–Muller.
            let u1 = u01_open0(rng);
            let u2 = u01(rng);
            let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = u01_open0(rng);
            // Squeeze, then full acceptance test.
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Sample for Gamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.k >= 1.0 {
            self.theta * Self::sample_mt(self.k, rng)
        } else {
            // Boost: Gamma(k) = Gamma(k+1) · U^{1/k}.
            let g = Self::sample_mt(self.k + 1.0, rng);
            self.theta * g * u01_open0(rng).powf(1.0 / self.k)
        }
    }
}

impl Continuous for Gamma {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            return if self.k < 1.0 {
                f64::INFINITY
            } else if self.k == 1.0 {
                1.0 / self.theta
            } else {
                0.0
            };
        }
        ((self.k - 1.0) * (x / self.theta).ln()
            - x / self.theta
            - ln_gamma(self.k)
            - self.theta.ln())
        .exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(self.k, x / self.theta)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        if p == 0.0 {
            return 0.0;
        }
        if p == 1.0 {
            return f64::INFINITY;
        }
        // Bisection on the CDF (monotone); bracket by doubling.
        let mut hi = self.mean().max(self.theta);
        while self.cdf(hi) < p {
            hi *= 2.0;
        }
        let mut lo = 0.0;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo <= 1e-12 * (1.0 + hi) {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    fn mean(&self) -> f64 {
        self.k * self.theta
    }

    fn variance(&self) -> f64 {
        self.k * self.theta * self.theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedStream;

    #[test]
    fn rejects_bad_params() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::new(-1.0, 1.0).is_err());
        assert!(Gamma::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn shape_one_is_exponential() {
        let g = Gamma::new(1.0, 5.0).unwrap();
        // CDF of Exp(mean 5): 1 - e^{-x/5}.
        for &x in &[0.5, 2.0, 5.0, 20.0] {
            let expect = 1.0 - (-x / 5.0f64).exp();
            assert!((g.cdf(x) - expect).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn sample_moments_large_shape() {
        let g = Gamma::new(4.5, 2.0).unwrap();
        let mut rng = SeedStream::new(121).rng("gamma");
        let xs = g.sample_n(&mut rng, 200_000);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!((mean - 9.0).abs() < 0.05, "mean {mean}");
        assert!((var - 18.0).abs() < 0.5, "var {var}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn sample_moments_small_shape() {
        // The boosted (k < 1) path.
        let g = Gamma::new(0.4, 3.0).unwrap();
        let mut rng = SeedStream::new(122).rng("gamma2");
        let xs = g.sample_n(&mut rng, 200_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 1.2).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let g = Gamma::new(2.5, 100.0).unwrap();
        for &p in &[0.01, 0.25, 0.5, 0.75, 0.99] {
            let x = g.quantile(p);
            assert!((g.cdf(x) - p).abs() < 1e-8, "p={p}");
        }
        assert_eq!(g.quantile(0.0), 0.0);
        assert!(g.quantile(1.0).is_infinite());
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        let g = Gamma::new(3.0, 2.0).unwrap();
        let (a, b) = (1.0, 12.0);
        let n = 20_000;
        let h = (b - a) / n as f64;
        let mut acc = 0.0;
        for i in 0..n {
            let x0 = a + i as f64 * h;
            acc += 0.5 * (g.pdf(x0) + g.pdf(x0 + h)) * h;
        }
        assert!((acc - (g.cdf(b) - g.cdf(a))).abs() < 1e-6);
    }
}
