//! Weibull distribution — an alternative ON/OFF-time family offered by the
//! generator for sensitivity studies (the paper's related work fits gamma /
//! Weibull shapes to stored-media session times).

use super::{Continuous, ParamError, Sample};
use crate::rng::u01_open0;
use crate::special::ln_gamma;
use rand::Rng;

/// Weibull distribution with scale `lambda > 0` and shape `k > 0`:
/// `P[X > x] = exp(-(x/lambda)^k)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    lambda: f64,
    k: f64,
}

impl Weibull {
    /// Creates a Weibull with scale `lambda > 0` and shape `k > 0`.
    pub fn new(lambda: f64, k: f64) -> Result<Self, ParamError> {
        if !(lambda > 0.0) || !lambda.is_finite() || !(k > 0.0) || !k.is_finite() {
            return Err(ParamError::new(format!(
                "Weibull requires lambda > 0 and k > 0, got lambda={lambda}, k={k}"
            )));
        }
        Ok(Self { lambda, k })
    }

    /// Scale parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Shape parameter.
    pub fn shape(&self) -> f64 {
        self.k
    }
}

impl Sample for Weibull {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lambda * (-u01_open0(rng).ln()).powf(1.0 / self.k)
    }
}

impl Continuous for Weibull {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        let z = x / self.lambda;
        (self.k / self.lambda) * z.powf(self.k - 1.0) * (-z.powf(self.k)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            -(-(x / self.lambda).powf(self.k)).exp_m1()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        self.lambda * (-(-p).ln_1p()).powf(1.0 / self.k)
    }

    fn mean(&self) -> f64 {
        self.lambda * (ln_gamma(1.0 + 1.0 / self.k)).exp()
    }

    fn variance(&self) -> f64 {
        let g2 = (ln_gamma(1.0 + 2.0 / self.k)).exp();
        let g1 = (ln_gamma(1.0 + 1.0 / self.k)).exp();
        self.lambda * self.lambda * (g2 - g1 * g1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedStream;

    #[test]
    fn rejects_bad_params() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, 0.0).is_err());
        assert!(Weibull::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn shape_one_is_exponential() {
        // Weibull(lambda, 1) == Exponential(rate 1/lambda).
        let w = Weibull::new(5.0, 1.0).unwrap();
        assert!((w.mean() - 5.0).abs() < 1e-9);
        assert!((w.cdf(5.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn sample_mean_converges() {
        let d = Weibull::new(100.0, 0.7).unwrap();
        let mut rng = SeedStream::new(51).rng("weib");
        let xs = d.sample_n(&mut rng, 200_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(
            (mean / d.mean() - 1.0).abs() < 0.02,
            "mean {mean} vs {}",
            d.mean()
        );
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let d = Weibull::new(10.0, 2.5).unwrap();
        for &p in &[0.0, 0.2, 0.5, 0.8, 0.99] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-10);
        }
    }
}
