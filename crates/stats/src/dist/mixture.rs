//! Finite mixtures of continuous distributions.
//!
//! The paper's transfer-bandwidth marginal (Fig 20) is *bimodal*: spikes at
//! client connection speeds (modem tiers, DSL, cable) plus a low
//! congestion-bound mode covering ~10% of transfers. [`Mixture`] models
//! exactly this: weighted components sampled by first drawing a component,
//! then drawing from it.
//!
//! Components are stored behind the object-safe [`DynContinuous`] view
//! (the generic [`Continuous`] trait is not dyn-compatible); the mixture
//! itself still implements the generic traits, so it composes — e.g.
//! inside [`super::Truncated`].
//!
//! The component pick defaults to a cumulative-weight search (one uniform)
//! and can be switched to a Vose alias table (two uniforms, `O(1)`) via
//! [`Mixture::with_backend`]. As with [`super::ZipfTable`], the backends
//! consume the RNG stream differently, so the choice is explicit and part
//! of a workload's determinism contract.

use super::{AliasTable, Continuous, DynContinuous, ParamError, Sample, SamplerBackend};
use crate::rng::u01;
use rand::Rng;

/// Weighted mixture of continuous distributions.
pub struct Mixture {
    components: Vec<Box<dyn DynContinuous + Send + Sync>>,
    /// Cumulative, normalized weights; same length as `components`.
    cum_weights: Vec<f64>,
    weights: Vec<f64>,
    /// Present iff the alias picker was selected.
    picker: Option<AliasTable>,
}

impl std::fmt::Debug for Mixture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mixture")
            .field("k", &self.components.len())
            .field("weights", &self.weights)
            .field("backend", &self.backend())
            .finish()
    }
}

impl Mixture {
    /// Creates a mixture from `(weight, component)` pairs with the default
    /// inverse-CDF component picker.
    ///
    /// Weights must be positive; they are normalized internally.
    pub fn new(
        parts: Vec<(f64, Box<dyn DynContinuous + Send + Sync>)>,
    ) -> Result<Self, ParamError> {
        if parts.is_empty() {
            return Err(ParamError::new("Mixture requires at least one component"));
        }
        if parts.iter().any(|(w, _)| !(*w > 0.0) || !w.is_finite()) {
            return Err(ParamError::new(
                "Mixture weights must be positive and finite",
            ));
        }
        let total: f64 = parts.iter().map(|(w, _)| w).sum();
        let mut cum = Vec::with_capacity(parts.len());
        let mut weights = Vec::with_capacity(parts.len());
        let mut acc = 0.0;
        let mut components = Vec::with_capacity(parts.len());
        for (w, c) in parts {
            acc += w / total;
            cum.push(acc);
            weights.push(w / total);
            components.push(c);
        }
        if let Some(last) = cum.last_mut() {
            *last = 1.0;
        }
        Ok(Self {
            components,
            cum_weights: cum,
            weights,
            picker: None,
        })
    }

    /// Switches the component picker to the requested backend.
    pub fn with_backend(mut self, backend: SamplerBackend) -> Result<Self, ParamError> {
        self.picker = match backend {
            SamplerBackend::InverseCdf => None,
            SamplerBackend::Alias => Some(AliasTable::new(&self.weights)?),
        };
        Ok(self)
    }

    /// The component-pick backend in force.
    pub fn backend(&self) -> SamplerBackend {
        if self.picker.is_some() {
            SamplerBackend::Alias
        } else {
            SamplerBackend::InverseCdf
        }
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.components.len()
    }

    /// Normalized component weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Samples and also reports which component produced the draw.
    pub fn sample_labeled<R: Rng + ?Sized>(&self, rng: &mut R) -> (usize, f64) {
        let idx = if let Some(picker) = &self.picker {
            picker.sample(rng)
        } else {
            let u = u01(rng);
            self.cum_weights
                .partition_point(|&c| c < u)
                .min(self.components.len() - 1)
        };
        // `&mut R` (sized) implements `Rng`, so a double reborrow erases
        // the generic parameter for the dyn-typed component.
        (idx, self.components[idx].sample_dyn(&mut &mut *rng))
    }
}

impl Sample for Mixture {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_labeled(rng).1
    }
}

impl Continuous for Mixture {
    fn pdf(&self, x: f64) -> f64 {
        self.weights
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * c.pdf_dyn(x))
            .sum()
    }

    fn cdf(&self, x: f64) -> f64 {
        self.weights
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * c.cdf_dyn(x))
            .sum()
    }

    fn quantile(&self, p: f64) -> f64 {
        // No closed form: bisection on the (monotone) mixture CDF.
        let p = p.clamp(0.0, 1.0);
        if p == 0.0 || p == 1.0 {
            // Delegate the extremes to the widest component bounds.
            let mut q = f64::NAN;
            for c in &self.components {
                let cq = c.quantile_dyn(p);
                q = if q.is_nan() {
                    cq
                } else if p == 0.0 {
                    q.min(cq)
                } else {
                    q.max(cq)
                };
            }
            return q;
        }
        // Bracket using component quantiles.
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for c in &self.components {
            lo = lo.min(c.quantile_dyn(0.000_1));
            hi = hi.max(c.quantile_dyn(0.999_9));
        }
        if !lo.is_finite() {
            lo = -1e300;
        }
        if !hi.is_finite() {
            hi = 1e300;
        }
        // Expand the bracket if needed, then bisect.
        while self.cdf(lo) > p {
            lo = if lo > 0.0 { lo / 2.0 } else { lo * 2.0 - 1.0 };
        }
        while self.cdf(hi) < p {
            hi = if hi > 0.0 { hi * 2.0 + 1.0 } else { hi / 2.0 };
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if (hi - lo) <= 1e-12 * (1.0 + hi.abs()) {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    fn mean(&self) -> f64 {
        self.weights
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * c.mean_dyn())
            .sum()
    }

    fn variance(&self) -> f64 {
        // Var = Σ w (σ² + μ²) − (Σ w μ)².
        let m = self.mean();
        let e2: f64 = self
            .weights
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * (c.variance_dyn() + c.mean_dyn() * c.mean_dyn()))
            .sum();
        e2 - m * m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{LogNormal, Normal};
    use crate::rng::SeedStream;

    fn bimodal() -> Mixture {
        Mixture::new(vec![
            (0.9, Box::new(Normal::new(56_000.0, 3_000.0).unwrap()) as _),
            (0.1, Box::new(LogNormal::new(8.0, 1.0).unwrap()) as _),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_bad_params() {
        assert!(Mixture::new(vec![]).is_err());
        assert!(Mixture::new(vec![(0.0, Box::new(Normal::standard()) as _),]).is_err());
        assert!(Mixture::new(vec![(-1.0, Box::new(Normal::standard()) as _),]).is_err());
    }

    #[test]
    fn weights_normalized() {
        let m = Mixture::new(vec![
            (3.0, Box::new(Normal::standard()) as _),
            (1.0, Box::new(Normal::new(10.0, 1.0).unwrap()) as _),
        ])
        .unwrap();
        assert!((m.weights()[0] - 0.75).abs() < 1e-12);
        assert!((m.weights()[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn component_frequencies() {
        let m = bimodal();
        let mut rng = SeedStream::new(91).rng("mix");
        const N: usize = 50_000;
        let low = (0..N).filter(|_| m.sample_labeled(&mut rng).0 == 1).count() as f64 / N as f64;
        assert!((low - 0.1).abs() < 0.01, "congestion fraction {low}");
    }

    #[test]
    fn alias_picker_component_frequencies() {
        let m = bimodal().with_backend(SamplerBackend::Alias).unwrap();
        assert_eq!(m.backend(), SamplerBackend::Alias);
        let mut rng = SeedStream::new(91).rng("mix");
        const N: usize = 50_000;
        let low = (0..N).filter(|_| m.sample_labeled(&mut rng).0 == 1).count() as f64 / N as f64;
        assert!((low - 0.1).abs() < 0.01, "congestion fraction {low}");
    }

    #[test]
    fn mixture_mean_is_weighted() {
        let m = Mixture::new(vec![
            (0.5, Box::new(Normal::new(0.0, 1.0).unwrap()) as _),
            (0.5, Box::new(Normal::new(10.0, 1.0).unwrap()) as _),
        ])
        .unwrap();
        assert!((m.mean() - 5.0).abs() < 1e-12);
        // Var = 1 + 25 (between-component) = 26.
        assert!((m.variance() - 26.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let m = bimodal();
        for &p in &[0.05, 0.2, 0.5, 0.8, 0.95] {
            let x = m.quantile(p);
            assert!((m.cdf(x) - p).abs() < 1e-6, "p={p}, x={x}");
        }
    }

    #[test]
    fn pdf_is_weighted_sum() {
        let m = bimodal();
        let x = 56_000.0;
        let direct = 0.9 * Normal::new(56_000.0, 3_000.0).unwrap().pdf(x)
            + 0.1 * LogNormal::new(8.0, 1.0).unwrap().pdf(x);
        assert!((m.pdf(x) - direct).abs() < 1e-15);
    }
}
