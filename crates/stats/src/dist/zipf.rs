//! Bounded Zipf distribution over ranks `1..=n`.
//!
//! The paper's *client interest profile* (Fig 7) is Zipf-like with exponent
//! α = 0.4704 — below 1, so an unbounded zeta law would not normalize; the
//! population is finite (~692k clients) and a *bounded* Zipf is the right
//! object. [`ZipfTable`] precomputes the cumulative weights once; draws use
//! either a binary search on that table (`O(log n)`, one uniform) or a
//! Vose [`AliasTable`] (`O(1)`, two uniforms), selected explicitly via
//! [`SamplerBackend`] — see the alias module for why backend choice is
//! part of the determinism contract.

use super::{AliasTable, Discrete, ParamError, Sample, SamplerBackend};
use crate::rng::u01;
use rand::Rng;

/// Bounded Zipf distribution: `P[K = k] ∝ k^{-s}` for `k ∈ 1..=n`.
///
/// Supports any exponent `s >= 0` (including the paper's sub-unit interest
/// exponents, where the distribution is only mildly skewed).
#[derive(Debug, Clone)]
pub struct ZipfTable {
    n: u64,
    s: f64,
    /// `cum[i]` = P[K <= i+1]; length `n`, last element is 1.0.
    cum: Vec<f64>,
    norm: f64,
    /// Moments, computed once in the same O(n) construction pass — calling
    /// `mean()` in a loop must not re-walk the table.
    mean: f64,
    variance: f64,
    /// Present iff the alias backend was selected.
    alias: Option<AliasTable>,
}

impl ZipfTable {
    /// Creates a bounded Zipf over `1..=n` with exponent `s >= 0`, using
    /// the default inverse-CDF backend.
    ///
    /// Cost: `O(n)` time and memory. For the paper's populations
    /// (n ≈ 7×10⁵) this is a few megabytes built once per generator.
    pub fn new(n: u64, s: f64) -> Result<Self, ParamError> {
        Self::with_backend(n, s, SamplerBackend::InverseCdf)
    }

    /// Creates a bounded Zipf with an explicit sampling backend.
    ///
    /// Both backends draw from exactly this distribution but consume the
    /// RNG stream differently (one uniform per draw vs two), so the same
    /// seed produces different — identically distributed — rank sequences.
    /// Determinism fixtures must pin the backend they assert against.
    pub fn with_backend(n: u64, s: f64, backend: SamplerBackend) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError::new("ZipfTable requires n >= 1"));
        }
        if !(s >= 0.0) || !s.is_finite() {
            return Err(ParamError::new(format!(
                "ZipfTable requires s >= 0, got {s}"
            )));
        }
        let mut cum = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        let mut m1 = 0.0; // Σ k^{1-s}
        let mut m2 = 0.0; // Σ k^{2-s}
        for k in 1..=n {
            let w = (k as f64).powf(-s);
            acc += w;
            m1 += w * k as f64;
            m2 += w * (k as f64) * (k as f64);
            cum.push(acc);
        }
        let norm = acc;
        for c in &mut cum {
            *c /= norm;
        }
        // Guard against floating point drift at the end of the table.
        if let Some(last) = cum.last_mut() {
            *last = 1.0;
        }
        let mean = m1 / norm;
        let variance = m2 / norm - mean * mean;
        let alias = match backend {
            SamplerBackend::InverseCdf => None,
            SamplerBackend::Alias => {
                let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
                Some(AliasTable::new(&weights)?)
            }
        };
        Ok(Self {
            n,
            s,
            cum,
            norm,
            mean,
            variance,
            alias,
        })
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exponent.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// The sampling backend in force.
    pub fn backend(&self) -> SamplerBackend {
        if self.alias.is_some() {
            SamplerBackend::Alias
        } else {
            SamplerBackend::InverseCdf
        }
    }

    /// Normalization constant `H_{n,s}` (generalized harmonic number).
    pub fn normalization(&self) -> f64 {
        self.norm
    }

    /// The expected relative frequency of rank `k` (the paper's Fig 7
    /// "Zipf(x) = C·x^{-α}" curve), i.e. `pmf(k)`.
    pub fn expected_frequency(&self, k: u64) -> f64 {
        self.pmf(k)
    }
}

impl Discrete for ZipfTable {
    #[inline]
    fn sample_k<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if let Some(alias) = &self.alias {
            return alias.sample(rng) as u64 + 1;
        }
        let u = u01(rng);
        // First index whose cumulative mass reaches u.
        let idx = self.cum.partition_point(|&c| c < u);
        (idx as u64 + 1).min(self.n)
    }

    fn pmf(&self, k: u64) -> f64 {
        if k == 0 || k > self.n {
            0.0
        } else {
            (k as f64).powf(-self.s) / self.norm
        }
    }

    fn cdf_k(&self, k: u64) -> f64 {
        if k == 0 {
            0.0
        } else if k >= self.n {
            1.0
        } else {
            self.cum[(k - 1) as usize]
        }
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.variance
    }
}

impl Sample for ZipfTable {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_k(rng) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypothesis::chi_square_test;
    use crate::rng::SeedStream;

    #[test]
    fn rejects_bad_params() {
        assert!(ZipfTable::new(0, 1.0).is_err());
        assert!(ZipfTable::new(10, -0.5).is_err());
        assert!(ZipfTable::new(10, f64::NAN).is_err());
        assert!(ZipfTable::with_backend(0, 1.0, SamplerBackend::Alias).is_err());
    }

    #[test]
    fn uniform_special_case() {
        // s = 0 is uniform over 1..=n.
        let d = ZipfTable::new(4, 0.0).unwrap();
        for k in 1..=4 {
            assert!((d.pmf(k) - 0.25).abs() < 1e-12);
        }
        assert!((d.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = ZipfTable::new(1_000, 0.4704).unwrap();
        let total: f64 = (1..=1_000).map(|k| d.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(d.cdf_k(1_000), 1.0);
    }

    #[test]
    fn rank_one_most_likely() {
        let d = ZipfTable::new(100, 0.7194).unwrap();
        assert!(d.pmf(1) > d.pmf(2));
        assert!(d.pmf(2) > d.pmf(50));
        // Ratio of masses follows the power law exactly.
        let ratio = d.pmf(1) / d.pmf(8);
        assert!((ratio - 8f64.powf(0.7194)).abs() < 1e-9);
    }

    #[test]
    fn cached_moments_match_direct_sums() {
        let d = ZipfTable::new(500, 0.4704).unwrap();
        let mut num = 0.0;
        let mut e2 = 0.0;
        for k in 1..=500u64 {
            num += (k as f64).powf(1.0 - 0.4704);
            e2 += (k as f64).powf(2.0 - 0.4704);
        }
        let mean = num / d.normalization();
        let var = e2 / d.normalization() - mean * mean;
        assert!((d.mean() - mean).abs() < 1e-9 * mean.abs());
        assert!((d.variance() - var).abs() < 1e-9 * var.abs());
    }

    #[test]
    fn sample_frequencies_match_pmf() {
        let d = ZipfTable::new(50, 1.0).unwrap();
        let mut rng = SeedStream::new(61).rng("zipf");
        let mut counts = [0u32; 51];
        const N: usize = 200_000;
        for _ in 0..N {
            let k = d.sample_k(&mut rng);
            assert!((1..=50).contains(&k));
            counts[k as usize] += 1;
        }
        for k in [1u64, 2, 5, 10, 25] {
            let emp = counts[k as usize] as f64 / N as f64;
            let theo = d.pmf(k);
            assert!(
                (emp - theo).abs() < 0.01,
                "rank {k}: empirical {emp} vs pmf {theo}"
            );
        }
    }

    #[test]
    fn alias_backend_frequencies_match_pmf() {
        // The alias backend must reproduce the same pmf as the inverse-CDF
        // backend within the tolerance `sample_frequencies_match_pmf` uses.
        let d = ZipfTable::with_backend(50, 1.0, SamplerBackend::Alias).unwrap();
        assert_eq!(d.backend(), SamplerBackend::Alias);
        let mut rng = SeedStream::new(61).rng("zipf");
        let mut counts = [0u32; 51];
        const N: usize = 200_000;
        for _ in 0..N {
            let k = d.sample_k(&mut rng);
            assert!((1..=50).contains(&k));
            counts[k as usize] += 1;
        }
        for k in [1u64, 2, 5, 10, 25] {
            let emp = counts[k as usize] as f64 / N as f64;
            let theo = d.pmf(k);
            assert!(
                (emp - theo).abs() < 0.01,
                "rank {k}: empirical {emp} vs pmf {theo}"
            );
        }
        // Stronger: full-support chi-square goodness of fit against the
        // exact pmf must accept at the 1% level.
        let observed: Vec<f64> = (1..=50).map(|k| f64::from(counts[k as usize])).collect();
        let expected: Vec<f64> = (1..=50).map(|k| d.pmf(k) * N as f64).collect();
        let r = chi_square_test(&observed, &expected, 0).unwrap();
        assert!(r.accepts(0.01), "chi-square p = {}", r.p_value);
    }

    #[test]
    fn backends_agree_on_static_queries() {
        let cdf = ZipfTable::new(200, 0.7).unwrap();
        let alias = ZipfTable::with_backend(200, 0.7, SamplerBackend::Alias).unwrap();
        assert_eq!(cdf.backend(), SamplerBackend::InverseCdf);
        for k in [1u64, 2, 10, 100, 200] {
            assert_eq!(cdf.pmf(k), alias.pmf(k));
            assert_eq!(cdf.cdf_k(k), alias.cdf_k(k));
        }
        assert_eq!(cdf.mean(), alias.mean());
        assert_eq!(cdf.variance(), alias.variance());
    }

    #[test]
    fn sample_never_escapes_support() {
        let d = ZipfTable::new(3, 2.0).unwrap();
        let mut rng = SeedStream::new(62).rng("zipf-bounds");
        for _ in 0..10_000 {
            let k = d.sample_k(&mut rng);
            assert!((1..=3).contains(&k));
        }
        let a = ZipfTable::with_backend(3, 2.0, SamplerBackend::Alias).unwrap();
        let mut rng = SeedStream::new(62).rng("zipf-bounds");
        for _ in 0..10_000 {
            let k = a.sample_k(&mut rng);
            assert!((1..=3).contains(&k));
        }
    }

    #[test]
    fn normalization_is_harmonic_number() {
        let d = ZipfTable::new(100, 1.0).unwrap();
        let h100: f64 = (1..=100).map(|k| 1.0 / k as f64).sum();
        assert!((d.normalization() - h100).abs() < 1e-12);
    }
}
