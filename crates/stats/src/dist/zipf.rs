//! Bounded Zipf distribution over ranks `1..=n`.
//!
//! The paper's *client interest profile* (Fig 7) is Zipf-like with exponent
//! α = 0.4704 — below 1, so an unbounded zeta law would not normalize; the
//! population is finite (~692k clients) and a *bounded* Zipf is the right
//! object. [`ZipfTable`] precomputes the cumulative weights once and samples
//! ranks with a binary search (`O(log n)` per draw, exact).

use super::{Discrete, ParamError, Sample};
use crate::rng::u01;
use rand::Rng;

/// Bounded Zipf distribution: `P[K = k] ∝ k^{-s}` for `k ∈ 1..=n`.
///
/// Supports any exponent `s >= 0` (including the paper's sub-unit interest
/// exponents, where the distribution is only mildly skewed).
#[derive(Debug, Clone)]
pub struct ZipfTable {
    n: u64,
    s: f64,
    /// `cum[i]` = P[K <= i+1]; length `n`, last element is 1.0.
    cum: Vec<f64>,
    norm: f64,
}

impl ZipfTable {
    /// Creates a bounded Zipf over `1..=n` with exponent `s >= 0`.
    ///
    /// Cost: `O(n)` time and memory. For the paper's populations
    /// (n ≈ 7×10⁵) this is a few megabytes built once per generator.
    pub fn new(n: u64, s: f64) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError::new("ZipfTable requires n >= 1"));
        }
        if !(s >= 0.0) || !s.is_finite() {
            return Err(ParamError::new(format!(
                "ZipfTable requires s >= 0, got {s}"
            )));
        }
        let mut cum = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cum.push(acc);
        }
        let norm = acc;
        for c in &mut cum {
            *c /= norm;
        }
        // Guard against floating point drift at the end of the table.
        if let Some(last) = cum.last_mut() {
            *last = 1.0;
        }
        Ok(Self { n, s, cum, norm })
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exponent.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Normalization constant `H_{n,s}` (generalized harmonic number).
    pub fn normalization(&self) -> f64 {
        self.norm
    }

    /// The expected relative frequency of rank `k` (the paper's Fig 7
    /// "Zipf(x) = C·x^{-α}" curve), i.e. `pmf(k)`.
    pub fn expected_frequency(&self, k: u64) -> f64 {
        self.pmf(k)
    }
}

impl Discrete for ZipfTable {
    fn sample_k(&self, rng: &mut dyn Rng) -> u64 {
        let u = u01(rng);
        // First index whose cumulative mass reaches u.
        let idx = self.cum.partition_point(|&c| c < u);
        (idx as u64 + 1).min(self.n)
    }

    fn pmf(&self, k: u64) -> f64 {
        if k == 0 || k > self.n {
            0.0
        } else {
            (k as f64).powf(-self.s) / self.norm
        }
    }

    fn cdf_k(&self, k: u64) -> f64 {
        if k == 0 {
            0.0
        } else if k >= self.n {
            1.0
        } else {
            self.cum[(k - 1) as usize]
        }
    }

    fn mean(&self) -> f64 {
        // H_{n, s-1} / H_{n, s}
        let mut num = 0.0;
        for k in 1..=self.n {
            num += (k as f64).powf(1.0 - self.s);
        }
        num / self.norm
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        let mut e2 = 0.0;
        for k in 1..=self.n {
            e2 += (k as f64).powf(2.0 - self.s);
        }
        e2 / self.norm - m * m
    }
}

impl Sample for ZipfTable {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        self.sample_k(rng) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedStream;

    #[test]
    fn rejects_bad_params() {
        assert!(ZipfTable::new(0, 1.0).is_err());
        assert!(ZipfTable::new(10, -0.5).is_err());
        assert!(ZipfTable::new(10, f64::NAN).is_err());
    }

    #[test]
    fn uniform_special_case() {
        // s = 0 is uniform over 1..=n.
        let d = ZipfTable::new(4, 0.0).unwrap();
        for k in 1..=4 {
            assert!((d.pmf(k) - 0.25).abs() < 1e-12);
        }
        assert!((d.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = ZipfTable::new(1_000, 0.4704).unwrap();
        let total: f64 = (1..=1_000).map(|k| d.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(d.cdf_k(1_000), 1.0);
    }

    #[test]
    fn rank_one_most_likely() {
        let d = ZipfTable::new(100, 0.7194).unwrap();
        assert!(d.pmf(1) > d.pmf(2));
        assert!(d.pmf(2) > d.pmf(50));
        // Ratio of masses follows the power law exactly.
        let ratio = d.pmf(1) / d.pmf(8);
        assert!((ratio - 8f64.powf(0.7194)).abs() < 1e-9);
    }

    #[test]
    fn sample_frequencies_match_pmf() {
        let d = ZipfTable::new(50, 1.0).unwrap();
        let mut rng = SeedStream::new(61).rng("zipf");
        let mut counts = [0u32; 51];
        const N: usize = 200_000;
        for _ in 0..N {
            let k = d.sample_k(&mut rng);
            assert!((1..=50).contains(&k));
            counts[k as usize] += 1;
        }
        for k in [1u64, 2, 5, 10, 25] {
            let emp = counts[k as usize] as f64 / N as f64;
            let theo = d.pmf(k);
            assert!(
                (emp - theo).abs() < 0.01,
                "rank {k}: empirical {emp} vs pmf {theo}"
            );
        }
    }

    #[test]
    fn sample_never_escapes_support() {
        let d = ZipfTable::new(3, 2.0).unwrap();
        let mut rng = SeedStream::new(62).rng("zipf-bounds");
        for _ in 0..10_000 {
            let k = d.sample_k(&mut rng);
            assert!((1..=3).contains(&k));
        }
    }

    #[test]
    fn normalization_is_harmonic_number() {
        let d = ZipfTable::new(100, 1.0).unwrap();
        let h100: f64 = (1..=100).map(|k| 1.0 / k as f64).sum();
        assert!((d.normalization() - h100).abs() < 1e-12);
    }
}
