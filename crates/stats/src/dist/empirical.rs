//! Empirical distribution built from observed samples.
//!
//! Lets the generator replay a measured marginal directly (e.g. feed the
//! characterized bandwidth distribution of one trace into the synthesis of
//! another), which is exactly how GISMO consumes characterization output.

use super::{Continuous, ParamError, Sample};
use crate::rng::u01;
use rand::Rng;

/// Empirical distribution over a set of observed values.
///
/// Sampling draws an observation uniformly at random and (optionally)
/// interpolates linearly between adjacent order statistics, giving a
/// continuous approximation of the underlying distribution.
#[derive(Debug, Clone)]
pub struct Empirical {
    /// Sorted observations.
    sorted: Vec<f64>,
    interpolate: bool,
}

impl Empirical {
    /// Builds an empirical distribution from observations.
    ///
    /// Non-finite values are rejected. With `interpolate`, samples are drawn
    /// from the piecewise-linear interpolation of the ECDF; otherwise
    /// bootstrap resampling of the raw values is used.
    pub fn new(mut values: Vec<f64>, interpolate: bool) -> Result<Self, ParamError> {
        if values.is_empty() {
            return Err(ParamError::new(
                "Empirical requires at least one observation",
            ));
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(ParamError::new("Empirical observations must be finite"));
        }
        values.sort_unstable_by(f64::total_cmp);
        Ok(Self {
            sorted: values,
            interpolate,
        })
    }

    /// Number of observations backing the distribution.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no observations (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        // lsw::allow(L005): constructor rejects empty samples
        *self.sorted.last().expect("non-empty")
    }
}

impl Sample for Empirical {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = u01(rng);
        if !self.interpolate || self.sorted.len() == 1 {
            let idx = ((u * self.sorted.len() as f64) as usize).min(self.sorted.len() - 1);
            return self.sorted[idx];
        }
        self.quantile(u)
    }
}

impl Continuous for Empirical {
    fn pdf(&self, x: f64) -> f64 {
        // Density estimate via a central difference of the ECDF over a small
        // window; crude, but only used for diagnostics.
        let n = self.sorted.len() as f64;
        let span = self.max() - self.min();
        if span == 0.0 {
            return if x == self.min() { f64::INFINITY } else { 0.0 };
        }
        let h = span / n.sqrt();
        (self.cdf(x + h) - self.cdf(x - h)) / (2.0 * h)
    }

    fn cdf(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        // Piecewise-linear interpolation between order statistics.
        let pos = p * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = (lo + 1).min(n - 1);
        let frac = pos - lo as f64;
        self.sorted[lo] + frac * (self.sorted[hi] - self.sorted[lo])
    }

    fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        self.sorted.iter().map(|v| (v - m).powi(2)).sum::<f64>() / self.sorted.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedStream;

    #[test]
    fn rejects_bad_input() {
        assert!(Empirical::new(vec![], true).is_err());
        assert!(Empirical::new(vec![1.0, f64::NAN], true).is_err());
        assert!(Empirical::new(vec![f64::INFINITY], false).is_err());
    }

    #[test]
    fn bootstrap_only_returns_observations() {
        let vals = vec![1.0, 5.0, 9.0];
        let d = Empirical::new(vals.clone(), false).unwrap();
        let mut rng = SeedStream::new(101).rng("emp");
        for _ in 0..1_000 {
            let x = d.sample(&mut rng);
            assert!(vals.contains(&x));
        }
    }

    #[test]
    fn interpolated_stays_in_hull() {
        let d = Empirical::new(vec![2.0, 4.0, 10.0, 3.0], true).unwrap();
        let mut rng = SeedStream::new(102).rng("emp2");
        for _ in 0..1_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..=10.0).contains(&x));
        }
        assert_eq!(d.min(), 2.0);
        assert_eq!(d.max(), 10.0);
    }

    #[test]
    fn cdf_matches_counts() {
        let d = Empirical::new(vec![1.0, 2.0, 2.0, 3.0], false).unwrap();
        assert_eq!(d.cdf(0.5), 0.0);
        assert_eq!(d.cdf(1.0), 0.25);
        assert_eq!(d.cdf(2.0), 0.75);
        assert_eq!(d.cdf(3.0), 1.0);
    }

    #[test]
    fn moments_match_data() {
        let d = Empirical::new(vec![2.0, 4.0, 6.0, 8.0], true).unwrap();
        assert_eq!(d.mean(), 5.0);
        assert_eq!(d.variance(), 5.0);
    }

    #[test]
    fn quantile_interpolates() {
        let d = Empirical::new(vec![0.0, 10.0], true).unwrap();
        assert_eq!(d.quantile(0.0), 0.0);
        assert_eq!(d.quantile(0.5), 5.0);
        assert_eq!(d.quantile(1.0), 10.0);
    }
}
