//! Poisson distribution over counts.
//!
//! Used for per-window arrival counts in the piecewise-stationary Poisson
//! process experiments (§3.4) and the chi-square Poisson-ness test.

use super::{Discrete, ParamError, Sample};
use crate::rng::{u01, u01_open0};
use crate::special::{gamma_q, ln_gamma};
use rand::Rng;

/// Poisson distribution with mean `lambda > 0`.
///
/// Sampling uses Knuth's product method for small means and Atkinson's
/// logistic-envelope rejection ("PA") for `lambda >= 30`, so cost stays
/// `O(1)` for the large per-bin rates seen at the diurnal peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson with mean `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if !(lambda > 0.0) || !lambda.is_finite() {
            return Err(ParamError::new(format!(
                "Poisson requires lambda > 0, got {lambda}"
            )));
        }
        Ok(Self { lambda })
    }

    /// Mean parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    fn sample_knuth<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let l = (-self.lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= u01(rng);
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    fn sample_atkinson<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Atkinson (1979): rejection from a logistic envelope.
        let lam = self.lambda;
        let beta = std::f64::consts::PI / (3.0 * lam).sqrt();
        let alpha = beta * lam;
        let k = (0.767 - 3.36 / lam).ln() - lam - beta.ln();
        loop {
            let u = u01_open0(rng);
            if u >= 1.0 {
                continue;
            }
            let x = (alpha - ((1.0 - u) / u).ln()) / beta;
            let n = (x + 0.5).floor();
            if n < 0.0 {
                continue;
            }
            let v = u01_open0(rng);
            let y = alpha - beta * x;
            let denom = 1.0 + y.exp();
            let lhs = y + (v / (denom * denom)).ln();
            let rhs = k + n * lam.ln() - ln_gamma(n + 1.0);
            if lhs <= rhs {
                return n as u64;
            }
        }
    }
}

impl Discrete for Poisson {
    fn sample_k<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda < 30.0 {
            self.sample_knuth(rng)
        } else {
            self.sample_atkinson(rng)
        }
    }

    fn pmf(&self, k: u64) -> f64 {
        ((k as f64) * self.lambda.ln() - self.lambda - ln_gamma(k as f64 + 1.0)).exp()
    }

    fn cdf_k(&self, k: u64) -> f64 {
        // P[K <= k] = Q(k + 1, lambda) (regularized upper incomplete gamma).
        gamma_q(k as f64 + 1.0, self.lambda)
    }

    fn mean(&self) -> f64 {
        self.lambda
    }

    fn variance(&self) -> f64 {
        self.lambda
    }
}

impl Sample for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_k(rng) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedStream;

    #[test]
    fn rejects_bad_params() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-2.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
    }

    #[test]
    fn pmf_matches_closed_form_small_k() {
        let d = Poisson::new(3.0).unwrap();
        // P[K = 0] = e^-3; P[K = 2] = 9 e^-3 / 2.
        assert!((d.pmf(0) - (-3.0f64).exp()).abs() < 1e-12);
        assert!((d.pmf(2) - 4.5 * (-3.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_pmf_partial_sum() {
        let d = Poisson::new(7.3).unwrap();
        let direct: f64 = (0..=10).map(|k| d.pmf(k)).sum();
        assert!((d.cdf_k(10) - direct).abs() < 1e-9);
    }

    fn check_moments(lambda: f64, seed: u64, tol: f64) {
        let d = Poisson::new(lambda).unwrap();
        let mut rng = SeedStream::new(seed).rng("pois");
        const N: usize = 100_000;
        let xs: Vec<u64> = (0..N).map(|_| d.sample_k(&mut rng)).collect();
        let mean = xs.iter().map(|&x| x as f64).sum::<f64>() / N as f64;
        let var = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / N as f64;
        assert!(
            (mean / lambda - 1.0).abs() < tol,
            "lambda {lambda}: mean {mean}"
        );
        assert!(
            (var / lambda - 1.0).abs() < 3.0 * tol,
            "lambda {lambda}: var {var}"
        );
    }

    #[test]
    fn knuth_regime_moments() {
        check_moments(0.5, 81, 0.02);
        check_moments(4.0, 82, 0.02);
        check_moments(25.0, 83, 0.02);
    }

    #[test]
    fn atkinson_regime_moments() {
        check_moments(30.0, 84, 0.02);
        check_moments(120.0, 85, 0.02);
        check_moments(2_500.0, 86, 0.02);
    }

    #[test]
    fn regime_boundary_continuity() {
        // The two samplers should agree distributionally at the switch point;
        // compare empirical CDF at the median-ish point for λ=29.9 vs 30.1.
        let lo = Poisson::new(29.9).unwrap();
        let hi = Poisson::new(30.1).unwrap();
        let mut rng = SeedStream::new(87).rng("pois-b");
        const N: usize = 60_000;
        let f_lo = (0..N).filter(|_| lo.sample_k(&mut rng) <= 30).count() as f64 / N as f64;
        let f_hi = (0..N).filter(|_| hi.sample_k(&mut rng) <= 30).count() as f64 / N as f64;
        assert!((f_lo - lo.cdf_k(30)).abs() < 0.01, "knuth cdf {f_lo}");
        assert!((f_hi - hi.cdf_k(30)).abs() < 0.01, "atkinson cdf {f_hi}");
    }
}
