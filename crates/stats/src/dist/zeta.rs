//! Zeta (unbounded Zipf) distribution over `k = 1, 2, 3, …`.
//!
//! The paper models *transfers per session* as "Zipf with α = 2.70417"
//! (Fig 13) with no upper bound — that is the zeta distribution
//! `P[K = k] = k^{-α} / ζ(α)`, valid for α > 1. Sampling uses Devroye's
//! rejection algorithm (constant expected cost, no tables).

use super::{Discrete, ParamError, Sample};
use crate::rng::u01_open0;
use crate::special::riemann_zeta;
use rand::Rng;

/// Zeta distribution: `P[K = k] = k^{-alpha} / ζ(alpha)`, `k >= 1`,
/// `alpha > 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zeta {
    alpha: f64,
    zeta_alpha: f64,
}

impl Zeta {
    /// Creates a zeta distribution with exponent `alpha > 1`.
    pub fn new(alpha: f64) -> Result<Self, ParamError> {
        if !(alpha > 1.0) || !alpha.is_finite() {
            return Err(ParamError::new(format!(
                "Zeta requires alpha > 1, got {alpha}"
            )));
        }
        Ok(Self {
            alpha,
            zeta_alpha: riemann_zeta(alpha),
        })
    }

    /// Tail exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Normalization constant `ζ(alpha)`.
    pub fn normalization(&self) -> f64 {
        self.zeta_alpha
    }
}

impl Discrete for Zeta {
    fn sample_k<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Devroye (1986), "Non-Uniform Random Variate Generation", ch. X.6.1.
        let am1 = self.alpha - 1.0;
        let b = 2f64.powf(am1);
        loop {
            let u = u01_open0(rng);
            let v = u01_open0(rng);
            let x = u.powf(-1.0 / am1).floor();
            // Guard against astronomically large proposals overflowing u64
            // (possible only in the extreme tail for alpha close to 1).
            if !(1.0..9e18).contains(&x) {
                continue;
            }
            let t = (1.0 + 1.0 / x).powf(am1);
            if v * x * (t - 1.0) / (b - 1.0) <= t / b {
                return x as u64;
            }
        }
    }

    fn pmf(&self, k: u64) -> f64 {
        if k == 0 {
            0.0
        } else {
            (k as f64).powf(-self.alpha) / self.zeta_alpha
        }
    }

    fn cdf_k(&self, k: u64) -> f64 {
        // Partial sum; k is small in practice (transfers per session).
        let mut acc = 0.0;
        for j in 1..=k {
            acc += (j as f64).powf(-self.alpha);
        }
        (acc / self.zeta_alpha).min(1.0)
    }

    fn mean(&self) -> f64 {
        if self.alpha <= 2.0 {
            f64::INFINITY
        } else {
            riemann_zeta(self.alpha - 1.0) / self.zeta_alpha
        }
    }

    fn variance(&self) -> f64 {
        if self.alpha <= 3.0 {
            f64::INFINITY
        } else {
            let z = self.zeta_alpha;
            let z1 = riemann_zeta(self.alpha - 1.0);
            let z2 = riemann_zeta(self.alpha - 2.0);
            (z2 * z - z1 * z1) / (z * z)
        }
    }
}

impl Sample for Zeta {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_k(rng) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use crate::rng::SeedStream;

    #[test]
    fn rejects_bad_params() {
        assert!(Zeta::new(1.0).is_err());
        assert!(Zeta::new(0.5).is_err());
        assert!(Zeta::new(f64::INFINITY).is_err());
    }

    #[test]
    fn pmf_normalizes() {
        let d = Zeta::new(2.70417).unwrap();
        // CDF at a large k should approach 1.
        assert!(d.cdf_k(100_000) > 0.99999);
        assert!((d.pmf(1) - 1.0 / d.normalization()).abs() < 1e-12);
    }

    #[test]
    fn sample_frequencies_match_pmf() {
        let d = Zeta::new(paper::TRANSFERS_PER_SESSION_ALPHA).unwrap();
        let mut rng = SeedStream::new(71).rng("zeta");
        const N: usize = 200_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..N {
            *counts.entry(d.sample_k(&mut rng)).or_insert(0u32) += 1;
        }
        for k in [1u64, 2, 3, 5, 10] {
            let emp = *counts.get(&k).unwrap_or(&0) as f64 / N as f64;
            let theo = d.pmf(k);
            assert!(
                (emp - theo).abs() < 0.01,
                "k={k}: empirical {emp} vs pmf {theo}"
            );
        }
        // Support starts at 1.
        assert!(!counts.contains_key(&0));
    }

    #[test]
    fn mean_finite_iff_alpha_above_two() {
        assert!(Zeta::new(1.5).unwrap().mean().is_infinite());
        let d = Zeta::new(3.0).unwrap();
        // mean = ζ(2)/ζ(3) ≈ 1.3684.
        assert!((d.mean() - 1.36843).abs() < 1e-3);
    }

    #[test]
    fn paper_transfers_per_session_mean() {
        // With α = 2.70417 the mean is ζ(1.70417)/ζ(2.70417) ≈ 1.6. (The
        // trace's empirical mean is ≈ 3.7 transfers/session — the pure Zipf
        // fit understates the body, which EXPERIMENTS.md discusses.)
        let d = Zeta::new(paper::TRANSFERS_PER_SESSION_ALPHA).unwrap();
        let m = d.mean();
        assert!(m > 1.3 && m < 2.0, "mean {m}");
        let mut rng = SeedStream::new(72).rng("zeta-mean");
        const N: usize = 300_000;
        let emp: f64 = (0..N).map(|_| d.sample_k(&mut rng) as f64).sum::<f64>() / N as f64;
        // Slow convergence (infinite variance is close by); loose tolerance.
        assert!((emp / m - 1.0).abs() < 0.15, "empirical {emp} vs {m}");
    }
}
