//! Lognormal distribution — the paper's workhorse.
//!
//! Session ON times (Fig 11), intra-session transfer interarrivals (Fig 14)
//! and transfer lengths (Fig 19) are all lognormal in Veloso et al.; the
//! parameters quoted in Table 2 are `(mu, sigma)` of the underlying normal.

use super::{Continuous, Normal, ParamError, Sample};
use crate::special::{inv_norm_cdf, norm_cdf, norm_pdf};
use rand::Rng;

/// Lognormal distribution: `ln X ~ N(mu, sigma²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal with log-location `mu` and log-scale `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        if !mu.is_finite() || !(sigma > 0.0) || !sigma.is_finite() {
            return Err(ParamError::new(format!(
                "LogNormal requires finite mu and sigma > 0, got mu={mu}, sigma={sigma}"
            )));
        }
        Ok(Self { mu, sigma })
    }

    /// Log-location parameter (mean of `ln X`).
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-scale parameter (std dev of `ln X`).
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Median `e^mu`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Mode `e^{mu - sigma²}`.
    pub fn mode(&self) -> f64 {
        (self.mu - self.sigma * self.sigma).exp()
    }
}

impl Sample for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * Normal::sample_standard(rng)).exp()
    }
}

impl Continuous for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        norm_pdf((x.ln() - self.mu) / self.sigma) / (x * self.sigma)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        norm_cdf((x.ln() - self.mu) / self.sigma)
    }

    fn quantile(&self, p: f64) -> f64 {
        (self.mu + self.sigma * inv_norm_cdf(p)).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        ((s2).exp_m1()) * (2.0 * self.mu + s2).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use crate::rng::SeedStream;

    #[test]
    fn rejects_bad_params() {
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::new(0.0, -2.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn log_of_samples_is_normal() {
        let d = LogNormal::new(2.0, 0.5).unwrap();
        let mut rng = SeedStream::new(21).rng("lnorm");
        let xs = d.sample_n(&mut rng, 100_000);
        let logs: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
        let n = logs.len() as f64;
        let mean = logs.iter().sum::<f64>() / n;
        let var = logs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!((mean - 2.0).abs() < 0.01, "log-mean {mean}");
        assert!((var - 0.25).abs() < 0.01, "log-var {var}");
    }

    #[test]
    fn positive_support() {
        let d = LogNormal::new(-3.0, 2.0).unwrap();
        let mut rng = SeedStream::new(22).rng("lnorm2");
        assert!(d.sample_n(&mut rng, 10_000).iter().all(|&x| x > 0.0));
        assert_eq!(d.pdf(-1.0), 0.0);
        assert_eq!(d.cdf(0.0), 0.0);
    }

    #[test]
    fn closed_form_moments() {
        let d = LogNormal::new(1.0, 0.75).unwrap();
        // mean = exp(mu + sigma^2/2)
        assert!((d.mean() - (1.0 + 0.5 * 0.5625f64).exp()).abs() < 1e-12);
        // median = e^mu
        assert!((d.median() - 1.0f64.exp()).abs() < 1e-12);
        assert!((d.cdf(d.median()) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let d = LogNormal::new(4.383921, 1.427247).unwrap(); // paper's transfer length
        for &p in &[0.001, 0.1, 0.5, 0.9, 0.999] {
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-7, "p={p}");
        }
    }

    #[test]
    fn paper_transfer_length_statistics() {
        // Sanity numbers for the Table 2 transfer-length distribution:
        // median e^4.383921 ≈ 80 s, mean ≈ e^{mu + sigma^2/2} ≈ 222 s.
        let d = LogNormal::new(paper::TRANSFER_LENGTH_MU, paper::TRANSFER_LENGTH_SIGMA).unwrap();
        assert!((d.median() - 80.15).abs() < 0.5);
        assert!((d.mean() - 221.9).abs() < 2.0);
    }
}
