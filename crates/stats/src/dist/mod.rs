//! Probability distributions: sampling, densities, CDFs, quantiles, moments.
//!
//! All distributions are implemented from scratch on top of a raw uniform
//! source. Continuous distributions implement [`Continuous`] (and therefore
//! [`Sample`]); discrete distributions implement [`Discrete`]. The sampling
//! methods are generic over the RNG (`R: Rng + ?Sized`) so hot loops
//! monomorphize down to direct calls; heterogeneous collections (e.g.
//! [`Mixture`]) use the object-safe [`DynSample`] / [`DynContinuous`]
//! views, which every distribution gets through blanket impls.
//!
//! The set is exactly what the paper's generative model and the fitting
//! machinery need:
//!
//! | Distribution | Used for |
//! |---|---|
//! | [`LogNormal`] | session ON times, transfer lengths, intra-session interarrivals |
//! | [`Exponential`] | session OFF times, Poisson interarrival gaps |
//! | [`ZipfTable`] | client interest profile (bounded, α < 1 allowed) |
//! | [`Zeta`] | transfers per session (unbounded Zipf, α > 1) |
//! | [`Pareto`] | heavy-tail comparisons / two-regime tail modeling |
//! | [`Normal`], [`Uniform`], [`Weibull`], [`Geometric`], [`Poisson`] | fitting alternatives, workload knobs |
//! | [`Mixture`] | bimodal transfer bandwidth (Fig 20) |
//! | [`Empirical`] | replaying measured marginals |
//! | [`Truncated`] | bounding sampled durations to the trace horizon |

mod alias;
mod empirical;
mod exponential;
mod gamma;
mod geometric;
mod lognormal;
mod mixture;
mod normal;
mod pareto;
mod poisson;
mod uniform;
mod weibull;
mod zeta;
mod zipf;

pub use alias::AliasTable;
pub use alias::SamplerBackend;
pub use empirical::Empirical;
pub use exponential::Exponential;
pub use gamma::Gamma;
pub use geometric::Geometric;
pub use lognormal::LogNormal;
pub use mixture::Mixture;
pub use normal::Normal;
pub use pareto::Pareto;
pub use poisson::Poisson;
pub use uniform::Uniform;
pub use weibull::Weibull;
pub use zeta::Zeta;
pub use zipf::ZipfTable;

use rand::Rng;

/// Error produced by distribution constructors on invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamError {
    /// Human-readable description of the violated constraint.
    pub message: String,
}

impl ParamError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.message)
    }
}

impl std::error::Error for ParamError {}

/// Anything that can produce a real-valued sample from an RNG.
///
/// The RNG parameter is generic so that a concrete distribution sampled
/// with a concrete RNG monomorphizes to a direct (inlinable) call — the
/// generator's hot loop pays no virtual dispatch per draw. Code that needs
/// runtime polymorphism uses the object-safe [`DynSample`] view instead.
pub trait Sample {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Draws `n` samples into a fresh vector.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Object-safe view of [`Sample`], for heterogeneous collections and
/// `&dyn`-typed fields. Every `Sample` type implements it via a blanket
/// impl; `sample_dyn` draws exactly the same value `sample` would.
pub trait DynSample {
    /// Draws one sample through a type-erased RNG.
    fn sample_dyn(&self, rng: &mut dyn Rng) -> f64;
}

impl<S: Sample> DynSample for S {
    fn sample_dyn(&self, rng: &mut dyn Rng) -> f64 {
        self.sample(rng)
    }
}

/// A continuous real-valued distribution.
pub trait Continuous: Sample {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution function `P[X <= x]`.
    fn cdf(&self, x: f64) -> f64;

    /// Quantile (inverse CDF). `p` must lie in `[0, 1]`.
    fn quantile(&self, p: f64) -> f64;

    /// Complementary CDF `P[X > x]`.
    fn ccdf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Distribution mean (may be `INFINITY` for very heavy tails).
    fn mean(&self) -> f64;

    /// Distribution variance (may be `INFINITY`).
    fn variance(&self) -> f64;
}

/// Object-safe view of [`Continuous`] (whose sampling method is generic
/// and therefore not dyn-compatible). The density/CDF methods carry a
/// `_dyn` suffix so concrete types implementing both traits never produce
/// ambiguous method calls. Implemented for every `Continuous` type via a
/// blanket impl.
pub trait DynContinuous: DynSample {
    /// Probability density at `x`.
    fn pdf_dyn(&self, x: f64) -> f64;

    /// Cumulative distribution function `P[X <= x]`.
    fn cdf_dyn(&self, x: f64) -> f64;

    /// Quantile (inverse CDF). `p` must lie in `[0, 1]`.
    fn quantile_dyn(&self, p: f64) -> f64;

    /// Distribution mean (may be `INFINITY`).
    fn mean_dyn(&self) -> f64;

    /// Distribution variance (may be `INFINITY`).
    fn variance_dyn(&self) -> f64;
}

impl<C: Continuous> DynContinuous for C {
    fn pdf_dyn(&self, x: f64) -> f64 {
        self.pdf(x)
    }

    fn cdf_dyn(&self, x: f64) -> f64 {
        self.cdf(x)
    }

    fn quantile_dyn(&self, p: f64) -> f64 {
        self.quantile(p)
    }

    fn mean_dyn(&self) -> f64 {
        Continuous::mean(self)
    }

    fn variance_dyn(&self) -> f64 {
        Continuous::variance(self)
    }
}

/// A discrete distribution over non-negative integers.
pub trait Discrete {
    /// Draws one integer sample.
    fn sample_k<R: Rng + ?Sized>(&self, rng: &mut R) -> u64;

    /// Probability mass at `k`.
    fn pmf(&self, k: u64) -> f64;

    /// Cumulative mass `P[K <= k]`.
    fn cdf_k(&self, k: u64) -> f64;

    /// Distribution mean (may be `INFINITY`).
    fn mean(&self) -> f64;

    /// Distribution variance (may be `INFINITY`).
    fn variance(&self) -> f64;
}

// NOTE: each discrete distribution also implements `Sample` (returning the
// integer draw as f64) in its own module; a blanket `impl<D: Discrete>
// Sample for D` would collide with the continuous impls under E0119's
// conservative overlap rules.

/// Restriction of a continuous distribution to an interval `[lo, hi]`.
///
/// Sampling uses the inverse-CDF transform restricted to
/// `[F(lo), F(hi)]`, so no rejection loop is needed and the cost is one
/// quantile evaluation per draw. Used to bound sampled durations to the
/// trace horizon without distorting the body of the distribution.
#[derive(Debug, Clone)]
pub struct Truncated<D: Continuous> {
    inner: D,
    lo: f64,
    hi: f64,
    f_lo: f64,
    f_hi: f64,
}

impl<D: Continuous> Truncated<D> {
    /// Restricts `inner` to `[lo, hi]`.
    ///
    /// Returns an error when the interval is empty or carries (numerically)
    /// zero probability mass.
    pub fn new(inner: D, lo: f64, hi: f64) -> Result<Self, ParamError> {
        if !(lo < hi) {
            return Err(ParamError::new(format!(
                "truncation interval [{lo}, {hi}] is empty"
            )));
        }
        let f_lo = inner.cdf(lo);
        let f_hi = inner.cdf(hi);
        if !(f_hi - f_lo > 0.0) {
            return Err(ParamError::new(format!(
                "truncation interval [{lo}, {hi}] has zero probability mass"
            )));
        }
        Ok(Self {
            inner,
            lo,
            hi,
            f_lo,
            f_hi,
        })
    }

    /// The underlying (untruncated) distribution.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Lower bound of the support.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the support.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl<D: Continuous> Sample for Truncated<D> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = crate::rng::u01(rng);
        let p = self.f_lo + u * (self.f_hi - self.f_lo);
        self.inner.quantile(p).clamp(self.lo, self.hi)
    }
}

impl<D: Continuous> Continuous for Truncated<D> {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            0.0
        } else {
            self.inner.pdf(x) / (self.f_hi - self.f_lo)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            (self.inner.cdf(x) - self.f_lo) / (self.f_hi - self.f_lo)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        self.inner
            .quantile(self.f_lo + p * (self.f_hi - self.f_lo))
            .clamp(self.lo, self.hi)
    }

    fn mean(&self) -> f64 {
        // No closed form in general; numerically integrate the quantile
        // function (mean = ∫₀¹ Q(p) dp), which is smooth and bounded here.
        let n = 2_048;
        let mut acc = 0.0;
        for i in 0..n {
            let p = (i as f64 + 0.5) / n as f64;
            acc += self.quantile(p);
        }
        acc / n as f64
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        let n = 2_048;
        let mut acc = 0.0;
        for i in 0..n {
            let p = (i as f64 + 0.5) / n as f64;
            let d = self.quantile(p) - m;
            acc += d * d;
        }
        acc / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedStream;

    #[test]
    fn truncated_respects_bounds() {
        let d = Truncated::new(Exponential::new(0.01).unwrap(), 10.0, 500.0).unwrap();
        let mut rng = SeedStream::new(1).rng("trunc");
        for _ in 0..5_000 {
            let x = d.sample(&mut rng);
            assert!((10.0..=500.0).contains(&x), "sample {x} escaped bounds");
        }
    }

    #[test]
    fn truncated_cdf_endpoints() {
        let d = Truncated::new(Exponential::new(0.01).unwrap(), 10.0, 500.0).unwrap();
        assert_eq!(d.cdf(5.0), 0.0);
        assert_eq!(d.cdf(1_000.0), 1.0);
        assert!((d.cdf(d.quantile(0.5)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn truncated_rejects_empty_interval() {
        assert!(Truncated::new(Exponential::new(1.0).unwrap(), 5.0, 5.0).is_err());
        assert!(Truncated::new(Exponential::new(1.0).unwrap(), 9.0, 2.0).is_err());
    }

    #[test]
    fn truncated_mean_between_bounds() {
        let d = Truncated::new(LogNormal::new(4.4, 1.4).unwrap(), 1.0, 10_000.0).unwrap();
        let m = d.mean();
        assert!(m > 1.0 && m < 10_000.0);
        // Truncation removes the upper tail, so the mean must not exceed the
        // untruncated mean.
        assert!(m < d.inner().mean());
    }

    #[test]
    fn discrete_sample_adapter() {
        let p = Poisson::new(4.0).unwrap();
        let mut rng = SeedStream::new(2).rng("poisson");
        let x = Sample::sample(&p, &mut rng);
        assert_eq!(x, x.trunc());
        assert!(x >= 0.0);
    }
}
