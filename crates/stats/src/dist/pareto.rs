//! Pareto distribution (type I), used for heavy-tail modeling and as the
//! comparison family in the lognormal-vs-Pareto debate the paper cites
//! (Downey 2001, Mitzenmacher 2002).

use super::{Continuous, ParamError, Sample};
use crate::rng::u01_open0;
use rand::Rng;

/// Pareto (type I) distribution with scale `xm > 0` and shape `alpha > 0`:
/// `P[X > x] = (xm / x)^alpha` for `x >= xm`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    xm: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto with scale `xm > 0` and shape `alpha > 0`.
    pub fn new(xm: f64, alpha: f64) -> Result<Self, ParamError> {
        if !(xm > 0.0) || !xm.is_finite() || !(alpha > 0.0) || !alpha.is_finite() {
            return Err(ParamError::new(format!(
                "Pareto requires xm > 0 and alpha > 0, got xm={xm}, alpha={alpha}"
            )));
        }
        Ok(Self { xm, alpha })
    }

    /// Scale (minimum) parameter.
    pub fn xm(&self) -> f64 {
        self.xm
    }

    /// Shape (tail index) parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Sample for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse transform on the CCDF: x = xm * u^{-1/alpha}, u ∈ (0, 1].
        self.xm * u01_open0(rng).powf(-1.0 / self.alpha)
    }
}

impl Continuous for Pareto {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.xm {
            0.0
        } else {
            self.alpha * self.xm.powf(self.alpha) / x.powf(self.alpha + 1.0)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.xm {
            0.0
        } else {
            1.0 - (self.xm / x).powf(self.alpha)
        }
    }

    fn ccdf(&self, x: f64) -> f64 {
        if x < self.xm {
            1.0
        } else {
            (self.xm / x).powf(self.alpha)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        self.xm * (1.0 - p).powf(-1.0 / self.alpha)
    }

    fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.xm / (self.alpha - 1.0)
        }
    }

    fn variance(&self) -> f64 {
        if self.alpha <= 2.0 {
            f64::INFINITY
        } else {
            let a = self.alpha;
            self.xm * self.xm * a / ((a - 1.0) * (a - 1.0) * (a - 2.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedStream;

    #[test]
    fn rejects_bad_params() {
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Pareto::new(1.0, 0.0).is_err());
        assert!(Pareto::new(-1.0, 2.0).is_err());
    }

    #[test]
    fn support_and_tail() {
        let d = Pareto::new(2.0, 1.5).unwrap();
        let mut rng = SeedStream::new(41).rng("pareto");
        let xs = d.sample_n(&mut rng, 50_000);
        assert!(xs.iter().all(|&x| x >= 2.0));
        // Empirical CCDF at x = 8 should be (2/8)^1.5 = 0.125^... = 0.0442.
        let frac = xs.iter().filter(|&&x| x > 8.0).count() as f64 / xs.len() as f64;
        assert!((frac - 0.25f64.powf(1.5)).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn infinite_moments_flagged() {
        assert!(Pareto::new(1.0, 1.0).unwrap().mean().is_infinite());
        assert!(Pareto::new(1.0, 1.5).unwrap().mean().is_finite());
        assert!(Pareto::new(1.0, 2.0).unwrap().variance().is_infinite());
        assert!(Pareto::new(1.0, 2.5).unwrap().variance().is_finite());
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let d = Pareto::new(1.0, 2.8).unwrap(); // paper's short-range IAT tail exponent
        for &p in &[0.0, 0.3, 0.5, 0.9, 0.99] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_formula() {
        let d = Pareto::new(3.0, 3.0).unwrap();
        assert!((d.mean() - 4.5).abs() < 1e-12);
        let mut rng = SeedStream::new(42).rng("pareto-mean");
        let xs = d.sample_n(&mut rng, 300_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 4.5).abs() < 0.05, "mean {mean}");
    }
}
