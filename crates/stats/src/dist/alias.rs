//! Vose alias tables: O(1) sampling from any finite discrete distribution.
//!
//! A bounded Zipf over the paper's ~692k-client population costs
//! `O(log n)` per draw with inverse-CDF binary search; the alias method
//! (Walker 1977, Vose 1991) turns every draw into two uniforms, one table
//! lookup and one compare — constant time regardless of support size.
//!
//! # Determinism contract
//!
//! [`AliasTable::sample`] uses a **fixed two-draw scheme**: the first
//! `u01` picks the column, the second resolves the column-vs-alias coin.
//! Exactly two uniforms are consumed per draw on every path, so the RNG
//! stream advances identically no matter which outcome is selected — a
//! requirement for the workspace's bit-reproducibility discipline (a
//! data-dependent draw count would let one sample's outcome perturb every
//! later substream draw).
//!
//! Note the alias backend consumes a *different* RNG stream than the
//! inverse-CDF backend (two draws vs one), so the two backends produce
//! different — though identically distributed — workloads from the same
//! seed. Backends are therefore always selected explicitly
//! ([`SamplerBackend`]); determinism fixtures pin one and assert on its
//! exact output.
//!
//! Construction is Vose's stable O(n) split into "small" and "large"
//! columns. Worklists are filled and drained in index order, so the built
//! table is a pure function of the weight vector: no hash-order or
//! platform dependence.

use super::ParamError;
use crate::rng::u01;
use rand::Rng;

/// Which sampling algorithm a table-backed discrete distribution uses.
///
/// Both backends draw from the same distribution; they consume the RNG
/// stream differently (see the module docs), so the choice is part of a
/// workload's determinism contract and is always made explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplerBackend {
    /// Binary search on the cumulative table: one uniform per draw,
    /// `O(log n)`. The historical default; existing fixtures pin it.
    #[default]
    InverseCdf,
    /// Vose alias table: two uniforms per draw, `O(1)`.
    Alias,
}

/// Walker/Vose alias table over `0..n`.
///
/// `prob[i]` is the probability (scaled to column mass 1) that a draw
/// landing in column `i` keeps `i`; otherwise it takes `alias[i]`.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (not necessarily
    /// normalized). `O(n)` time, deterministic: the same weights always
    /// produce the same table.
    pub fn new(weights: &[f64]) -> Result<Self, ParamError> {
        if weights.is_empty() {
            return Err(ParamError::new("AliasTable requires at least one weight"));
        }
        if weights.len() > u32::MAX as usize {
            return Err(ParamError::new(
                "AliasTable supports at most 2^32 - 1 columns",
            ));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(ParamError::new(
                "AliasTable weights must be finite and >= 0",
            ));
        }
        let total: f64 = weights.iter().sum();
        if !(total > 0.0) {
            return Err(ParamError::new("AliasTable weights must not all be zero"));
        }
        let n = weights.len();
        // Scale so the average column has mass exactly 1.
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut alias: Vec<u32> = (0..n as u32).collect();

        // Vose's split; index-ordered worklists keep construction a pure
        // function of the weights.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            // Column `s` is underfull: top it up from `l` and record the
            // donor as its alias.
            alias[s as usize] = l;
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Whatever remains is full up to rounding; clamp to 1 so the
        // column always keeps itself.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        Ok(Self { prob, alias })
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no columns (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index in `0..len()`. Always consumes exactly two
    /// uniforms (see the module-level determinism contract).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let n = self.prob.len();
        let col = ((u01(rng) * n as f64) as usize).min(n - 1);
        let coin = u01(rng);
        if coin < self.prob[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }

    /// Reconstructs the probability mass of index `i` implied by the
    /// table (for tests and diagnostics): its own column's share plus
    /// every column that aliases to it.
    pub fn implied_pmf(&self, i: usize) -> f64 {
        let n = self.prob.len() as f64;
        let mut mass = self.prob[i] / n;
        for (col, &a) in self.alias.iter().enumerate() {
            if a as usize == i && col != i {
                mass += (1.0 - self.prob[col]) / n;
            }
        }
        mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedStream;

    #[test]
    fn rejects_bad_weights() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
        assert!(AliasTable::new(&[1.0, -0.5]).is_err());
        assert!(AliasTable::new(&[1.0, f64::NAN]).is_err());
        assert!(AliasTable::new(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn implied_pmf_matches_weights() {
        let w = [5.0, 1.0, 3.0, 0.0, 1.0];
        let t = AliasTable::new(&w).unwrap();
        let total: f64 = w.iter().sum();
        for (i, &wi) in w.iter().enumerate() {
            assert!(
                (t.implied_pmf(i) - wi / total).abs() < 1e-12,
                "column {i}: implied {} vs exact {}",
                t.implied_pmf(i),
                wi / total
            );
        }
    }

    #[test]
    fn zero_weight_columns_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 2.0, 0.0]).unwrap();
        let mut rng = SeedStream::new(7).rng("alias-zero");
        for _ in 0..20_000 {
            let k = t.sample(&mut rng);
            assert!(k == 0 || k == 2, "drew zero-mass index {k}");
        }
    }

    #[test]
    fn single_column_always_wins() {
        let t = AliasTable::new(&[42.0]).unwrap();
        let mut rng = SeedStream::new(8).rng("alias-one");
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn sample_frequencies_match_weights() {
        let w = [10.0, 5.0, 2.5, 1.25, 1.25];
        let t = AliasTable::new(&w).unwrap();
        let total: f64 = w.iter().sum();
        let mut rng = SeedStream::new(9).rng("alias-freq");
        let mut counts = [0u32; 5];
        const N: usize = 200_000;
        for _ in 0..N {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let emp = f64::from(c) / N as f64;
            let theo = w[i] / total;
            assert!((emp - theo).abs() < 0.01, "index {i}: {emp} vs {theo}");
        }
    }

    #[test]
    fn consumes_exactly_two_draws_per_sample() {
        // The fixed two-draw scheme: interleaving samples with raw draws
        // must line up exactly with a hand-advanced twin stream.
        let t = AliasTable::new(&[3.0, 1.0, 1.0]).unwrap();
        let seeds = SeedStream::new(10);
        let mut a = seeds.rng("alias-two");
        let mut b = seeds.rng("alias-two");
        for _ in 0..500 {
            let _ = t.sample(&mut a);
            b.next_u64();
            b.next_u64();
            assert_eq!(a.next_u64(), b.next_u64(), "streams diverged");
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let w: Vec<f64> = (1..=1_000).map(|k| f64::from(k).powf(-0.7)).collect();
        let t1 = AliasTable::new(&w).unwrap();
        let t2 = AliasTable::new(&w).unwrap();
        assert_eq!(t1.alias, t2.alias);
        assert_eq!(t1.prob, t2.prob);
    }
}
