//! Geometric distribution over `k = 1, 2, 3, …` (number of trials until
//! first success).
//!
//! Offered as the light-tailed alternative to [`super::Zeta`] for
//! transfers-per-session in ablation studies: geometric matches a target
//! mean but has none of the Zipf tail, which makes the effect of the
//! heavy tail on concurrency visible.

use super::{Discrete, ParamError, Sample};
use crate::rng::u01_open0;
use rand::Rng;

/// Geometric distribution: `P[K = k] = (1-p)^{k-1} p`, `k >= 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates a geometric with success probability `0 < p <= 1`.
    pub fn new(p: f64) -> Result<Self, ParamError> {
        if !(p > 0.0 && p <= 1.0) {
            return Err(ParamError::new(format!(
                "Geometric requires 0 < p <= 1, got {p}"
            )));
        }
        Ok(Self { p })
    }

    /// Creates a geometric with the given mean `1/p >= 1`.
    pub fn with_mean(mean: f64) -> Result<Self, ParamError> {
        if !(mean >= 1.0) || !mean.is_finite() {
            return Err(ParamError::new(format!(
                "Geometric requires mean >= 1, got {mean}"
            )));
        }
        Self::new(1.0 / mean)
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Discrete for Geometric {
    fn sample_k<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        // Inverse transform: k = ceil(ln u / ln(1-p)), u ∈ (0, 1].
        let u = u01_open0(rng);
        let k = (u.ln() / (1.0 - self.p).ln()).ceil();
        (k as u64).max(1)
    }

    fn pmf(&self, k: u64) -> f64 {
        if k == 0 {
            0.0
        } else {
            (1.0 - self.p).powi((k - 1) as i32) * self.p
        }
    }

    fn cdf_k(&self, k: u64) -> f64 {
        if k == 0 {
            0.0
        } else {
            1.0 - (1.0 - self.p).powi(k as i32)
        }
    }

    fn mean(&self) -> f64 {
        1.0 / self.p
    }

    fn variance(&self) -> f64 {
        (1.0 - self.p) / (self.p * self.p)
    }
}

impl Sample for Geometric {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_k(rng) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedStream;

    #[test]
    fn rejects_bad_params() {
        assert!(Geometric::new(0.0).is_err());
        assert!(Geometric::new(1.5).is_err());
        assert!(Geometric::with_mean(0.5).is_err());
    }

    #[test]
    fn degenerate_p_one() {
        let d = Geometric::new(1.0).unwrap();
        let mut rng = SeedStream::new(111).rng("geo");
        for _ in 0..100 {
            assert_eq!(d.sample_k(&mut rng), 1);
        }
        assert_eq!(d.pmf(1), 1.0);
    }

    #[test]
    fn sample_mean_converges() {
        let d = Geometric::with_mean(3.7).unwrap();
        let mut rng = SeedStream::new(112).rng("geo2");
        const N: usize = 200_000;
        let mean: f64 = (0..N).map(|_| d.sample_k(&mut rng) as f64).sum::<f64>() / N as f64;
        assert!((mean - 3.7).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn pmf_sums_via_cdf() {
        let d = Geometric::new(0.3).unwrap();
        let partial: f64 = (1..=10).map(|k| d.pmf(k)).sum();
        assert!((d.cdf_k(10) - partial).abs() < 1e-12);
        assert!(d.cdf_k(200) > 0.999999);
    }

    #[test]
    fn support_starts_at_one() {
        let d = Geometric::new(0.9).unwrap();
        let mut rng = SeedStream::new(113).rng("geo3");
        for _ in 0..10_000 {
            assert!(d.sample_k(&mut rng) >= 1);
        }
    }
}
