//! Exponential distribution.
//!
//! Session OFF times fit an exponential with mean 203,150 s in the paper
//! (Fig 12); exponential gaps also drive every Poisson arrival process.

use super::{Continuous, ParamError, Sample};
use crate::rng::u01_open0;
use rand::Rng;

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential with rate `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if !(lambda > 0.0) || !lambda.is_finite() {
            return Err(ParamError::new(format!(
                "Exponential requires lambda > 0, got {lambda}"
            )));
        }
        Ok(Self { lambda })
    }

    /// Creates an exponential with the given mean (`1/lambda`).
    pub fn with_mean(mean: f64) -> Result<Self, ParamError> {
        if !(mean > 0.0) || !mean.is_finite() {
            return Err(ParamError::new(format!(
                "Exponential requires mean > 0, got {mean}"
            )));
        }
        Ok(Self { lambda: 1.0 / mean })
    }

    /// Rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Sample for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -u01_open0(rng).ln() / self.lambda
    }
}

impl Continuous for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.lambda * (-self.lambda * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            -(-self.lambda * x).exp_m1()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        -(-p).ln_1p() / self.lambda
    }

    fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    fn variance(&self) -> f64 {
        1.0 / (self.lambda * self.lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedStream;

    #[test]
    fn rejects_bad_params() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::with_mean(0.0).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
    }

    #[test]
    fn with_mean_matches_rate() {
        let d = Exponential::with_mean(203_150.0).unwrap();
        assert!((d.mean() - 203_150.0).abs() < 1e-6);
        assert!((d.lambda() - 1.0 / 203_150.0).abs() < 1e-15);
    }

    #[test]
    fn sample_mean_converges() {
        let d = Exponential::new(0.25).unwrap();
        let mut rng = SeedStream::new(31).rng("exp");
        let xs = d.sample_n(&mut rng, 200_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn memorylessness() {
        // P(X > s + t | X > s) == P(X > t), verified via the CDF.
        let d = Exponential::new(0.1).unwrap();
        let (s, t) = (7.0, 3.0);
        let lhs = d.ccdf(s + t) / d.ccdf(s);
        let rhs = d.ccdf(t);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let d = Exponential::new(2.0).unwrap();
        for &p in &[0.0, 0.1, 0.5, 0.9, 0.999] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-12);
        }
        // Median = ln 2 / lambda.
        assert!((d.quantile(0.5) - (2f64).ln() / 2.0).abs() < 1e-12);
    }
}
