//! Normal (Gaussian) distribution.

use super::{Continuous, ParamError, Sample};
use crate::rng::{u01, u01_open0};
use crate::special::{inv_norm_cdf, norm_cdf, norm_pdf};
use rand::Rng;

/// Normal distribution `N(mu, sigma²)`.
///
/// Sampling uses the Box–Muller transform (the cosine branch only, so the
/// sampler is stateless and deterministic per draw).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates `N(mu, sigma²)`; requires finite `mu` and `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        if !mu.is_finite() || !(sigma > 0.0) || !sigma.is_finite() {
            return Err(ParamError::new(format!(
                "Normal requires finite mu and sigma > 0, got mu={mu}, sigma={sigma}"
            )));
        }
        Ok(Self { mu, sigma })
    }

    /// Standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self {
            mu: 0.0,
            sigma: 1.0,
        }
    }

    /// Location parameter.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one standard-normal variate via Box–Muller.
    pub fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        let u1 = u01_open0(rng); // (0, 1]: safe for ln
        let u2 = u01(rng);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl Sample for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mu + self.sigma * Self::sample_standard(rng)
    }
}

impl Continuous for Normal {
    fn pdf(&self, x: f64) -> f64 {
        norm_pdf((x - self.mu) / self.sigma) / self.sigma
    }

    fn cdf(&self, x: f64) -> f64 {
        norm_cdf((x - self.mu) / self.sigma)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.mu + self.sigma * inv_norm_cdf(p)
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedStream;

    #[test]
    fn rejects_bad_params() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn sample_moments() {
        let d = Normal::new(5.0, 2.0).unwrap();
        let mut rng = SeedStream::new(11).rng("norm");
        let xs = d.sample_n(&mut rng, 200_000);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!((mean - 5.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let d = Normal::new(-1.0, 3.0).unwrap();
        for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-7);
        }
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        // Trapezoid integration of the pdf should match the CDF difference.
        let d = Normal::new(0.0, 1.0).unwrap();
        let (a, b) = (-1.5, 2.0);
        let n = 20_000;
        let h = (b - a) / n as f64;
        let mut acc = 0.0;
        for i in 0..n {
            let x0 = a + i as f64 * h;
            acc += 0.5 * (d.pdf(x0) + d.pdf(x0 + h)) * h;
        }
        assert!((acc - (d.cdf(b) - d.cdf(a))).abs() < 1e-6);
    }

    #[test]
    fn standard_normal_tail_fractions() {
        let mut rng = SeedStream::new(12).rng("norm-tail");
        let n = 100_000;
        let beyond2 = (0..n)
            .filter(|_| Normal::sample_standard(&mut rng).abs() > 2.0)
            .count() as f64
            / n as f64;
        // P(|Z| > 2) ≈ 0.0455.
        assert!((beyond2 - 0.0455).abs() < 0.004, "got {beyond2}");
    }
}
