//! Hypothesis tests: Kolmogorov–Smirnov and chi-square goodness of fit.
//!
//! §3.4 of the paper argues that client arrivals are Poisson *within short
//! stationary windows*. The chi-square Poisson dispersion test and the KS
//! exponential-interarrival test make that argument executable.

use crate::fit::FitError;
use crate::special::{gamma_q, ks_q};
use serde::{Deserialize, Serialize};

/// Result of a hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestResult {
    /// The test statistic.
    pub statistic: f64,
    /// Asymptotic p-value.
    pub p_value: f64,
}

impl TestResult {
    /// True when the null hypothesis survives at significance `alpha`.
    pub fn accepts(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// KS distance between a *sorted* sample and a theoretical CDF.
///
/// `D = sup_x |F_n(x) − F(x)|`, evaluated at the jump points.
pub fn ks_distance(sorted: &[f64], cdf: impl Fn(f64) -> f64) -> f64 {
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / n; // F_n just before the jump
        let hi = (i as f64 + 1.0) / n; // F_n just after
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// One-sample Kolmogorov–Smirnov test against a theoretical CDF.
///
/// Sorts internally. Uses the asymptotic p-value with the Stephens
/// small-sample correction `(√n + 0.12 + 0.11/√n)·D`.
///
/// Degenerate input (an empty sample) is an error, not a panic.
pub fn ks_test(data: &[f64], cdf: impl Fn(f64) -> f64) -> Result<TestResult, FitError> {
    if data.is_empty() {
        return Err(FitError::new("KS test on empty sample"));
    }
    let mut sorted = data.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    let d = ks_distance(&sorted, cdf);
    let sn = (sorted.len() as f64).sqrt();
    let lambda = (sn + 0.12 + 0.11 / sn) * d;
    Ok(TestResult {
        statistic: d,
        p_value: ks_q(lambda),
    })
}

/// Two-sample Kolmogorov–Smirnov test.
///
/// Tests whether `a` and `b` come from the same distribution. This is what
/// the paper's Fig 5-vs-Fig 6 "surprisingly similar" comparison amounts to.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Result<TestResult, FitError> {
    if a.is_empty() || b.is_empty() {
        return Err(FitError::new("KS two-sample on empty input"));
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_unstable_by(f64::total_cmp);
    sb.sort_unstable_by(f64::total_cmp);
    let (na, nb) = (sa.len(), sb.len());
    let mut i = 0;
    let mut j = 0;
    let mut d: f64 = 0.0;
    while i < na && j < nb {
        let xa = sa[i];
        let xb = sb[j];
        let x = xa.min(xb);
        while i < na && sa[i] <= x {
            i += 1;
        }
        while j < nb && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na as f64 - j as f64 / nb as f64).abs());
    }
    let ne = (na as f64 * nb as f64) / (na as f64 + nb as f64);
    let sn = ne.sqrt();
    let lambda = (sn + 0.12 + 0.11 / sn) * d;
    Ok(TestResult {
        statistic: d,
        p_value: ks_q(lambda),
    })
}

/// Chi-square goodness-of-fit test from observed and expected bin counts.
///
/// Bins with expected count below `min_expected` (conventionally 5) are
/// pooled into their neighbor. `ddof` is the number of parameters estimated
/// from the data (subtracted from the degrees of freedom along with 1).
///
/// Errors on mismatched bin vectors or when pooling leaves too few bins
/// for the requested degrees of freedom.
pub fn chi_square_test(
    observed: &[f64],
    expected: &[f64],
    ddof: usize,
) -> Result<TestResult, FitError> {
    if observed.len() != expected.len() {
        return Err(FitError::new(format!(
            "bin count mismatch: {} observed vs {} expected",
            observed.len(),
            expected.len()
        )));
    }
    const MIN_EXPECTED: f64 = 5.0;
    // Pool small-expectation bins left to right.
    let mut obs_pooled = Vec::new();
    let mut exp_pooled = Vec::new();
    let mut o_acc = 0.0;
    let mut e_acc = 0.0;
    for (&o, &e) in observed.iter().zip(expected) {
        o_acc += o;
        e_acc += e;
        if e_acc >= MIN_EXPECTED {
            obs_pooled.push(o_acc);
            exp_pooled.push(e_acc);
            o_acc = 0.0;
            e_acc = 0.0;
        }
    }
    if e_acc > 0.0 {
        // Fold the remainder into the last pooled bin.
        if let (Some(lo), Some(le)) = (obs_pooled.last_mut(), exp_pooled.last_mut()) {
            *lo += o_acc;
            *le += e_acc;
        } else {
            return Err(FitError::new("all expected counts pooled to zero"));
        }
    }
    let k = obs_pooled.len();
    if k <= 1 + ddof {
        return Err(FitError::new(format!(
            "only {k} bins after pooling with ddof {ddof}"
        )));
    }
    let stat: f64 = obs_pooled
        .iter()
        .zip(&exp_pooled)
        .map(|(&o, &e)| (o - e) * (o - e) / e)
        .sum();
    let dof = (k - 1 - ddof) as f64;
    // p-value = Q(dof/2, stat/2).
    Ok(TestResult {
        statistic: stat,
        p_value: gamma_q(dof / 2.0, stat / 2.0),
    })
}

/// Poisson dispersion test on a set of counts.
///
/// Under H₀ (iid Poisson), the index of dispersion
/// `D = (n−1)·s² / x̄` is asymptotically chi-square with `n−1` dof.
/// This is the classic test for "are these per-window arrival counts
/// Poisson?" used to validate §3.4's piecewise-stationarity claim.
///
/// Errors on degenerate input: fewer than two counts, or all zeros.
pub fn poisson_dispersion_test(counts: &[u64]) -> Result<TestResult, FitError> {
    if counts.len() < 2 {
        return Err(FitError::new("dispersion test needs >= 2 counts"));
    }
    let n = counts.len() as f64;
    let mean = counts.iter().map(|&c| c as f64).sum::<f64>() / n;
    if mean == 0.0 {
        return Err(FitError::new("dispersion test on all-zero counts"));
    }
    let ss: f64 = counts.iter().map(|&c| (c as f64 - mean).powi(2)).sum();
    let stat = ss / mean; // = (n-1) s² / x̄ with s² the unbiased variance
    let dof = n - 1.0;
    // Two-sided: both over- and under-dispersion refute Poisson.
    let upper = gamma_q(dof / 2.0, stat / 2.0);
    let lower = 1.0 - upper;
    Ok(TestResult {
        statistic: stat,
        p_value: 2.0 * upper.min(lower),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Continuous, Discrete, Exponential, LogNormal, Poisson, Sample};
    use crate::rng::SeedStream;

    #[test]
    fn ks_accepts_true_model() {
        let d = Exponential::new(0.5).unwrap();
        let mut rng = SeedStream::new(601).rng("ks1");
        let xs = d.sample_n(&mut rng, 5_000);
        let r = ks_test(&xs, |x| d.cdf(x)).unwrap();
        assert!(r.accepts(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn ks_rejects_wrong_model() {
        let d = LogNormal::new(4.0, 1.4).unwrap();
        let wrong = Exponential::with_mean(100.0).unwrap();
        let mut rng = SeedStream::new(602).rng("ks2");
        let xs = d.sample_n(&mut rng, 5_000);
        let r = ks_test(&xs, |x| wrong.cdf(x)).unwrap();
        assert!(!r.accepts(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn ks_two_sample_same_distribution() {
        let d = LogNormal::new(5.0, 1.5).unwrap();
        let mut rng = SeedStream::new(603).rng("ks3");
        let a = d.sample_n(&mut rng, 4_000);
        let b = d.sample_n(&mut rng, 4_000);
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(r.accepts(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn ks_two_sample_different_distributions() {
        let d1 = LogNormal::new(5.0, 1.5).unwrap();
        let d2 = LogNormal::new(5.5, 1.5).unwrap();
        let mut rng = SeedStream::new(604).rng("ks4");
        let a = d1.sample_n(&mut rng, 4_000);
        let b = d2.sample_n(&mut rng, 4_000);
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(!r.accepts(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn chi_square_uniform_counts() {
        // 6 fair-die faces, near-uniform observations.
        let obs = [98.0, 105.0, 102.0, 95.0, 101.0, 99.0];
        let exp = [100.0; 6];
        let r = chi_square_test(&obs, &exp, 0).unwrap();
        assert!(r.accepts(0.05), "p = {}", r.p_value);
        // Grossly skewed observations must be rejected.
        let bad = [300.0, 20.0, 20.0, 100.0, 100.0, 60.0];
        let r2 = chi_square_test(&bad, &exp, 0).unwrap();
        assert!(!r2.accepts(0.01), "p = {}", r2.p_value);
    }

    #[test]
    fn chi_square_pools_small_bins() {
        let obs = [50.0, 1.0, 1.0, 48.0];
        let exp = [49.0, 2.0, 2.0, 47.0];
        // Expected counts 2 and 2 get pooled; the test still runs.
        assert!(chi_square_test(&obs, &exp, 0).is_ok());
    }

    #[test]
    fn dispersion_accepts_poisson_counts() {
        let d = Poisson::new(40.0).unwrap();
        let mut rng = SeedStream::new(605).rng("disp");
        let counts: Vec<u64> = (0..500).map(|_| d.sample_k(&mut rng)).collect();
        let r = poisson_dispersion_test(&counts).unwrap();
        assert!(r.accepts(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn dispersion_rejects_overdispersed_counts() {
        // Mixture of two rates = overdispersed relative to Poisson.
        let lo = Poisson::new(5.0).unwrap();
        let hi = Poisson::new(100.0).unwrap();
        let mut rng = SeedStream::new(606).rng("disp2");
        let counts: Vec<u64> = (0..500)
            .map(|i| {
                if i % 2 == 0 {
                    lo.sample_k(&mut rng)
                } else {
                    hi.sample_k(&mut rng)
                }
            })
            .collect();
        let r = poisson_dispersion_test(&counts).unwrap();
        assert!(!r.accepts(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn dispersion_degenerate_inputs() {
        assert!(poisson_dispersion_test(&[]).is_err());
        assert!(poisson_dispersion_test(&[3]).is_err());
        assert!(poisson_dispersion_test(&[0, 0, 0]).is_err());
    }

    #[test]
    fn ks_degenerate_inputs_error_instead_of_panicking() {
        assert!(ks_test(&[], |x| x).is_err());
        assert!(ks_two_sample(&[], &[1.0]).is_err());
        assert!(ks_two_sample(&[1.0], &[]).is_err());
    }

    #[test]
    fn chi_square_degenerate_inputs_error_instead_of_panicking() {
        // Mismatched bin vectors used to assert; now they report.
        assert!(chi_square_test(&[1.0, 2.0], &[1.0], 0).is_err());
        // All-zero expectations cannot be pooled.
        assert!(chi_square_test(&[0.0, 0.0], &[0.0, 0.0], 0).is_err());
        // Too many estimated parameters for the pooled bin count.
        assert!(chi_square_test(&[50.0, 50.0], &[50.0, 50.0], 5).is_err());
    }
}
