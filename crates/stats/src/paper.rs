//! Published parameters of Veloso et al., IMC 2002 — single source of truth.
//!
//! Every constant the paper reports (Table 1 scale figures, Table 2
//! generative-model parameters, fitted exponents quoted in the text) lives
//! here so that the generator, the characterizer and the experiment harness
//! all agree on the target values.

/// Session timeout `T_o` (seconds) used throughout the paper (§4.1).
pub const SESSION_TIMEOUT_SECS: f64 = 1_500.0;

/// Trace duration: 28 days (§2.3, Table 1).
pub const TRACE_DAYS: u32 = 28;

/// Trace duration in seconds.
pub const TRACE_SECS: f64 = TRACE_DAYS as f64 * 86_400.0;

/// Number of live objects (feeds) served (Table 1).
pub const NUM_LIVE_OBJECTS: usize = 2;

/// Number of cameras behind the live feeds (§2.1).
pub const NUM_CAMERAS: usize = 48;

/// Total client autonomous systems observed (Table 1).
pub const NUM_CLIENT_AS: usize = 1_010;

/// Countries spanned by the client population (§3.1).
pub const NUM_COUNTRIES: usize = 11;

/// Total distinct client IPs (Table 1).
pub const NUM_CLIENT_IPS: usize = 364_184;

/// Total distinct users / player IDs (Table 1).
pub const NUM_USERS: usize = 691_889;

/// Lower bound on sessions in the trace (Table 1).
pub const MIN_SESSIONS: usize = 1_500_000;

/// Lower bound on transfers in the trace (Table 1).
pub const MIN_TRANSFERS: usize = 5_500_000;

/// Lower bound on bytes served (Table 1): 8 TB.
pub const MIN_BYTES: u64 = 8 * 1024 * 1024 * 1024 * 1024;

/// Zipf exponent of the client interest profile measured in *transfers*
/// per client rank (Fig 7 left).
pub const INTEREST_TRANSFERS_ALPHA: f64 = 0.719395;

/// Prefactor of the Fig 7 (left) Zipf fit.
pub const INTEREST_TRANSFERS_PREFACTOR: f64 = 0.00600482;

/// Zipf exponent of the client interest profile measured in *sessions*
/// per client rank (Fig 7 right; retained in Table 2).
pub const INTEREST_SESSIONS_ALPHA: f64 = 0.470438;

/// Prefactor of the Fig 7 (right) Zipf fit.
pub const INTEREST_SESSIONS_PREFACTOR: f64 = 0.000642496;

/// Session ON time lognormal μ (Fig 11).
pub const SESSION_ON_MU: f64 = 5.23553;

/// Session ON time lognormal σ (Fig 11).
pub const SESSION_ON_SIGMA: f64 = 1.54432;

/// Session OFF time exponential mean, seconds (Fig 12; ≈ 2.35 days).
pub const SESSION_OFF_MEAN: f64 = 203_150.0;

/// Transfers-per-session Zipf exponent (Fig 13, Table 2).
pub const TRANSFERS_PER_SESSION_ALPHA: f64 = 2.70417;

/// Transfers-per-session Zipf prefactor (Fig 13).
pub const TRANSFERS_PER_SESSION_PREFACTOR: f64 = 1.81054;

/// Intra-session transfer interarrival lognormal μ (Fig 14, Table 2).
pub const INTRA_SESSION_IAT_MU: f64 = 4.89991;

/// Intra-session transfer interarrival lognormal σ (Fig 14, Table 2).
pub const INTRA_SESSION_IAT_SIGMA: f64 = 1.32074;

/// Transfer length lognormal μ (Fig 19, Table 2).
pub const TRANSFER_LENGTH_MU: f64 = 4.383921;

/// Transfer length lognormal σ (Fig 19, Table 2).
pub const TRANSFER_LENGTH_SIGMA: f64 = 1.427247;

/// Transfer interarrival tail exponent for interarrivals ≤ 100 s (§5.2).
pub const TRANSFER_IAT_TAIL_ALPHA_SHORT: f64 = 2.8;

/// Transfer interarrival tail exponent for interarrivals > 100 s (§5.2).
pub const TRANSFER_IAT_TAIL_ALPHA_LONG: f64 = 1.0;

/// Boundary between the two transfer-interarrival tail regimes, seconds (§5.2).
pub const TRANSFER_IAT_REGIME_BOUNDARY: f64 = 100.0;

/// Fraction of transfers that are congestion-bound rather than
/// client-connection-bound (§5.4, footnote 12).
pub const CONGESTION_BOUND_FRACTION: f64 = 0.10;

/// Piecewise-stationary Poisson window used in §3.4, seconds (15 minutes).
pub const PIECEWISE_WINDOW_SECS: f64 = 900.0;

/// Bin width used for the temporal plots (Figs 4, 16, 18), seconds.
pub const TEMPORAL_BIN_SECS: f64 = 900.0;

/// Diurnal trough: the paper observes few clients between 4am and 11am (§3.2).
pub const DIURNAL_TROUGH_HOURS: (u32, u32) = (4, 11);

/// The paper's `⌊t⌋ + 1` convention for displaying (possibly zero) second
/// -resolution measurements on log axes (§2.3).
pub fn log_display_time(t: f64) -> f64 {
    t.floor() + 1.0
}

/// Fraction of time the server CPU stayed below 10% utilization (§2.4).
pub const SERVER_UNDERLOAD_TIME_FRACTION: f64 = 0.9999;

/// CPU utilization threshold used by the §2.4 overload analysis.
pub const SERVER_LOAD_THRESHOLD: f64 = 0.10;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_display_time_matches_paper_convention() {
        assert_eq!(log_display_time(0.0), 1.0);
        assert_eq!(log_display_time(0.9), 1.0);
        assert_eq!(log_display_time(1.0), 2.0);
        assert_eq!(log_display_time(59.3), 60.0);
    }

    #[test]
    fn derived_scales_consistent() {
        assert_eq!(TRACE_SECS, 2_419_200.0);
        // Mean session OFF ≈ 2.35 days as the paper's ripple analysis implies.
        assert!((SESSION_OFF_MEAN / 86_400.0 - 2.35).abs() < 0.01);
        // Lognormal session ON median e^μ ≈ 188 s.
        assert!((SESSION_ON_MU.exp() - 187.7).abs() < 1.0);
    }
}
