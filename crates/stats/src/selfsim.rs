//! Self-similarity estimation: variance-time analysis and R/S (rescaled
//! range) Hurst estimators.
//!
//! The paper's lineage runs straight through self-similar traffic:
//! Crovella & Bestavros \[14\] traced Web traffic self-similarity to
//! heavy-tailed transfers, and GISMO \[19\] generates "self-similar
//! variable bit-rate" content. These estimators let the workspace *test*
//! for long-range dependence — in generated VBR streams and in the
//! transfer-arrival counts of synthesized workloads.
//!
//! Both estimators are the classic graphical ones, made numeric:
//!
//! * **Variance-time**: for aggregation levels `m`, the variance of the
//!   `m`-aggregated series scales as `m^{2H−2}`; regressing
//!   `log Var(X^{(m)})` on `log m` gives `H = 1 + slope/2`.
//! * **R/S**: the rescaled range over windows of size `n` scales as
//!   `n^H`.

use crate::fit::{linear_regression, FitError};
use serde::{Deserialize, Serialize};

/// Result of a Hurst estimation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HurstEstimate {
    /// Estimated Hurst exponent (0.5 = short-range dependent; H → 1 =
    /// strongly self-similar).
    pub h: f64,
    /// R² of the underlying log-log regression.
    pub r2: f64,
    /// Number of scales used.
    pub n_scales: usize,
}

/// Variance-time Hurst estimator.
///
/// Aggregates the series at geometrically spaced block sizes between
/// `min_m` and `len / 8`, regresses log-variance on log-m. Requires a
/// series of at least 64 points with nonzero variance.
pub fn hurst_variance_time(series: &[f64], min_m: usize) -> Result<HurstEstimate, FitError> {
    if series.len() < 64 {
        return Err(FitError::new("variance-time needs >= 64 points"));
    }
    let max_m = series.len() / 8;
    if min_m < 1 || min_m >= max_m {
        return Err(FitError::new(format!(
            "invalid aggregation range {min_m}..{max_m}"
        )));
    }
    let mut points = Vec::new();
    let mut m = min_m;
    while m <= max_m {
        let agg = aggregate(series, m);
        if agg.len() >= 4 {
            if let Some(var) = variance(&agg) {
                if var > 0.0 {
                    points.push(((m as f64).ln(), var.ln()));
                }
            }
        }
        // Geometric spacing: ~10 scales per decade.
        m = ((m as f64) * 1.3).ceil() as usize;
    }
    if points.len() < 4 {
        return Err(FitError::new("too few usable aggregation scales"));
    }
    let (slope, _, r2) = linear_regression(&points)?;
    Ok(HurstEstimate {
        h: (1.0 + slope / 2.0).clamp(0.0, 1.0),
        r2,
        n_scales: points.len(),
    })
}

/// R/S (rescaled range) Hurst estimator.
///
/// Computes `E[R/S]` over non-overlapping windows at geometrically spaced
/// sizes and regresses `log(R/S)` on `log n`.
pub fn hurst_rs(series: &[f64]) -> Result<HurstEstimate, FitError> {
    if series.len() < 128 {
        return Err(FitError::new("R/S needs >= 128 points"));
    }
    let mut points = Vec::new();
    let mut n = 8usize;
    while n <= series.len() / 4 {
        let mut ratios = Vec::new();
        for window in series.chunks_exact(n) {
            if let Some(rs) = rescaled_range(window) {
                ratios.push(rs);
            }
        }
        if !ratios.is_empty() {
            let mean_rs = ratios.iter().sum::<f64>() / ratios.len() as f64;
            if mean_rs > 0.0 {
                points.push(((n as f64).ln(), mean_rs.ln()));
            }
        }
        n = ((n as f64) * 1.5).ceil() as usize;
    }
    if points.len() < 4 {
        return Err(FitError::new("too few usable window sizes"));
    }
    let (slope, _, r2) = linear_regression(&points)?;
    Ok(HurstEstimate {
        h: slope.clamp(0.0, 1.0),
        r2,
        n_scales: points.len(),
    })
}

/// Non-overlapping block means at aggregation level `m`.
fn aggregate(series: &[f64], m: usize) -> Vec<f64> {
    series
        .chunks_exact(m)
        .map(|c| c.iter().sum::<f64>() / m as f64)
        .collect()
}

fn variance(series: &[f64]) -> Option<f64> {
    if series.len() < 2 {
        return None;
    }
    let n = series.len() as f64;
    let mean = series.iter().sum::<f64>() / n;
    Some(series.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / n)
}

/// R/S statistic of one window: range of the mean-adjusted cumulative sum
/// divided by the window standard deviation.
fn rescaled_range(window: &[f64]) -> Option<f64> {
    let n = window.len() as f64;
    let mean = window.iter().sum::<f64>() / n;
    let sd = variance(window)?.sqrt();
    if sd == 0.0 {
        return None;
    }
    let mut acc = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &x in window {
        acc += x - mean;
        min = min.min(acc);
        max = max.max(acc);
    }
    Some((max - min) / sd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{u01, SeedStream};

    /// IID uniform noise: H ≈ 0.5.
    fn white_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SeedStream::new(seed).rng("white");
        (0..n).map(|_| u01(&mut rng)).collect()
    }

    /// A strongly long-range-dependent series: aggregated heavy-tailed
    /// ON/OFF sources (the Crovella–Bestavros mechanism). Pareto ON/OFF
    /// with alpha = 1.2 gives H = (3 − 1.2) / 2 = 0.9.
    fn lrd_series(n: usize, seed: u64) -> Vec<f64> {
        use crate::dist::{Pareto, Sample};
        let on_off = Pareto::new(1.0, 1.2).unwrap();
        let mut rng = SeedStream::new(seed).rng("lrd");
        let mut series = vec![0.0f64; n];
        // 128 aggregated sources: enough superposition that the variance-
        // time regression is stable (r² comfortably above 0.9) for any
        // reasonable RNG stream, while the Hurst exponent stays ≈ 0.9.
        for _ in 0..128 {
            let mut t = 0.0f64;
            let mut on = true;
            while (t as usize) < n {
                let dur = on_off.sample(&mut rng).min(n as f64);
                if on {
                    let end = ((t + dur) as usize).min(n);
                    for v in &mut series[(t as usize)..end] {
                        *v += 1.0;
                    }
                }
                t += dur;
                on = !on;
            }
        }
        series
    }

    #[test]
    fn white_noise_is_not_self_similar() {
        let s = white_noise(16_384, 1);
        let vt = hurst_variance_time(&s, 2).unwrap();
        assert!((vt.h - 0.5).abs() < 0.1, "VT H = {}", vt.h);
        let rs = hurst_rs(&s).unwrap();
        // R/S is biased upward on short series; accept a loose band.
        assert!((0.4..0.68).contains(&rs.h), "R/S H = {}", rs.h);
    }

    #[test]
    fn heavy_tailed_onoff_is_self_similar() {
        let s = lrd_series(16_384, 2);
        let vt = hurst_variance_time(&s, 2).unwrap();
        assert!(vt.h > 0.7, "VT H = {} (expected ≈ 0.9)", vt.h);
        let rs = hurst_rs(&s).unwrap();
        assert!(rs.h > 0.7, "R/S H = {}", rs.h);
        // And the regression actually fits.
        assert!(vt.r2 > 0.9, "VT r2 = {}", vt.r2);
    }

    #[test]
    fn estimators_agree_on_ordering() {
        let white = white_noise(8_192, 3);
        let lrd = lrd_series(8_192, 3);
        let h_white = hurst_variance_time(&white, 2).unwrap().h;
        let h_lrd = hurst_variance_time(&lrd, 2).unwrap().h;
        assert!(h_lrd > h_white + 0.15, "white {h_white} vs LRD {h_lrd}");
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(hurst_variance_time(&[1.0; 32], 2).is_err()); // too short
        assert!(hurst_variance_time(&vec![5.0; 1_000], 2).is_err()); // zero variance
        assert!(hurst_rs(&[0.0; 64]).is_err()); // too short
        assert!(hurst_variance_time(&white_noise(1_000, 4), 500).is_err()); // bad range
    }
}
