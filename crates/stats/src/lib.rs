//! # lsw-stats — statistical substrate for live streaming workload modeling
//!
//! This crate provides every piece of probability and statistics machinery
//! needed to reproduce *"A Hierarchical Characterization of a Live Streaming
//! Media Workload"* (Veloso et al., IMC 2002), implemented from scratch:
//!
//! * **Distributions** ([`dist`]) — lognormal, exponential, bounded Zipf,
//!   zeta, Pareto, normal, Poisson, geometric, Weibull, mixtures and
//!   empirical distributions, all with sampling, densities, CDFs, quantiles
//!   and moments.
//! * **Arrival processes** ([`process`]) — homogeneous Poisson, the paper's
//!   *piecewise-stationary* Poisson process, general non-homogeneous Poisson
//!   via thinning, and ON/OFF renewal processes.
//! * **Estimators** ([`fit`]) — maximum-likelihood fits (lognormal,
//!   exponential, normal, Pareto), log-log least-squares Zipf fits, Hill tail
//!   estimation and simple model selection.
//! * **Empirical statistics** ([`empirical`]) — summary moments, ECDF/CCDF,
//!   linear and logarithmic histograms, rank-frequency tables.
//! * **Time series** ([`timeseries`]) — fixed-width binning, periodic folding
//!   (mod-day / mod-week views) and autocorrelation.
//! * **Hypothesis tests** ([`hypothesis`]) — Kolmogorov–Smirnov (one- and
//!   two-sample) and chi-square goodness of fit.
//! * **Deterministic randomness** ([`rng`]) — a master seed fans out into
//!   independent named substreams so every experiment is reproducible.
//! * **Deterministic parallelism** ([`par`]) — worker-count policy plus an
//!   order-preserving k-way run merge, so multi-core stages produce
//!   bit-identical output at any thread count.
//! * **Self-similarity** ([`selfsim`]) — variance-time and R/S Hurst
//!   estimators, for the long-range-dependence lineage the paper builds
//!   on (Crovella & Bestavros) and GISMO's self-similar VBR content.
//!
//! The paper's published parameters are collected in [`paper`] so the rest of
//! the workspace can refer to a single source of truth.
//!
//! ## Example
//!
//! ```
//! use lsw_stats::dist::{LogNormal, Sample};
//! use lsw_stats::fit::fit_lognormal;
//! use lsw_stats::rng::SeedStream;
//!
//! // The paper's transfer-length distribution (Table 2).
//! let d = LogNormal::new(4.383921, 1.427247).unwrap();
//! let mut rng = SeedStream::new(42).rng("transfer-length");
//! let xs: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
//! let fit = fit_lognormal(&xs).unwrap();
//! assert!((fit.mu - 4.383921).abs() < 0.05);
//! assert!((fit.sigma - 1.427247).abs() < 0.05);
//! ```

#![warn(missing_docs)]
// `!(x > 0.0)` in parameter validation is deliberate: unlike `x <= 0.0` it
// also rejects NaN, which is exactly the point of those guards.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Numeric tables (Lanczos coefficients, paper parameters) are transcribed at
// their published precision; truncating them would hide the provenance.
#![allow(clippy::excessive_precision)]

pub mod dist;
pub mod empirical;
pub mod fit;
pub mod hypothesis;
pub mod paper;
pub mod par;
pub mod process;
pub mod rng;
pub mod selfsim;
pub mod special;
pub mod timeseries;

pub use dist::Sample;
pub use empirical::{Ecdf, Histogram, RankFrequency, Summary};
pub use rng::SeedStream;
