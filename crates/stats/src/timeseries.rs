//! Time-series utilities: binning, periodic folding, autocorrelation.
//!
//! These produce the temporal panels of the paper: Fig 4 / Fig 16 (counts
//! per 15-minute bin over the trace, folded mod-week and mod-day), Fig 8
//! (autocorrelation of the client count with daily peaks at lags that are
//! multiples of 1440 minutes) and Fig 18 (mean interarrival per bin).

use serde::{Deserialize, Serialize};

/// Counts events into fixed-width time bins over `[0, horizon)`.
///
/// Returns one count per bin; events outside the horizon are ignored.
pub fn bin_counts(times: &[f64], bin_width: f64, horizon: f64) -> Vec<u64> {
    assert!(bin_width > 0.0 && horizon > 0.0, "invalid binning");
    let nbins = (horizon / bin_width).ceil() as usize;
    let mut counts = vec![0u64; nbins];
    for &t in times {
        if t >= 0.0 && t < horizon {
            let idx = ((t / bin_width) as usize).min(nbins - 1);
            counts[idx] += 1;
        }
    }
    counts
}

/// Averages per-bin values of events into fixed-width time bins.
///
/// `events` are `(time, value)` pairs; returns `(mean value, count)` per
/// bin with `NaN` mean for empty bins. Used for Fig 18 (mean transfer
/// interarrival per 15-minute bin).
pub fn bin_means(events: &[(f64, f64)], bin_width: f64, horizon: f64) -> Vec<(f64, u64)> {
    assert!(bin_width > 0.0 && horizon > 0.0, "invalid binning");
    let nbins = (horizon / bin_width).ceil() as usize;
    let mut sums = vec![0.0f64; nbins];
    let mut counts = vec![0u64; nbins];
    for &(t, v) in events {
        if t >= 0.0 && t < horizon {
            let idx = ((t / bin_width) as usize).min(nbins - 1);
            sums[idx] += v;
            counts[idx] += 1;
        }
    }
    sums.iter()
        .zip(&counts)
        .map(|(&s, &c)| {
            if c > 0 {
                (s / c as f64, c)
            } else {
                (f64::NAN, 0)
            }
        })
        .collect()
}

/// Folds a binned series modulo a period, averaging across repetitions.
///
/// `series[i]` is the value of bin `i` (bin width `bin_width` seconds);
/// the result has `period / bin_width` bins, each the mean of all input
/// bins congruent to it mod the period. NaN entries are skipped. This is
/// exactly the paper's "time (modulo one week / 24 hours)" view.
pub fn fold_periodic(series: &[f64], bin_width: f64, period: f64) -> Vec<f64> {
    assert!(bin_width > 0.0 && period > 0.0, "invalid fold");
    let bins_per_period = (period / bin_width).round() as usize;
    assert!(bins_per_period >= 1, "period shorter than one bin");
    let mut sums = vec![0.0f64; bins_per_period];
    let mut counts = vec![0u64; bins_per_period];
    for (i, &v) in series.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        let idx = i % bins_per_period;
        sums[idx] += v;
        counts[idx] += 1;
    }
    sums.iter()
        .zip(&counts)
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { f64::NAN })
        .collect()
}

/// Sample autocorrelation function of a series at lags `0..=max_lag`.
///
/// Standard biased estimator: `r(l) = Σ (x_t − x̄)(x_{t+l} − x̄) / Σ (x_t − x̄)²`.
/// `r(0)` is always 1. NaN entries are not supported (fill or drop first).
pub fn autocorrelation(series: &[f64], max_lag: usize) -> Vec<f64> {
    let n = series.len();
    assert!(n >= 2, "autocorrelation needs >= 2 points");
    let max_lag = max_lag.min(n - 1);
    let mean = series.iter().sum::<f64>() / n as f64;
    let denom: f64 = series.iter().map(|&x| (x - mean).powi(2)).sum();
    if denom == 0.0 {
        // Constant series: define ACF as 1 at lag 0 and 0 beyond, which is
        // the convention least surprising to downstream peak-finders.
        let mut out = vec![0.0; max_lag + 1];
        out[0] = 1.0;
        return out;
    }
    let mut out = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag {
        let mut num = 0.0;
        for t in 0..n - lag {
            num += (series[t] - mean) * (series[t + lag] - mean);
        }
        out.push(num / denom);
    }
    out
}

/// Finds local maxima of a series (e.g. ACF daily peaks) above `threshold`.
///
/// A point is a peak when it exceeds both neighbors. Returns indices.
pub fn find_peaks(series: &[f64], threshold: f64) -> Vec<usize> {
    let mut peaks = Vec::new();
    for i in 1..series.len().saturating_sub(1) {
        if series[i] > threshold && series[i] > series[i - 1] && series[i] > series[i + 1] {
            peaks.push(i);
        }
    }
    peaks
}

/// Simple centered moving average with window `2k + 1` (edges truncated).
pub fn moving_average(series: &[f64], k: usize) -> Vec<f64> {
    let n = series.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(k);
        let hi = (i + k + 1).min(n);
        let window = &series[lo..hi];
        out.push(window.iter().sum::<f64>() / window.len() as f64);
    }
    out
}

/// A binned time series with its bin width, ready for folding/plotting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BinnedSeries {
    /// Value per bin.
    pub values: Vec<f64>,
    /// Bin width in seconds.
    pub bin_width: f64,
}

impl BinnedSeries {
    /// Wraps values with their bin width.
    pub fn new(values: Vec<f64>, bin_width: f64) -> Self {
        assert!(bin_width > 0.0, "bin width must be positive");
        Self { values, bin_width }
    }

    /// `(bin start time, value)` pairs.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 * self.bin_width, v))
            .collect()
    }

    /// Folds modulo `period` seconds (mean across repetitions).
    pub fn fold(&self, period: f64) -> BinnedSeries {
        BinnedSeries::new(
            fold_periodic(&self.values, self.bin_width, period),
            self.bin_width,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_counts_basic() {
        let counts = bin_counts(&[0.0, 0.5, 1.5, 2.5, 9.99, 10.0, -1.0], 1.0, 10.0);
        assert_eq!(counts.len(), 10);
        assert_eq!(counts[0], 2);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[2], 1);
        assert_eq!(counts[9], 1);
        // 10.0 and -1.0 are outside the horizon.
        assert_eq!(counts.iter().sum::<u64>(), 5);
    }

    #[test]
    fn bin_means_basic() {
        let means = bin_means(&[(0.1, 2.0), (0.9, 4.0), (1.5, 10.0)], 1.0, 3.0);
        assert_eq!(means.len(), 3);
        assert_eq!(means[0], (3.0, 2));
        assert_eq!(means[1], (10.0, 1));
        assert!(means[2].0.is_nan());
        assert_eq!(means[2].1, 0);
    }

    #[test]
    fn fold_periodic_averages_repetitions() {
        // Two periods of [1, 2, 3] and [3, 4, 5] → fold = [2, 3, 4].
        let folded = fold_periodic(&[1.0, 2.0, 3.0, 3.0, 4.0, 5.0], 1.0, 3.0);
        assert_eq!(folded, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn fold_skips_nan() {
        let folded = fold_periodic(&[1.0, f64::NAN, 3.0, 5.0], 1.0, 2.0);
        assert_eq!(folded, vec![2.0, 5.0]);
    }

    #[test]
    fn autocorrelation_of_periodic_signal_peaks_at_period() {
        // Period-24 sinusoid, 10 cycles.
        let series: Vec<f64> = (0..240)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 24.0).sin())
            .collect();
        let acf = autocorrelation(&series, 60);
        assert!((acf[0] - 1.0).abs() < 1e-12);
        // Strong positive correlation at the period, negative at half-period.
        assert!(acf[24] > 0.8, "acf[24] = {}", acf[24]);
        assert!(acf[12] < -0.8, "acf[12] = {}", acf[12]);
        let peaks = find_peaks(&acf, 0.5);
        assert!(peaks.contains(&24), "peaks {peaks:?}");
        assert!(peaks.contains(&48), "peaks {peaks:?}");
    }

    #[test]
    fn autocorrelation_constant_series() {
        let acf = autocorrelation(&[5.0; 10], 3);
        assert_eq!(acf, vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn autocorrelation_white_noise_is_small() {
        // Deterministic pseudo-noise via a simple LCG.
        let mut x = 12345u64;
        let series: Vec<f64> = (0..2_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect();
        let acf = autocorrelation(&series, 10);
        for (lag, &a) in acf.iter().enumerate().skip(1) {
            assert!(a.abs() < 0.1, "acf[{lag}] = {a}");
        }
    }

    #[test]
    fn moving_average_smooths() {
        let ma = moving_average(&[0.0, 10.0, 0.0, 10.0, 0.0], 1);
        assert_eq!(ma[0], 5.0); // truncated window [0, 10]
        assert!((ma[2] - 20.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn binned_series_fold_round_trip() {
        let s = BinnedSeries::new((0..96).map(|i| (i % 4) as f64).collect(), 900.0);
        let folded = s.fold(3_600.0);
        assert_eq!(folded.values.len(), 4);
        assert_eq!(folded.values, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(folded.points()[1].0, 900.0);
    }
}
