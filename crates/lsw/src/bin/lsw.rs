//! `lsw` — command-line front end: generate, characterize, summarize.
//!
//! ```text
//! lsw generate  [--days D] [--clients N] [--sessions N] [--seed S]
//!               [--threads T] [--sampler cdf|alias] [--simulate]
//!               [--scale-matched] --out LOG
//! lsw characterize LOG [--horizon SECS] [--timeout TO] [--json FILE]
//! lsw analyze     LOG [--stream] [--compare] [--shards N]
//!                 [--memory-budget BYTES] [--horizon SECS] [--timeout TO]
//!                 [--json FILE]
//! lsw summary     LOG [--horizon SECS]
//! ```
//!
//! `analyze` is the streaming front end: with `--stream` the log is
//! consumed one chunk at a time through the bounded-memory sketch engine
//! (`lsw_stream`), so arbitrarily long logs never have to fit in RAM;
//! `--memory-budget` scales the sketches to a byte budget. With
//! `--compare` both pipelines run and a per-estimator relative-error
//! table is printed. Without either flag it behaves like `characterize`
//! plus the §2.4 ingest accounting.
//!
//! Logs are the WMS-style text format (`lsw_trace::wms`); `generate`
//! writes one, the other commands read one. All times are seconds since
//! the log's epoch.
//!
//! `--threads` (or the `LSW_THREADS` environment variable) sets the
//! worker count; the default is the number of available cores. Output is
//! bit-identical at every thread count — the setting only changes speed.
//! `--sampler` picks the interest-profile sampling backend (`cdf`, the
//! default, or the O(1) `alias` table); unlike `--threads` the backend IS
//! part of the output's determinism contract — the two settings produce
//! different, identically distributed, workloads from one seed.

use lsw::analysis::characterize_with;
use lsw::core::config::WorkloadConfig;
use lsw::core::generator::Generator;
use lsw::sim::{SimConfig, Simulator};
use lsw::stats::dist::SamplerBackend;
use lsw::stats::par::Parallelism;
use lsw::stream::{StreamAnalyzer, StreamConfig};
use lsw::trace::sanitize::sanitize;
use lsw::trace::session::SessionConfig;
use lsw::trace::wms;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("characterize") => cmd_characterize(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("summary") => cmd_summary(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!(
                "usage:\n  lsw generate [--days D] [--clients N] [--sessions N] [--seed S] \
                 [--threads T] [--sampler cdf|alias] [--simulate] [--scale-matched] --out \
                 LOG\n  lsw characterize LOG \
                 [--horizon SECS] [--timeout TO] [--json FILE]\n  lsw analyze LOG [--stream] \
                 [--compare] [--shards N] [--memory-budget BYTES] [--horizon SECS] [--timeout TO] \
                 [--json FILE]\n  lsw summary LOG [--horizon SECS]"
            );
        }
        Some(other) => {
            eprintln!("unknown command {other:?}; try --help");
            exit(2);
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_or<T: std::str::FromStr>(v: Option<&str>, default: T, name: &str) -> T {
    match v {
        None => default,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("bad value for {name}: {s:?}");
            exit(2);
        }),
    }
}

fn cmd_generate(args: &[String]) {
    let days: f64 = parse_or(flag_value(args, "--days"), 1.0, "--days");
    let clients: usize = parse_or(flag_value(args, "--clients"), 20_000, "--clients");
    let sessions: usize = parse_or(flag_value(args, "--sessions"), 30_000, "--sessions");
    let seed: u64 = parse_or(flag_value(args, "--seed"), 42, "--seed");
    let simulate = args.iter().any(|a| a == "--simulate");
    let scale_matched = args.iter().any(|a| a == "--scale-matched");
    let Some(out) = flag_value(args, "--out") else {
        eprintln!("generate requires --out LOG");
        exit(2);
    };

    let horizon = (days * 86_400.0) as u32;
    let base = if scale_matched {
        WorkloadConfig::paper_scale_matched()
    } else {
        WorkloadConfig::paper()
    };
    let par = match flag_value(args, "--threads") {
        None => Parallelism::auto(),
        Some(s) => Parallelism::fixed(parse_or(Some(s), 0usize, "--threads").max(1)),
    };
    let config = base.scaled(clients, horizon, sessions);
    let backend = match flag_value(args, "--sampler") {
        None | Some("cdf") => SamplerBackend::InverseCdf,
        Some("alias") => SamplerBackend::Alias,
        Some(other) => {
            eprintln!("bad value for --sampler: {other:?} (expected cdf or alias)");
            exit(2);
        }
    };
    let workload = Generator::new(config, seed).unwrap_or_else(|e| {
        eprintln!("invalid configuration: {e}");
        exit(2);
    });
    let workload = workload
        .with_sampler_backend(backend)
        .unwrap_or_else(|e| {
            eprintln!("invalid sampler backend: {e}");
            exit(2);
        })
        .with_parallelism(par)
        .generate();
    eprintln!(
        "generated {} sessions / {} transfers over {days} day(s)",
        workload.sessions().len(),
        workload.len()
    );
    let trace = if simulate {
        let out = Simulator::new(SimConfig::default()).run(&workload, seed);
        eprintln!(
            "simulated: {} congested transfers, {:.2} GB delivered",
            out.congested_transfers,
            out.bytes_delivered as f64 / 1e9
        );
        out.trace
    } else {
        workload.render()
    };
    let text = wms::format_log(trace.entries());
    std::fs::write(out, &text).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    eprintln!("wrote {} entries to {out}", trace.len());
}

fn load(
    args: &[String],
) -> (
    lsw::trace::trace::Trace,
    u32,
    lsw::trace::sanitize::SanitizeReport,
) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("expected a LOG file argument");
        exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    let entries = wms::parse_log(&text).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1);
    });
    // Horizon: explicit flag, or inferred from the last stop time.
    let inferred = entries.iter().map(|e| e.stop()).max().unwrap_or(0) + 1;
    let horizon: u32 = parse_or(flag_value(args, "--horizon"), inferred, "--horizon");
    let (trace, report) = sanitize(entries, horizon);
    if report.rejected() > 0 {
        eprintln!(
            "sanitized: dropped {} of {} entries",
            report.rejected(),
            report.examined
        );
    }
    (trace, horizon, report)
}

fn cmd_characterize(args: &[String]) {
    let (trace, _, ingest) = load(args);
    let timeout: f64 = parse_or(
        flag_value(args, "--timeout"),
        lsw::stats::paper::SESSION_TIMEOUT_SECS,
        "--timeout",
    );
    let report = characterize_with(&trace, SessionConfig { timeout }, 0).with_ingest(ingest);
    println!("{}", report.headline());
    if let Some(json_path) = flag_value(args, "--json") {
        std::fs::write(json_path, report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {json_path}: {e}");
            exit(1);
        });
        eprintln!("full report written to {json_path}");
    }
}

fn stream_config(args: &[String]) -> StreamConfig {
    let mut cfg = StreamConfig {
        timeout: parse_or(
            flag_value(args, "--timeout"),
            lsw::stats::paper::SESSION_TIMEOUT_SECS,
            "--timeout",
        ),
        ..StreamConfig::default()
    };
    if let Some(h) = flag_value(args, "--horizon") {
        cfg.horizon = Some(parse_or(Some(h), 0u32, "--horizon"));
    }
    if let Some(s) = flag_value(args, "--shards") {
        cfg.shards = parse_or(Some(s), 1usize, "--shards").max(1);
    }
    if let Some(b) = flag_value(args, "--memory-budget") {
        cfg = cfg.with_memory_budget(parse_or(Some(b), usize::MAX, "--memory-budget"));
    }
    cfg
}

fn run_stream(path: &str, cfg: StreamConfig) -> lsw::stream::StreamReport {
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        exit(1);
    });
    let mut engine = StreamAnalyzer::new(cfg);
    engine
        .ingest_read(std::io::BufReader::new(file))
        .unwrap_or_else(|e| {
            eprintln!("read error on {path}: {e}");
            exit(1);
        });
    engine.finalize()
}

fn cmd_analyze(args: &[String]) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("analyze expects a LOG file argument");
        exit(2);
    };
    let path = path.clone();
    let streaming = args.iter().any(|a| a == "--stream");
    let comparing = args.iter().any(|a| a == "--compare");
    // Parse up front so a bad stream flag exits 2 in every analyze mode.
    let stream_cfg = stream_config(args);

    if streaming && !comparing {
        // One pass, bounded memory: the log never has to fit in RAM.
        let report = run_stream(&path, stream_cfg);
        println!("{}", report.headline());
        if let Some(json_path) = flag_value(args, "--json") {
            std::fs::write(json_path, report.to_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {json_path}: {e}");
                exit(1);
            });
            eprintln!("stream report written to {json_path}");
        }
        return;
    }

    let (trace, horizon, ingest) = load(args);
    let timeout: f64 = parse_or(
        flag_value(args, "--timeout"),
        lsw::stats::paper::SESSION_TIMEOUT_SECS,
        "--timeout",
    );
    let batch = characterize_with(&trace, SessionConfig { timeout }, 0).with_ingest(ingest);

    if comparing {
        // Pin the streaming horizon to the batch one so both pipelines
        // apply identical rejection rules.
        let mut cfg = stream_cfg;
        cfg.horizon = Some(horizon);
        let stream = run_stream(&path, cfg);
        println!("{}", lsw::analysis::stream_compare::render(&batch, &stream));
        if let Some(json_path) = flag_value(args, "--json") {
            std::fs::write(json_path, stream.to_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {json_path}: {e}");
                exit(1);
            });
            eprintln!("stream report written to {json_path}");
        }
        return;
    }

    println!("{}", batch.headline());
    if let Some(json_path) = flag_value(args, "--json") {
        std::fs::write(json_path, batch.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {json_path}: {e}");
            exit(1);
        });
        eprintln!("full report written to {json_path}");
    }
}

fn cmd_summary(args: &[String]) {
    let (trace, _, _) = load(args);
    println!("{}", trace.summary());
}
