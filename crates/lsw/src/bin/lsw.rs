//! `lsw` — command-line front end: generate, characterize, summarize.
//!
//! ```text
//! lsw generate  [--days D] [--clients N] [--sessions N] [--seed S]
//!               [--threads T] [--sampler cdf|alias] [--simulate]
//!               [--scale-matched] [--emit wms|ltc] --out LOG
//! lsw characterize LOG [--format auto|wms|ltc] [--horizon SECS]
//!                 [--timeout TO] [--json FILE]
//! lsw analyze     LOG [--format auto|wms|ltc] [--stream] [--compare]
//!                 [--shards N] [--memory-budget BYTES] [--horizon SECS]
//!                 [--timeout TO] [--json FILE]
//! lsw summary     LOG [--format auto|wms|ltc] [--horizon SECS]
//! lsw convert     IN OUT [--format auto|wms|ltc]
//! lsw replay      LOG [--format auto|wms|ltc] [--compression C]
//!                 [--virtual-time] [--admission N] [--workers N]
//!                 [--topology origin[:R[:as|country|client]]]
//!                 [--origin-admission N]
//!                 [--data-plane reactor|tick] [--expose SECS]
//!                 [--json FILE] [--no-assert]
//! lsw serve       LOG [--format auto|wms|ltc] [--listen ADDR]
//!                 [--compression C] [--admission N] [--workers N]
//!                 [--data-plane reactor|tick] [--for SECS] [--expose SECS]
//! ```
//!
//! `analyze` is the streaming front end: with `--stream` the log is
//! consumed one chunk at a time through the bounded-memory sketch engine
//! (`lsw_stream`), so arbitrarily long logs never have to fit in RAM;
//! `--memory-budget` scales the sketches to a byte budget. With
//! `--compare` both pipelines run and a per-estimator relative-error
//! table is printed. Without either flag it behaves like `characterize`
//! plus the §2.4 ingest accounting.
//!
//! Logs come in two formats: the WMS-style text format (`lsw_trace::wms`)
//! and the columnar binary container (`lsw_trace::ltc`), which is smaller
//! and several times faster to ingest. Every reading command sniffs the
//! 4-byte `ltc` magic by default (`--format auto`); `--format wms|ltc`
//! forces a format. `convert` transcodes between the two — the direction
//! follows from the input's format — and `generate --emit ltc` writes the
//! binary container directly. All times are seconds since the log's
//! epoch.
//!
//! `replay` extracts the replayable transfer schedule from a log and
//! replays it against an in-process localhost server at `--compression`×
//! real time (`lsw_replay`), then closes the loop: the traffic actually
//! served is re-characterized through the embedded `lsw-stream` tap and
//! diffed against the schedule's own characterization. The command exits
//! nonzero when any headline metric falls outside its documented sketch
//! error bound (suppress with `--no-assert`, e.g. when an `--admission`
//! cap is *meant* to shed traffic). `--virtual-time` runs the same
//! replay as a deterministic single-threaded simulation — no sockets, no
//! wall clock — with bit-identical output on every run. `serve` runs the
//! paced serving harness standalone on `--listen` for `--for` seconds so
//! an external driver can connect. `--admission N` caps concurrent
//! transfers (`RejectAbove`); 0 or absent accepts everything.
//! `--data-plane` picks the server's pacing engine: `reactor` (default,
//! epoll readiness + timing wheel) or `tick` (the 2 ms scan baseline) —
//! same protocol, admission, and closed-loop semantics either way.
//!
//! `--topology origin:R[:key]` interposes `R` relay nodes between the
//! origin and the trace clients (`lsw_edge`): each relay subscribes to
//! the origin **once** per live object and fans the chunk stream out to
//! the clients the routing `key` (`as`, default; `country`; `client`)
//! assigns to it. The closed loop then diffs the *edge-aggregated*
//! characterization — what all relay tiers together served — against the
//! trace's own, and the report gains an `edge` section accounting origin
//! egress versus client-delivered bytes (the fan-in savings). In edge
//! runs `--admission` caps each relay tier and `--origin-admission` caps
//! origin subscriptions; `--virtual-time` runs the whole topology as a
//! deterministic simulation with byte-identical reports run to run.
//!
//! `--threads` (or the `LSW_THREADS` environment variable) sets the
//! worker count; the default is the number of available cores. Output is
//! bit-identical at every thread count — the setting only changes speed.
//! `--sampler` picks the interest-profile sampling backend (`cdf`, the
//! default, or the O(1) `alias` table); unlike `--threads` the backend IS
//! part of the output's determinism contract — the two settings produce
//! different, identically distributed, workloads from one seed.

use lsw::analysis::characterize_with;
use lsw::core::config::WorkloadConfig;
use lsw::core::generator::Generator;
use lsw::replay::Registry;
use lsw::sim::server::AdmissionPolicy;
use lsw::sim::{SimConfig, Simulator};
use lsw::stats::dist::SamplerBackend;
use lsw::stats::par::Parallelism;
use lsw::stream::{StreamAnalyzer, StreamConfig};
use lsw::trace::event::LogEntry;
use lsw::trace::ltc;
use lsw::trace::sanitize::sanitize;
use lsw::trace::schedule::Schedule;
use lsw::trace::session::SessionConfig;
use lsw::trace::wms;
use std::path::Path;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("characterize") => cmd_characterize(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("summary") => cmd_summary(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!(
                "usage:\n  lsw generate [--days D] [--clients N] [--sessions N] [--seed S] \
                 [--threads T] [--sampler cdf|alias] [--simulate] [--scale-matched] \
                 [--emit wms|ltc] --out LOG\n  lsw characterize LOG [--format auto|wms|ltc] \
                 [--horizon SECS] [--timeout TO] [--json FILE]\n  lsw analyze LOG \
                 [--format auto|wms|ltc] [--stream] \
                 [--compare] [--shards N] [--memory-budget BYTES] [--horizon SECS] [--timeout TO] \
                 [--json FILE]\n  lsw summary LOG [--format auto|wms|ltc] [--horizon SECS]\n  \
                 lsw convert IN OUT [--format auto|wms|ltc]\n  lsw replay LOG \
                 [--format auto|wms|ltc] [--compression C] [--virtual-time] [--admission N] \
                 [--workers N] [--topology origin[:R[:as|country|client]]] \
                 [--origin-admission N] [--data-plane reactor|tick] [--expose SECS] \
                 [--json FILE] [--no-assert]\n  lsw serve LOG \
                 [--format auto|wms|ltc] [--listen ADDR] [--compression C] [--admission N] \
                 [--workers N] [--data-plane reactor|tick] [--for SECS] [--expose SECS]"
            );
        }
        Some(other) => {
            eprintln!("unknown command {other:?}; try --help");
            exit(2);
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_or<T: std::str::FromStr>(v: Option<&str>, default: T, name: &str) -> T {
    match v {
        None => default,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("bad value for {name}: {s:?}");
            exit(2);
        }),
    }
}

/// On-disk log encodings the reading commands accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LogFormat {
    /// WMS-style text lines (`lsw_trace::wms`).
    Wms,
    /// Columnar binary container (`lsw_trace::ltc`).
    Ltc,
}

/// Reads the first bytes of `path` and checks for the `ltc` magic.
fn sniff_format(path: &str) -> LogFormat {
    use std::io::Read;
    let mut prefix = [0u8; 4];
    let n = std::fs::File::open(path)
        .and_then(|mut f| f.read(&mut prefix))
        .unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1);
        });
    if ltc::is_ltc(&prefix[..n]) {
        LogFormat::Ltc
    } else {
        LogFormat::Wms
    }
}

/// Resolves `--format auto|wms|ltc` (default `auto` = sniff the magic).
fn resolve_format(args: &[String], path: &str) -> LogFormat {
    match flag_value(args, "--format") {
        None | Some("auto") => sniff_format(path),
        Some("wms") => LogFormat::Wms,
        Some("ltc") => LogFormat::Ltc,
        Some(other) => {
            eprintln!("bad value for --format: {other:?} (expected auto, wms or ltc)");
            exit(2);
        }
    }
}

/// Loads every record of `path` in the given format, reporting (but
/// tolerating) corrupt `ltc` blocks the way the streaming engine does.
fn read_entries(path: &str, format: LogFormat) -> Vec<LogEntry> {
    match format {
        LogFormat::Wms => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                exit(1);
            });
            wms::parse_log(&text).unwrap_or_else(|e| {
                eprintln!("{e}");
                exit(1);
            })
        }
        LogFormat::Ltc => {
            let (entries, stats) = ltc::FileSource::open(Path::new(path))
                .and_then(|src| ltc::BlockReader::open(src)?.read_all())
                .unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    exit(1);
                });
            if stats.corrupt_blocks > 0 {
                eprintln!(
                    "skipped {} corrupt block(s) / {} record(s): {}",
                    stats.corrupt_blocks,
                    stats.corrupt_records,
                    stats.first_corrupt.as_deref().unwrap_or("?"),
                );
            }
            entries
        }
    }
}

fn cmd_generate(args: &[String]) {
    let days: f64 = parse_or(flag_value(args, "--days"), 1.0, "--days");
    let clients: usize = parse_or(flag_value(args, "--clients"), 20_000, "--clients");
    let sessions: usize = parse_or(flag_value(args, "--sessions"), 30_000, "--sessions");
    let seed: u64 = parse_or(flag_value(args, "--seed"), 42, "--seed");
    let simulate = args.iter().any(|a| a == "--simulate");
    let scale_matched = args.iter().any(|a| a == "--scale-matched");
    let Some(out) = flag_value(args, "--out") else {
        eprintln!("generate requires --out LOG");
        exit(2);
    };

    let horizon = (days * 86_400.0) as u32;
    let base = if scale_matched {
        WorkloadConfig::paper_scale_matched()
    } else {
        WorkloadConfig::paper()
    };
    let par = match flag_value(args, "--threads") {
        None => Parallelism::auto(),
        Some(s) => Parallelism::fixed(parse_or(Some(s), 0usize, "--threads").max(1)),
    };
    let config = base.scaled(clients, horizon, sessions);
    let backend = match flag_value(args, "--sampler") {
        None | Some("cdf") => SamplerBackend::InverseCdf,
        Some("alias") => SamplerBackend::Alias,
        Some(other) => {
            eprintln!("bad value for --sampler: {other:?} (expected cdf or alias)");
            exit(2);
        }
    };
    let workload = Generator::new(config, seed).unwrap_or_else(|e| {
        eprintln!("invalid configuration: {e}");
        exit(2);
    });
    let workload = workload
        .with_sampler_backend(backend)
        .unwrap_or_else(|e| {
            eprintln!("invalid sampler backend: {e}");
            exit(2);
        })
        .with_parallelism(par)
        .generate();
    eprintln!(
        "generated {} sessions / {} transfers over {days} day(s)",
        workload.sessions().len(),
        workload.len()
    );
    let trace = if simulate {
        let out = Simulator::new(SimConfig::default()).run(&workload, seed);
        eprintln!(
            "simulated: {} congested transfers, {:.2} GB delivered",
            out.congested_transfers,
            out.bytes_delivered as f64 / 1e9
        );
        out.trace
    } else {
        workload.render()
    };
    let emit = match flag_value(args, "--emit") {
        None | Some("wms") => LogFormat::Wms,
        Some("ltc") => LogFormat::Ltc,
        Some(other) => {
            eprintln!("bad value for --emit: {other:?} (expected wms or ltc)");
            exit(2);
        }
    };
    match emit {
        LogFormat::Wms => {
            let text = wms::format_log(trace.entries());
            std::fs::write(out, &text).unwrap_or_else(|e| {
                eprintln!("cannot write {out}: {e}");
                exit(1);
            });
        }
        LogFormat::Ltc => {
            std::fs::File::create(out)
                .and_then(|f| ltc::write_entries(trace.entries(), std::io::BufWriter::new(f)))
                .unwrap_or_else(|e| {
                    eprintln!("cannot write {out}: {e}");
                    exit(1);
                });
        }
    }
    eprintln!("wrote {} entries to {out}", trace.len());
}

/// Transcodes between the text and binary formats; the direction follows
/// from the input's (sniffed or forced) format.
fn cmd_convert(args: &[String]) {
    let mut positional = args.iter().filter(|a| !a.starts_with("--"));
    let (Some(input), Some(output)) = (positional.next(), positional.next()) else {
        eprintln!("convert expects IN and OUT file arguments");
        exit(2);
    };
    match resolve_format(args, input) {
        LogFormat::Wms => {
            // wms -> ltc in bounded memory: parse chunks of whole lines
            // and push records straight into the block writer.
            let file = std::fs::File::open(input).unwrap_or_else(|e| {
                eprintln!("cannot open {input}: {e}");
                exit(1);
            });
            let sink = std::fs::File::create(output).unwrap_or_else(|e| {
                eprintln!("cannot write {output}: {e}");
                exit(1);
            });
            let mut writer =
                ltc::LtcWriter::new(std::io::BufWriter::new(sink)).unwrap_or_else(|e| {
                    eprintln!("cannot write {output}: {e}");
                    exit(1);
                });
            let summary = (|| -> std::io::Result<ltc::LtcSummary> {
                for chunk in wms::LineChunks::new(std::io::BufReader::new(file), 1 << 20) {
                    let chunk = chunk?;
                    for parsed in wms::parse_lines_bytes_from(&chunk.bytes, chunk.first_line) {
                        match parsed {
                            Ok((_, e)) => writer.push(&e)?,
                            Err(e) => {
                                eprintln!("{e}");
                                exit(1);
                            }
                        }
                    }
                }
                writer.finish()
            })()
            .unwrap_or_else(|e| {
                eprintln!("convert failed: {e}");
                exit(1);
            });
            eprintln!(
                "wrote {} records in {} block(s) ({} bytes{}) to {output}",
                summary.records,
                summary.blocks,
                summary.bytes,
                if summary.sorted { ", sorted" } else { "" },
            );
        }
        LogFormat::Ltc => {
            // ltc -> wms: decode every block, render the text log.
            let (entries, stats) = ltc::FileSource::open(Path::new(input.as_str()))
                .and_then(|src| ltc::BlockReader::open(src)?.read_all())
                .unwrap_or_else(|e| {
                    eprintln!("cannot read {input}: {e}");
                    exit(1);
                });
            let text = wms::format_log(&entries);
            std::fs::write(output, &text).unwrap_or_else(|e| {
                eprintln!("cannot write {output}: {e}");
                exit(1);
            });
            eprintln!("wrote {} entries to {output}", entries.len());
            if stats.corrupt_blocks > 0 {
                // Data was lost in transit: say how much, and make the
                // loss visible to scripts via the exit status.
                eprintln!(
                    "convert: skipped {} corrupt block(s) / {} record(s): {}",
                    stats.corrupt_blocks,
                    stats.corrupt_records,
                    stats.first_corrupt.as_deref().unwrap_or("?"),
                );
                exit(1);
            }
        }
    }
}

fn load(
    args: &[String],
) -> (
    lsw::trace::trace::Trace,
    u32,
    lsw::trace::sanitize::SanitizeReport,
) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("expected a LOG file argument");
        exit(2);
    };
    let entries = read_entries(path, resolve_format(args, path));
    // Horizon: explicit flag, or inferred from the last stop time.
    let inferred = entries.iter().map(|e| e.stop()).max().unwrap_or(0) + 1;
    let horizon: u32 = parse_or(flag_value(args, "--horizon"), inferred, "--horizon");
    let (trace, report) = sanitize(entries, horizon);
    if report.rejected() > 0 {
        eprintln!(
            "sanitized: dropped {} of {} entries",
            report.rejected(),
            report.examined
        );
    }
    (trace, horizon, report)
}

fn cmd_characterize(args: &[String]) {
    let (trace, _, ingest) = load(args);
    let timeout: f64 = parse_or(
        flag_value(args, "--timeout"),
        lsw::stats::paper::SESSION_TIMEOUT_SECS,
        "--timeout",
    );
    let report = characterize_with(&trace, SessionConfig { timeout }, 0).with_ingest(ingest);
    println!("{}", report.headline());
    if let Some(json_path) = flag_value(args, "--json") {
        std::fs::write(json_path, report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {json_path}: {e}");
            exit(1);
        });
        eprintln!("full report written to {json_path}");
    }
}

fn stream_config(args: &[String]) -> StreamConfig {
    let mut cfg = StreamConfig {
        timeout: parse_or(
            flag_value(args, "--timeout"),
            lsw::stats::paper::SESSION_TIMEOUT_SECS,
            "--timeout",
        ),
        ..StreamConfig::default()
    };
    if let Some(h) = flag_value(args, "--horizon") {
        cfg.horizon = Some(parse_or(Some(h), 0u32, "--horizon"));
    }
    if let Some(s) = flag_value(args, "--shards") {
        cfg.shards = parse_or(Some(s), 1usize, "--shards").max(1);
    }
    if let Some(b) = flag_value(args, "--memory-budget") {
        cfg = cfg.with_memory_budget(parse_or(Some(b), usize::MAX, "--memory-budget"));
    }
    cfg
}

fn run_stream(path: &str, format: LogFormat, cfg: StreamConfig) -> lsw::stream::StreamReport {
    let mut engine = StreamAnalyzer::new(cfg);
    let ingested = match format {
        LogFormat::Ltc => engine.ingest_ltc_path(Path::new(path)),
        LogFormat::Wms => std::fs::File::open(path)
            .and_then(|file| engine.ingest_read(std::io::BufReader::new(file))),
    };
    ingested.unwrap_or_else(|e| {
        eprintln!("read error on {path}: {e}");
        exit(1);
    });
    engine.finalize()
}

fn cmd_analyze(args: &[String]) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("analyze expects a LOG file argument");
        exit(2);
    };
    let path = path.clone();
    let streaming = args.iter().any(|a| a == "--stream");
    let comparing = args.iter().any(|a| a == "--compare");
    // Parse up front so a bad stream flag exits 2 in every analyze mode.
    let stream_cfg = stream_config(args);

    let format = resolve_format(args, &path);

    if streaming && !comparing {
        // One pass, bounded memory: the log never has to fit in RAM.
        let report = run_stream(&path, format, stream_cfg);
        println!("{}", report.headline());
        if let Some(json_path) = flag_value(args, "--json") {
            std::fs::write(json_path, report.to_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {json_path}: {e}");
                exit(1);
            });
            eprintln!("stream report written to {json_path}");
        }
        return;
    }

    let (trace, horizon, ingest) = load(args);
    let timeout: f64 = parse_or(
        flag_value(args, "--timeout"),
        lsw::stats::paper::SESSION_TIMEOUT_SECS,
        "--timeout",
    );
    let batch = characterize_with(&trace, SessionConfig { timeout }, 0).with_ingest(ingest);

    if comparing {
        // Pin the streaming horizon to the batch one so both pipelines
        // apply identical rejection rules.
        let mut cfg = stream_cfg;
        cfg.horizon = Some(horizon);
        let stream = run_stream(&path, format, cfg);
        println!("{}", lsw::analysis::stream_compare::render(&batch, &stream));
        if let Some(json_path) = flag_value(args, "--json") {
            std::fs::write(json_path, stream.to_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {json_path}: {e}");
                exit(1);
            });
            eprintln!("stream report written to {json_path}");
        }
        return;
    }

    println!("{}", batch.headline());
    if let Some(json_path) = flag_value(args, "--json") {
        std::fs::write(json_path, batch.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {json_path}: {e}");
            exit(1);
        });
        eprintln!("full report written to {json_path}");
    }
}

fn cmd_summary(args: &[String]) {
    let (trace, _, _) = load(args);
    println!("{}", trace.summary());
}

/// Extracts the replayable transfer schedule from a log file, reporting
/// (to stderr) what extraction had to skip.
fn load_schedule(args: &[String]) -> Schedule {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("expected a LOG file argument");
        exit(2);
    };
    let schedule = match resolve_format(args, path) {
        LogFormat::Wms => {
            let bytes = std::fs::read(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                exit(1);
            });
            Schedule::from_wms_bytes(&bytes)
        }
        LogFormat::Ltc => Schedule::from_ltc_path(Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1);
        }),
    };
    let st = &schedule.stats;
    if st.rejected + st.malformed + st.corrupt_blocks > 0 {
        eprintln!(
            "schedule: kept {} of {} records ({} rejected, {} malformed line(s), \
             {} corrupt block(s))",
            schedule.len(),
            st.examined,
            st.rejected,
            st.malformed,
            st.corrupt_blocks,
        );
    }
    if schedule.is_empty() {
        eprintln!("no replayable transfers in {path}");
        exit(1);
    }
    schedule
}

/// `--admission N` (or `--origin-admission N`): cap concurrent
/// transfers at that tier; 0 or absent accepts all.
fn admission_flag(args: &[String], name: &str) -> AdmissionPolicy {
    match parse_or(flag_value(args, name), 0u64, name) {
        0 => AdmissionPolicy::AcceptAll,
        n => AdmissionPolicy::RejectAbove { max_concurrent: n },
    }
}

/// `--topology origin[:R[:key]]`: interpose R relays (0 = single tier).
fn topology_flag(args: &[String]) -> lsw::edge::Topology {
    match flag_value(args, "--topology") {
        None => lsw::edge::Topology::default(),
        Some(s) => s.parse().unwrap_or_else(|e| {
            eprintln!("bad value for --topology: {e}");
            exit(2);
        }),
    }
}

fn data_plane_flag(args: &[String]) -> lsw::replay::DataPlane {
    match flag_value(args, "--data-plane") {
        None | Some("reactor") => lsw::replay::DataPlane::Reactor,
        Some("tick") => lsw::replay::DataPlane::Tick,
        Some(other) => {
            eprintln!("unknown --data-plane {other:?}; expected reactor or tick");
            exit(2);
        }
    }
}

/// A background thread printing metric snapshots to stderr on a cadence.
struct Exposition {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Exposition {
    /// Starts the exposition loop; `every_secs == 0` disables it.
    fn start(registry: &std::sync::Arc<Registry>, every_secs: u64) -> Self {
        use std::sync::atomic::{AtomicBool, Ordering};
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let handle = (every_secs > 0).then(|| {
            let registry = std::sync::Arc::clone(registry);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut elapsed_ms = 0u64;
                // Reused across expositions: zero allocation per print
                // once warmed up to the steady-state length.
                let mut buf = String::new();
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(std::time::Duration::from_millis(250));
                    elapsed_ms += 250;
                    if elapsed_ms >= every_secs * 1000 {
                        elapsed_ms = 0;
                        registry.render_text(&mut buf);
                        eprint!("-- metrics --\n{buf}");
                    }
                }
            })
        });
        Self { stop, handle }
    }

    fn finish(mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Prints the closed-loop result, writes `--json`, and returns whether
/// every metric stayed inside its documented sketch error bound.
fn report_loop(
    args: &[String],
    tap: &lsw::stream::StreamReport,
    diff: &lsw::replay::LoopDiff,
    metrics: &lsw::replay::Snapshot,
    edge: Option<serde_json::Value>,
) -> bool {
    println!("{}", tap.headline());
    println!("closed-loop characterization diff:");
    print!("{}", diff.render());
    if let Some(json_path) = flag_value(args, "--json") {
        use serde_json::Value;
        let tap_value: Value = serde_json::from_str(&tap.to_json()).unwrap_or(Value::Null);
        let mut sections = vec![
            ("tap".to_string(), tap_value),
            ("diff".to_string(), diff.to_json()),
            ("metrics".to_string(), metrics.to_json()),
        ];
        if let Some(edge) = edge {
            sections.push(("edge".to_string(), edge));
        }
        let combined = Value::Object(sections);
        let rendered = serde_json::to_string_pretty(&combined).unwrap_or_default();
        std::fs::write(json_path, rendered).unwrap_or_else(|e| {
            eprintln!("cannot write {json_path}: {e}");
            exit(1);
        });
        eprintln!("replay report written to {json_path}");
    }
    diff.within_bounds()
}

/// The `edge` section of the `--json` report: origin-egress accounting
/// plus the per-tier characterizations.
fn edge_json(
    topology: lsw::edge::Topology,
    subscriptions: u64,
    origin_bytes: u64,
    delivered_bytes: u64,
    egress_ratio: f64,
    tiers: &[lsw::stream::StreamReport],
) -> serde_json::Value {
    use serde_json::Value;
    let tier_values: Vec<Value> = tiers
        .iter()
        .map(|r| serde_json::from_str(&r.to_json()).unwrap_or(Value::Null))
        .collect();
    Value::Object(vec![
        ("topology".to_string(), Value::Str(topology.to_string())),
        ("relays".to_string(), Value::U64(u64::from(topology.relays))),
        ("subscriptions".to_string(), Value::U64(subscriptions)),
        ("origin_bytes".to_string(), Value::U64(origin_bytes)),
        ("delivered_bytes".to_string(), Value::U64(delivered_bytes)),
        ("egress_ratio".to_string(), Value::F64(egress_ratio)),
        ("tiers".to_string(), Value::Array(tier_values)),
    ])
}

/// Runs the hierarchical replay (`--topology origin:R[:key]`) in either
/// execution mode and returns the edge-aggregated tap, the final metric
/// snapshot, and the report's `edge` section.
fn run_replay_edge(
    args: &[String],
    schedule: &Schedule,
    topology: lsw::edge::Topology,
    compression: f64,
    admission: AdmissionPolicy,
    stream_cfg: StreamConfig,
    registry: &std::sync::Arc<Registry>,
) -> (
    lsw::stream::StreamReport,
    lsw::replay::Snapshot,
    serde_json::Value,
) {
    use lsw::replay::ServerConfig;
    use std::sync::Arc;

    let origin_admission = admission_flag(args, "--origin-admission");
    if args.iter().any(|a| a == "--virtual-time") {
        let out = lsw::edge::run_virtual_topology(
            schedule,
            &topology,
            origin_admission,
            admission,
            stream_cfg,
            registry,
        );
        eprintln!(
            "virtual edge replay through {topology}: {} completed, {} rejected, \
             {} truncated over {} subscription(s)",
            out.completed, out.rejected, out.truncated, out.subscriptions
        );
        eprintln!(
            "origin egress: {} of {} delivered byte(s) (ratio {:.4})",
            out.origin_bytes,
            out.delivered_bytes,
            out.egress_ratio()
        );
        let edge = edge_json(
            topology,
            out.subscriptions,
            out.origin_bytes,
            out.delivered_bytes,
            out.egress_ratio(),
            &out.tier_reports,
        );
        (out.merged, registry.snapshot(), edge)
    } else {
        let workers = parse_or(flag_value(args, "--workers"), 2usize, "--workers").max(1);
        let expose: u64 = parse_or(flag_value(args, "--expose"), 10, "--expose");
        let cfg = lsw::edge::EdgeConfig {
            topology,
            origin: ServerConfig {
                compression,
                admission: origin_admission,
                workers,
                data_plane: data_plane_flag(args),
                stream: stream_cfg,
                ..ServerConfig::default()
            },
            relay: lsw::edge::RelayConfig {
                admission,
                ..lsw::edge::RelayConfig::default()
            },
            driver_workers: workers.max(2),
        };
        eprintln!(
            "replaying {} transfers over {} trace-second(s) at {compression}x through {topology}",
            schedule.len(),
            schedule.horizon(),
        );
        let exposition = Exposition::start(registry, expose);
        let out = lsw::edge::run_edge(schedule, &cfg, Arc::clone(registry)).unwrap_or_else(|e| {
            eprintln!("edge replay failed: {e}");
            exit(1);
        });
        exposition.finish();
        eprintln!(
            "replayed {} transfer(s): {} completed, {} rejected, {} short, \
             {} connect failure(s) over {} subscription(s)",
            out.driven.launched + out.driven.connect_failures,
            out.driven.completed,
            out.driven.rejected,
            out.driven.short,
            out.driven.connect_failures,
            out.egress.subscriptions,
        );
        eprintln!(
            "origin egress: {} of {} delivered byte(s) (ratio {:.4})",
            out.egress.origin_bytes,
            out.egress.delivered_bytes,
            out.egress.egress_ratio()
        );
        let edge = edge_json(
            topology,
            out.egress.subscriptions,
            out.egress.origin_bytes,
            out.egress.delivered_bytes,
            out.egress.egress_ratio(),
            &out.tier_reports,
        );
        (out.merged, out.metrics, edge)
    }
}

fn cmd_replay(args: &[String]) {
    use lsw::replay::{
        closed_loop, drive, reference_report, run_virtual, DriverConfig, ReplayServer,
        ServerConfig, WallClock,
    };
    use std::sync::Arc;

    let schedule = load_schedule(args);
    let compression: f64 = parse_or(flag_value(args, "--compression"), 100.0, "--compression");
    let admission = admission_flag(args, "--admission");
    let topology = topology_flag(args);
    let stream_cfg = StreamConfig::default();
    let registry = Arc::new(Registry::new());
    let reference = reference_report(&schedule, stream_cfg.clone());

    let (tap, closed, edge) = if topology.is_edge() {
        let (tap, closed, edge) = run_replay_edge(
            args,
            &schedule,
            topology,
            compression,
            admission,
            stream_cfg,
            &registry,
        );
        (tap, closed, Some(edge))
    } else if args.iter().any(|a| a == "--virtual-time") {
        let out = run_virtual(&schedule, admission, stream_cfg, &registry);
        eprintln!(
            "virtual replay: {} completed, {} rejected, {} bytes served",
            out.completed, out.rejected, out.bytes_served
        );
        (out.tap, registry.snapshot(), None)
    } else {
        let workers = parse_or(flag_value(args, "--workers"), 2usize, "--workers").max(1);
        let expose: u64 = parse_or(flag_value(args, "--expose"), 10, "--expose");
        let clock = Arc::new(WallClock::start());
        let server = ReplayServer::start(
            ServerConfig {
                compression,
                admission,
                workers,
                data_plane: data_plane_flag(args),
                stream: stream_cfg,
                lookahead: schedule.max_duration(),
                ..ServerConfig::default()
            },
            &schedule.object_rates(),
            Arc::clone(&clock),
            Arc::clone(&registry),
        )
        .unwrap_or_else(|e| {
            eprintln!("cannot bind replay server: {e}");
            exit(1);
        });
        eprintln!(
            "replaying {} transfers over {} trace-second(s) at {compression}x against {}",
            schedule.len(),
            schedule.horizon(),
            server.local_addr(),
        );
        let exposition = Exposition::start(&registry, expose);
        let driver_cfg = DriverConfig {
            workers: workers.max(2),
            ..DriverConfig::new(server.local_addr(), compression)
        };
        let outcome = drive(&schedule, &driver_cfg, &clock, &registry).unwrap_or_else(|e| {
            eprintln!("replay driver failed: {e}");
            exit(1);
        });
        let served = server.finish();
        exposition.finish();
        eprintln!(
            "replayed {} transfer(s): {} completed, {} rejected, {} short, {} connect failure(s)",
            outcome.launched + outcome.connect_failures,
            outcome.completed,
            outcome.rejected,
            outcome.short,
            outcome.connect_failures,
        );
        (served.tap, served.metrics, None)
    };

    let diff = closed_loop(&reference, &tap);
    let within = report_loop(args, &tap, &diff, &closed, edge);
    if !within && !args.iter().any(|a| a == "--no-assert") {
        eprintln!(
            "closed-loop check FAILED: {} metric(s) outside sketch error bounds",
            diff.violations().len()
        );
        exit(1);
    }
}

fn cmd_serve(args: &[String]) {
    use lsw::replay::{ReplayServer, ServerConfig, WallClock};
    use std::sync::Arc;

    let schedule = load_schedule(args);
    let compression: f64 = parse_or(flag_value(args, "--compression"), 100.0, "--compression");
    let listen = flag_value(args, "--listen")
        .unwrap_or("127.0.0.1:0")
        .to_string();
    let workers = parse_or(flag_value(args, "--workers"), 2usize, "--workers").max(1);
    let expose: u64 = parse_or(flag_value(args, "--expose"), 10, "--expose");
    // Default lifetime: the whole compressed trace span plus drain slack.
    let default_for = f64::from(schedule.horizon()) / compression.max(1.0) + 5.0;
    let for_secs: f64 = parse_or(flag_value(args, "--for"), default_for, "--for");

    let registry = Arc::new(Registry::new());
    let clock = Arc::new(WallClock::start());
    let server = ReplayServer::start(
        ServerConfig {
            listen,
            compression,
            admission: admission_flag(args, "--admission"),
            workers,
            data_plane: data_plane_flag(args),
            lookahead: schedule.max_duration(),
            ..ServerConfig::default()
        },
        &schedule.object_rates(),
        Arc::clone(&clock),
        Arc::clone(&registry),
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot bind replay server: {e}");
        exit(1);
    });
    println!("{}", server.local_addr());
    eprintln!(
        "serving {} feed(s) at {compression}x for {for_secs:.1}s on {}",
        schedule.object_rates().len(),
        server.local_addr(),
    );
    let exposition = Exposition::start(&registry, expose);
    std::thread::sleep(std::time::Duration::from_secs_f64(for_secs.max(0.0)));
    let served = server.finish();
    exposition.finish();
    eprintln!(
        "served: {} accepted, {} rejected",
        served.admission.accepted, served.admission.rejected
    );
    println!("{}", served.tap.headline());
}
