//! `lsw` — command-line front end: generate, characterize, summarize.
//!
//! ```text
//! lsw generate  [--days D] [--clients N] [--sessions N] [--seed S]
//!               [--threads T] [--sampler cdf|alias] [--simulate]
//!               [--scale-matched] [--emit wms|ltc] --out LOG
//! lsw characterize LOG [--format auto|wms|ltc] [--horizon SECS]
//!                 [--timeout TO] [--json FILE]
//! lsw analyze     LOG [--format auto|wms|ltc] [--stream] [--compare]
//!                 [--shards N] [--memory-budget BYTES] [--horizon SECS]
//!                 [--timeout TO] [--json FILE]
//! lsw summary     LOG [--format auto|wms|ltc] [--horizon SECS]
//! lsw convert     IN OUT [--format auto|wms|ltc]
//! ```
//!
//! `analyze` is the streaming front end: with `--stream` the log is
//! consumed one chunk at a time through the bounded-memory sketch engine
//! (`lsw_stream`), so arbitrarily long logs never have to fit in RAM;
//! `--memory-budget` scales the sketches to a byte budget. With
//! `--compare` both pipelines run and a per-estimator relative-error
//! table is printed. Without either flag it behaves like `characterize`
//! plus the §2.4 ingest accounting.
//!
//! Logs come in two formats: the WMS-style text format (`lsw_trace::wms`)
//! and the columnar binary container (`lsw_trace::ltc`), which is smaller
//! and several times faster to ingest. Every reading command sniffs the
//! 4-byte `ltc` magic by default (`--format auto`); `--format wms|ltc`
//! forces a format. `convert` transcodes between the two — the direction
//! follows from the input's format — and `generate --emit ltc` writes the
//! binary container directly. All times are seconds since the log's
//! epoch.
//!
//! `--threads` (or the `LSW_THREADS` environment variable) sets the
//! worker count; the default is the number of available cores. Output is
//! bit-identical at every thread count — the setting only changes speed.
//! `--sampler` picks the interest-profile sampling backend (`cdf`, the
//! default, or the O(1) `alias` table); unlike `--threads` the backend IS
//! part of the output's determinism contract — the two settings produce
//! different, identically distributed, workloads from one seed.

use lsw::analysis::characterize_with;
use lsw::core::config::WorkloadConfig;
use lsw::core::generator::Generator;
use lsw::sim::{SimConfig, Simulator};
use lsw::stats::dist::SamplerBackend;
use lsw::stats::par::Parallelism;
use lsw::stream::{StreamAnalyzer, StreamConfig};
use lsw::trace::event::LogEntry;
use lsw::trace::ltc;
use lsw::trace::sanitize::sanitize;
use lsw::trace::session::SessionConfig;
use lsw::trace::wms;
use std::path::Path;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("characterize") => cmd_characterize(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("summary") => cmd_summary(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!(
                "usage:\n  lsw generate [--days D] [--clients N] [--sessions N] [--seed S] \
                 [--threads T] [--sampler cdf|alias] [--simulate] [--scale-matched] \
                 [--emit wms|ltc] --out LOG\n  lsw characterize LOG [--format auto|wms|ltc] \
                 [--horizon SECS] [--timeout TO] [--json FILE]\n  lsw analyze LOG \
                 [--format auto|wms|ltc] [--stream] \
                 [--compare] [--shards N] [--memory-budget BYTES] [--horizon SECS] [--timeout TO] \
                 [--json FILE]\n  lsw summary LOG [--format auto|wms|ltc] [--horizon SECS]\n  \
                 lsw convert IN OUT [--format auto|wms|ltc]"
            );
        }
        Some(other) => {
            eprintln!("unknown command {other:?}; try --help");
            exit(2);
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_or<T: std::str::FromStr>(v: Option<&str>, default: T, name: &str) -> T {
    match v {
        None => default,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("bad value for {name}: {s:?}");
            exit(2);
        }),
    }
}

/// On-disk log encodings the reading commands accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LogFormat {
    /// WMS-style text lines (`lsw_trace::wms`).
    Wms,
    /// Columnar binary container (`lsw_trace::ltc`).
    Ltc,
}

/// Reads the first bytes of `path` and checks for the `ltc` magic.
fn sniff_format(path: &str) -> LogFormat {
    use std::io::Read;
    let mut prefix = [0u8; 4];
    let n = std::fs::File::open(path)
        .and_then(|mut f| f.read(&mut prefix))
        .unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1);
        });
    if ltc::is_ltc(&prefix[..n]) {
        LogFormat::Ltc
    } else {
        LogFormat::Wms
    }
}

/// Resolves `--format auto|wms|ltc` (default `auto` = sniff the magic).
fn resolve_format(args: &[String], path: &str) -> LogFormat {
    match flag_value(args, "--format") {
        None | Some("auto") => sniff_format(path),
        Some("wms") => LogFormat::Wms,
        Some("ltc") => LogFormat::Ltc,
        Some(other) => {
            eprintln!("bad value for --format: {other:?} (expected auto, wms or ltc)");
            exit(2);
        }
    }
}

/// Loads every record of `path` in the given format, reporting (but
/// tolerating) corrupt `ltc` blocks the way the streaming engine does.
fn read_entries(path: &str, format: LogFormat) -> Vec<LogEntry> {
    match format {
        LogFormat::Wms => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                exit(1);
            });
            wms::parse_log(&text).unwrap_or_else(|e| {
                eprintln!("{e}");
                exit(1);
            })
        }
        LogFormat::Ltc => {
            let (entries, stats) = ltc::FileSource::open(Path::new(path))
                .and_then(|src| ltc::BlockReader::open(src)?.read_all())
                .unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    exit(1);
                });
            if stats.corrupt_blocks > 0 {
                eprintln!(
                    "skipped {} corrupt block(s) / {} record(s): {}",
                    stats.corrupt_blocks,
                    stats.corrupt_records,
                    stats.first_corrupt.as_deref().unwrap_or("?"),
                );
            }
            entries
        }
    }
}

fn cmd_generate(args: &[String]) {
    let days: f64 = parse_or(flag_value(args, "--days"), 1.0, "--days");
    let clients: usize = parse_or(flag_value(args, "--clients"), 20_000, "--clients");
    let sessions: usize = parse_or(flag_value(args, "--sessions"), 30_000, "--sessions");
    let seed: u64 = parse_or(flag_value(args, "--seed"), 42, "--seed");
    let simulate = args.iter().any(|a| a == "--simulate");
    let scale_matched = args.iter().any(|a| a == "--scale-matched");
    let Some(out) = flag_value(args, "--out") else {
        eprintln!("generate requires --out LOG");
        exit(2);
    };

    let horizon = (days * 86_400.0) as u32;
    let base = if scale_matched {
        WorkloadConfig::paper_scale_matched()
    } else {
        WorkloadConfig::paper()
    };
    let par = match flag_value(args, "--threads") {
        None => Parallelism::auto(),
        Some(s) => Parallelism::fixed(parse_or(Some(s), 0usize, "--threads").max(1)),
    };
    let config = base.scaled(clients, horizon, sessions);
    let backend = match flag_value(args, "--sampler") {
        None | Some("cdf") => SamplerBackend::InverseCdf,
        Some("alias") => SamplerBackend::Alias,
        Some(other) => {
            eprintln!("bad value for --sampler: {other:?} (expected cdf or alias)");
            exit(2);
        }
    };
    let workload = Generator::new(config, seed).unwrap_or_else(|e| {
        eprintln!("invalid configuration: {e}");
        exit(2);
    });
    let workload = workload
        .with_sampler_backend(backend)
        .unwrap_or_else(|e| {
            eprintln!("invalid sampler backend: {e}");
            exit(2);
        })
        .with_parallelism(par)
        .generate();
    eprintln!(
        "generated {} sessions / {} transfers over {days} day(s)",
        workload.sessions().len(),
        workload.len()
    );
    let trace = if simulate {
        let out = Simulator::new(SimConfig::default()).run(&workload, seed);
        eprintln!(
            "simulated: {} congested transfers, {:.2} GB delivered",
            out.congested_transfers,
            out.bytes_delivered as f64 / 1e9
        );
        out.trace
    } else {
        workload.render()
    };
    let emit = match flag_value(args, "--emit") {
        None | Some("wms") => LogFormat::Wms,
        Some("ltc") => LogFormat::Ltc,
        Some(other) => {
            eprintln!("bad value for --emit: {other:?} (expected wms or ltc)");
            exit(2);
        }
    };
    match emit {
        LogFormat::Wms => {
            let text = wms::format_log(trace.entries());
            std::fs::write(out, &text).unwrap_or_else(|e| {
                eprintln!("cannot write {out}: {e}");
                exit(1);
            });
        }
        LogFormat::Ltc => {
            std::fs::File::create(out)
                .and_then(|f| ltc::write_entries(trace.entries(), std::io::BufWriter::new(f)))
                .unwrap_or_else(|e| {
                    eprintln!("cannot write {out}: {e}");
                    exit(1);
                });
        }
    }
    eprintln!("wrote {} entries to {out}", trace.len());
}

/// Transcodes between the text and binary formats; the direction follows
/// from the input's (sniffed or forced) format.
fn cmd_convert(args: &[String]) {
    let mut positional = args.iter().filter(|a| !a.starts_with("--"));
    let (Some(input), Some(output)) = (positional.next(), positional.next()) else {
        eprintln!("convert expects IN and OUT file arguments");
        exit(2);
    };
    match resolve_format(args, input) {
        LogFormat::Wms => {
            // wms -> ltc in bounded memory: parse chunks of whole lines
            // and push records straight into the block writer.
            let file = std::fs::File::open(input).unwrap_or_else(|e| {
                eprintln!("cannot open {input}: {e}");
                exit(1);
            });
            let sink = std::fs::File::create(output).unwrap_or_else(|e| {
                eprintln!("cannot write {output}: {e}");
                exit(1);
            });
            let mut writer =
                ltc::LtcWriter::new(std::io::BufWriter::new(sink)).unwrap_or_else(|e| {
                    eprintln!("cannot write {output}: {e}");
                    exit(1);
                });
            let summary = (|| -> std::io::Result<ltc::LtcSummary> {
                for chunk in wms::LineChunks::new(std::io::BufReader::new(file), 1 << 20) {
                    let chunk = chunk?;
                    for parsed in wms::parse_lines_bytes_from(&chunk.bytes, chunk.first_line) {
                        match parsed {
                            Ok((_, e)) => writer.push(&e)?,
                            Err(e) => {
                                eprintln!("{e}");
                                exit(1);
                            }
                        }
                    }
                }
                writer.finish()
            })()
            .unwrap_or_else(|e| {
                eprintln!("convert failed: {e}");
                exit(1);
            });
            eprintln!(
                "wrote {} records in {} block(s) ({} bytes{}) to {output}",
                summary.records,
                summary.blocks,
                summary.bytes,
                if summary.sorted { ", sorted" } else { "" },
            );
        }
        LogFormat::Ltc => {
            // ltc -> wms: decode every block, render the text log.
            let entries = read_entries(input, LogFormat::Ltc);
            let text = wms::format_log(&entries);
            std::fs::write(output, &text).unwrap_or_else(|e| {
                eprintln!("cannot write {output}: {e}");
                exit(1);
            });
            eprintln!("wrote {} entries to {output}", entries.len());
        }
    }
}

fn load(
    args: &[String],
) -> (
    lsw::trace::trace::Trace,
    u32,
    lsw::trace::sanitize::SanitizeReport,
) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("expected a LOG file argument");
        exit(2);
    };
    let entries = read_entries(path, resolve_format(args, path));
    // Horizon: explicit flag, or inferred from the last stop time.
    let inferred = entries.iter().map(|e| e.stop()).max().unwrap_or(0) + 1;
    let horizon: u32 = parse_or(flag_value(args, "--horizon"), inferred, "--horizon");
    let (trace, report) = sanitize(entries, horizon);
    if report.rejected() > 0 {
        eprintln!(
            "sanitized: dropped {} of {} entries",
            report.rejected(),
            report.examined
        );
    }
    (trace, horizon, report)
}

fn cmd_characterize(args: &[String]) {
    let (trace, _, ingest) = load(args);
    let timeout: f64 = parse_or(
        flag_value(args, "--timeout"),
        lsw::stats::paper::SESSION_TIMEOUT_SECS,
        "--timeout",
    );
    let report = characterize_with(&trace, SessionConfig { timeout }, 0).with_ingest(ingest);
    println!("{}", report.headline());
    if let Some(json_path) = flag_value(args, "--json") {
        std::fs::write(json_path, report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {json_path}: {e}");
            exit(1);
        });
        eprintln!("full report written to {json_path}");
    }
}

fn stream_config(args: &[String]) -> StreamConfig {
    let mut cfg = StreamConfig {
        timeout: parse_or(
            flag_value(args, "--timeout"),
            lsw::stats::paper::SESSION_TIMEOUT_SECS,
            "--timeout",
        ),
        ..StreamConfig::default()
    };
    if let Some(h) = flag_value(args, "--horizon") {
        cfg.horizon = Some(parse_or(Some(h), 0u32, "--horizon"));
    }
    if let Some(s) = flag_value(args, "--shards") {
        cfg.shards = parse_or(Some(s), 1usize, "--shards").max(1);
    }
    if let Some(b) = flag_value(args, "--memory-budget") {
        cfg = cfg.with_memory_budget(parse_or(Some(b), usize::MAX, "--memory-budget"));
    }
    cfg
}

fn run_stream(path: &str, format: LogFormat, cfg: StreamConfig) -> lsw::stream::StreamReport {
    let mut engine = StreamAnalyzer::new(cfg);
    let ingested = match format {
        LogFormat::Ltc => engine.ingest_ltc_path(Path::new(path)),
        LogFormat::Wms => std::fs::File::open(path)
            .and_then(|file| engine.ingest_read(std::io::BufReader::new(file))),
    };
    ingested.unwrap_or_else(|e| {
        eprintln!("read error on {path}: {e}");
        exit(1);
    });
    engine.finalize()
}

fn cmd_analyze(args: &[String]) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("analyze expects a LOG file argument");
        exit(2);
    };
    let path = path.clone();
    let streaming = args.iter().any(|a| a == "--stream");
    let comparing = args.iter().any(|a| a == "--compare");
    // Parse up front so a bad stream flag exits 2 in every analyze mode.
    let stream_cfg = stream_config(args);

    let format = resolve_format(args, &path);

    if streaming && !comparing {
        // One pass, bounded memory: the log never has to fit in RAM.
        let report = run_stream(&path, format, stream_cfg);
        println!("{}", report.headline());
        if let Some(json_path) = flag_value(args, "--json") {
            std::fs::write(json_path, report.to_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {json_path}: {e}");
                exit(1);
            });
            eprintln!("stream report written to {json_path}");
        }
        return;
    }

    let (trace, horizon, ingest) = load(args);
    let timeout: f64 = parse_or(
        flag_value(args, "--timeout"),
        lsw::stats::paper::SESSION_TIMEOUT_SECS,
        "--timeout",
    );
    let batch = characterize_with(&trace, SessionConfig { timeout }, 0).with_ingest(ingest);

    if comparing {
        // Pin the streaming horizon to the batch one so both pipelines
        // apply identical rejection rules.
        let mut cfg = stream_cfg;
        cfg.horizon = Some(horizon);
        let stream = run_stream(&path, format, cfg);
        println!("{}", lsw::analysis::stream_compare::render(&batch, &stream));
        if let Some(json_path) = flag_value(args, "--json") {
            std::fs::write(json_path, stream.to_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {json_path}: {e}");
                exit(1);
            });
            eprintln!("stream report written to {json_path}");
        }
        return;
    }

    println!("{}", batch.headline());
    if let Some(json_path) = flag_value(args, "--json") {
        std::fs::write(json_path, batch.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {json_path}: {e}");
            exit(1);
        });
        eprintln!("full report written to {json_path}");
    }
}

fn cmd_summary(args: &[String]) {
    let (trace, _, _) = load(args);
    println!("{}", trace.summary());
}
