//! # lsw — live streaming media workloads: generation, simulation, analysis
//!
//! The facade crate of the `lsw` workspace, a from-scratch Rust
//! reproduction of *"A Hierarchical Characterization of a Live Streaming
//! Media Workload"* (Veloso, Almeida, Meira, Bestavros, Jin — IMC 2002).
//!
//! Everything is re-exported under topical modules:
//!
//! * [`stats`] — distributions, arrival processes, estimators, empirical
//!   statistics, hypothesis tests ([`lsw_stats`]).
//! * [`trace`] — the trace data model, WMS-style log format, sanitization
//!   and the sessionizer ([`lsw_trace`]).
//! * [`topology`] — the synthetic client population ([`lsw_topology`]).
//! * [`core`] — GISMO-Live, the paper's generative model, plus the
//!   stored-media baseline ([`lsw_core`]).
//! * [`analysis`] — the three-layer hierarchical characterizer
//!   ([`lsw_analysis`]).
//! * [`stream`] — the one-pass, bounded-memory streaming characterizer
//!   ([`lsw_stream`]).
//! * [`sim`] — the discrete-event media-server simulator ([`lsw_sim`]).
//! * [`replay`] — live-socket trace replay with a closed-loop
//!   characterization tap ([`lsw_replay`]).
//! * [`edge`] — the hierarchical live fan-out overlay: origin → relays →
//!   clients with per-tier characterization ([`lsw_edge`]).
//! * [`figures`] — per-table/figure reproduction experiments
//!   ([`lsw_figures`]).
//!
//! ## Five-minute tour
//!
//! ```
//! use lsw::core::config::WorkloadConfig;
//! use lsw::core::generator::Generator;
//! use lsw::analysis::characterize;
//!
//! // 1. Configure the paper's generative model, scaled down.
//! let config = WorkloadConfig::paper().scaled(2_000, 86_400, 5_000);
//!
//! // 2. Generate a live streaming workload and render the server log.
//! let workload = Generator::new(config, 42).unwrap().generate();
//! let trace = workload.render();
//!
//! // 3. Characterize it hierarchically (clients → sessions → transfers).
//! let report = characterize(&trace, 0);
//! println!("{}", report.headline());
//! assert!(report.session.n_sessions > 1_000);
//! ```

#![warn(missing_docs)]

pub use lsw_analysis as analysis;
pub use lsw_core as core;
pub use lsw_edge as edge;
pub use lsw_figures as figures;
pub use lsw_replay as replay;
pub use lsw_sim as sim;
pub use lsw_stats as stats;
pub use lsw_stream as stream;
pub use lsw_topology as topology;
pub use lsw_trace as trace;

/// The crate version (workspace-wide).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
