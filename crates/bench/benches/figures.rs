//! One benchmark per paper table/figure: the cost of regenerating each
//! artifact from a prepared reproduction context. `table1`/`fig02`/…/
//! `table2` names match the experiment registry (and the paper).

use criterion::{criterion_group, criterion_main, Criterion};
use lsw_bench::bench_context;
use lsw_figures::experiments;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let ctx = bench_context();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for (id, run) in experiments::all() {
        group.bench_function(id, |b| b.iter(|| black_box(run(black_box(&ctx)))));
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
