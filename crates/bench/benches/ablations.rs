//! Ablation benches for the design choices DESIGN.md calls out: each
//! group runs the pipeline under a family of alternatives so the cost and
//! behavior of every modeling decision is visible side by side.
//!
//! * `ablation_to` — sessionization cost/sensitivity across timeouts
//!   (the paper's "To is to a large extent arbitrary" remark).
//! * `ablation_arrival` — flat Poisson vs the paper's diurnal
//!   piecewise-stationary process.
//! * `ablation_interest` — uniform vs Zipf client interest.
//! * `ablation_tps` — Zipf vs geometric vs hybrid transfers-per-session.
//! * `ablation_stored_vs_live` — the classic-GISMO baseline vs GISMO-Live.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsw_bench::bench_trace;
use lsw_core::config::{TransfersPerSession, WorkloadConfig};
use lsw_core::diurnal::DiurnalProfile;
use lsw_core::generator::Generator;
use lsw_core::stored::{StoredConfig, StoredGenerator};
use lsw_trace::session::{SessionConfig, Sessions};
use std::hint::black_box;

fn small_config() -> WorkloadConfig {
    WorkloadConfig::paper().scaled(8_000, 86_400, 15_000)
}

fn ablation_to(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("ablation_to");
    group.sample_size(10);
    for timeout in [60.0, 600.0, 1_500.0, 4_000.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(timeout as u64),
            &timeout,
            |b, &t| b.iter(|| black_box(Sessions::identify(&trace, SessionConfig { timeout: t }))),
        );
    }
    group.finish();
}

fn ablation_arrival(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_arrival");
    group.sample_size(10);
    let diurnal = Generator::new(small_config(), 5).expect("valid");
    let flat = Generator::with_profile(small_config(), 5, DiurnalProfile::flat()).expect("valid");
    group.bench_function("diurnal_piecewise_poisson", |b| {
        b.iter(|| black_box(diurnal.generate()))
    });
    group.bench_function("flat_poisson", |b| b.iter(|| black_box(flat.generate())));
    group.finish();
}

fn ablation_interest(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_interest");
    group.sample_size(10);
    for alpha in [0.0, 0.4704, 1.0] {
        let mut config = small_config();
        config.interest_alpha = alpha;
        let generator = Generator::new(config, 6).expect("valid");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("alpha_{alpha}")),
            &generator,
            |b, g| b.iter(|| black_box(g.generate())),
        );
    }
    group.finish();
}

fn ablation_tps(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tps");
    group.sample_size(10);
    let models = [
        ("zipf_paper", TransfersPerSession::Zipf { alpha: 2.70417 }),
        ("geometric", TransfersPerSession::Geometric { mean: 3.7 }),
        (
            "hybrid_scale_matched",
            TransfersPerSession::Hybrid {
                alpha: 2.70417,
                p_tail: 0.35,
                body_mean: 4.8,
            },
        ),
    ];
    for (name, model) in models {
        let mut config = small_config();
        config.transfers_per_session = model;
        let generator = Generator::new(config, 7).expect("valid");
        group.bench_with_input(BenchmarkId::from_parameter(name), &generator, |b, g| {
            b.iter(|| black_box(g.generate()))
        });
    }
    group.finish();
}

fn ablation_stored_vs_live(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_stored_vs_live");
    group.sample_size(10);
    let live = Generator::new(small_config(), 8).expect("valid");
    let stored = StoredGenerator::new(
        StoredConfig {
            n_clients: 8_000,
            horizon_secs: 86_400,
            target_requests: 15_000,
            ..StoredConfig::default()
        },
        8,
    )
    .expect("valid");
    group.bench_function("live_generate_render", |b| {
        b.iter(|| black_box(live.generate().render()))
    });
    group.bench_function("stored_generate", |b| {
        b.iter(|| black_box(stored.generate()))
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_to,
    ablation_arrival,
    ablation_interest,
    ablation_tps,
    ablation_stored_vs_live
);
criterion_main!(benches);
