//! Substrate throughput benches: how fast each stage of the pipeline runs.
//!
//! Throughput is what makes the paper-scale (11M-event) reproduction run
//! in seconds; these benches watch for regressions in the hot paths.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lsw_bench::{bench_trace, bench_workload};
use lsw_core::config::WorkloadConfig;
use lsw_core::generator::Generator;
use lsw_sim::{SimConfig, Simulator};
use lsw_stats::dist::{Discrete, LogNormal, Sample, Zeta, ZipfTable};
use lsw_stats::SeedStream;
use lsw_trace::concurrency::ConcurrencyProfile;
use lsw_trace::session::{SessionConfig, Sessions};
use lsw_trace::wms;
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let config = WorkloadConfig::paper().scaled(15_000, 86_400, 25_000);
    let generator = Generator::new(config, 1).expect("valid config");
    let n = generator.generate().len() as u64;
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n));
    group.bench_function("generate_1day_25k_sessions", |b| {
        b.iter(|| black_box(generator.generate()))
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let workload = bench_workload();
    let sim = Simulator::new(SimConfig::default());
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(workload.len() as u64 * 2));
    group.bench_function("des_run", |b| b.iter(|| black_box(sim.run(&workload, 1))));
    group.finish();
}

fn bench_sessionizer(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("sessionizer");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("identify_To1500", |b| {
        b.iter(|| black_box(Sessions::identify(&trace, SessionConfig::default())))
    });
    group.finish();
}

fn bench_concurrency_sweep(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("concurrency");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("sweep_line_transfers", |b| {
        b.iter(|| {
            black_box(ConcurrencyProfile::transfers(
                trace.entries(),
                trace.horizon(),
            ))
        })
    });
    group.finish();
}

fn bench_wms_round_trip(c: &mut Criterion) {
    let trace = bench_trace();
    let entries = &trace.entries()[..10_000.min(trace.len())];
    let text = wms::format_log(entries);
    let text_str = std::str::from_utf8(&text).expect("UTF-8").to_string();
    let mut group = c.benchmark_group("wms");
    group.throughput(Throughput::Elements(entries.len() as u64));
    group.bench_function("format_10k", |b| {
        b.iter(|| black_box(wms::format_log(entries)))
    });
    group.bench_function("parse_10k", |b| {
        b.iter(|| black_box(wms::parse_log(&text_str).expect("parses")))
    });
    group.finish();
}

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("samplers");
    group.throughput(Throughput::Elements(1));
    let lognormal = LogNormal::new(4.383921, 1.427247).expect("valid");
    let zeta = Zeta::new(2.70417).expect("valid");
    let zipf = ZipfTable::new(691_889, 0.4704).expect("valid");
    let mut rng = SeedStream::new(3).rng("bench");
    group.bench_function("lognormal", |b| {
        b.iter(|| black_box(lognormal.sample(&mut rng)))
    });
    group.bench_function("zeta_devroye", |b| {
        b.iter(|| black_box(zeta.sample_k(&mut rng)))
    });
    group.bench_function("zipf_692k_table", |b| {
        b.iter(|| black_box(zipf.sample_k(&mut rng)))
    });
    group.finish();
}

fn bench_characterization(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("characterization");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("full_hierarchical_report", |b| {
        b.iter(|| black_box(lsw_analysis::characterize(&trace, 0)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_simulation,
    bench_sessionizer,
    bench_concurrency_sweep,
    bench_wms_round_trip,
    bench_samplers,
    bench_characterization
);
criterion_main!(benches);
