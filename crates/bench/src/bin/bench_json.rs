//! `bench-json` — machine-readable throughput benchmark.
//!
//! Times the hot pipeline stages with `std::time::Instant` (no Criterion
//! harness, so it runs in seconds and emits one JSON file) and writes
//! `BENCH_throughput.json` with elements/sec per stage, the thread counts
//! used, the host core count, and the git sha. The headline comparison is
//! workload generation at 1 thread vs N threads: on a host with >= 4 cores
//! the parallel generator should clear 3x the single-thread elements/sec.
//!
//! ```text
//! cargo run --release -p lsw-bench --bin bench-json [-- OUT.json]
//! ```

// Benchmarks exist to measure wall-clock time; the workspace-wide ban on
// ambient clocks (clippy disallowed-methods mirroring xtask L002) targets
// the deterministic pipeline, not the harness timing it.
#![allow(clippy::disallowed_methods)]

use std::sync::Arc;
use std::time::Instant;

use lsw_core::config::WorkloadConfig;
use lsw_core::generator::Generator;
use lsw_replay::{
    drive, DataPlane, DriverConfig, Registry, ReplayServer, ServerConfig, SlowClientPolicy,
    WallClock,
};
use lsw_stats::par::Parallelism;
use lsw_trace::concurrency::ConcurrencyProfile;
use lsw_trace::event::{LogEntry, LogEntryBuilder};
use lsw_trace::ids::{AsId, ClientId, CountryCode, Ipv4Addr, ObjectId};
use lsw_trace::schedule::Schedule;
use lsw_trace::session::{SessionConfig, Sessions};

/// Iterations per stage; the fastest run is reported.
const ITERS: usize = 3;

/// Live replay regime: 512 concurrent fat feeds, each streaming 20
/// trace-MB/s for 800 trace seconds at 400x time compression — a ~2 s
/// wall window moving ~20 GB of wire payload through one server shard.
/// Deep saturation is the point: in pacing-bound regimes both data
/// planes just follow the schedule and measure the same, so the stage
/// would not regress when the reactor does.
const REPLAY_CONNS: u32 = 512;
/// Trace seconds each replay transfer runs for.
const REPLAY_DUR: u32 = 800;
/// Per-connection trace bandwidth in KB/s.
const REPLAY_RATE_KB: u64 = 20_000;
/// Trace-to-wall time compression for the replay stages.
const REPLAY_COMPRESSION: f64 = 400.0;

/// All [`REPLAY_CONNS`] transfers join at t=0 and stream one object
/// each for [`REPLAY_DUR`] trace seconds at [`REPLAY_RATE_KB`] KB/s.
fn replay_schedule() -> Schedule {
    let entries: Vec<LogEntry> = (0..REPLAY_CONNS)
        .map(|i| {
            LogEntryBuilder::new()
                .span(0, REPLAY_DUR)
                .client(ClientId(i))
                .origin(
                    Ipv4Addr(0x0a00_0000 + i),
                    AsId((i % 7) as u16),
                    CountryCode(*b"BR"),
                )
                .object(ObjectId(i as u16), 0)
                .transfer_stats(REPLAY_RATE_KB * 1_000 * u64::from(REPLAY_DUR), 350_000, 0.0)
                .build()
        })
        .collect();
    Schedule::from_entries(&entries)
}

/// One closed-loop live replay run over real sockets; returns the wire
/// payload bytes received plus the server's pacing error p50/p99 in
/// microseconds. Panics if the loop did not close cleanly (a refused
/// connect, admission rejection, or short transfer would make the two
/// planes' byte counts incomparable).
fn replay_run(plane: DataPlane) -> (u64, f64, f64) {
    let schedule = replay_schedule();
    let clock = Arc::new(WallClock::start());
    let registry = Arc::new(Registry::new());
    let server = ReplayServer::start(
        ServerConfig {
            compression: REPLAY_COMPRESSION,
            workers: 1,
            data_plane: plane,
            slow_policy: SlowClientPolicy::Backpressure,
            send_buffer: u64::MAX / 4,
            lookahead: schedule.max_duration(),
            ..ServerConfig::default()
        },
        &schedule.object_rates(),
        Arc::clone(&clock),
        Arc::clone(&registry),
    )
    .expect("replay server binds on loopback");
    let mut driver_cfg = DriverConfig::new(server.local_addr(), REPLAY_COMPRESSION);
    driver_cfg.workers = 2;
    let outcome = drive(&schedule, &driver_cfg, &clock, &registry).expect("replay drive");
    let served = server.finish();
    assert!(
        outcome.connect_failures == 0 && outcome.rejected == 0 && outcome.short == 0,
        "replay loop must close cleanly: {outcome:?}"
    );
    let (_, p50, _, p99) = served
        .metrics
        .histogram("srv.pacing_error_ns")
        .unwrap_or((0, 0.0, 0.0, 0.0));
    (outcome.bytes_received, p50 / 1e3, p99 / 1e3)
}

/// Edge fan-out regime: 256 clients collapsing onto 4 hot live objects
/// through 2 relays — the hierarchical overlay's sweet spot. Clients
/// per subscription ≈ 32, so origin egress is a sliver of delivery.
const EDGE_CONNS: u32 = 256;
/// Distinct live objects the edge clients watch.
const EDGE_OBJECTS: u16 = 4;
/// Trace seconds each edge client streams for.
const EDGE_DUR: u32 = 400;
/// Per-client trace bandwidth in KB/s.
const EDGE_RATE_KB: u64 = 8_000;

/// All [`EDGE_CONNS`] clients join at t=0 and stream one of
/// [`EDGE_OBJECTS`] hot objects for [`EDGE_DUR`] trace seconds.
fn edge_schedule() -> Schedule {
    let entries: Vec<LogEntry> = (0..EDGE_CONNS)
        .map(|i| {
            LogEntryBuilder::new()
                .span(0, EDGE_DUR)
                .client(ClientId(i))
                .origin(
                    Ipv4Addr(0x0a00_0000 + i),
                    AsId((i % 13) as u16),
                    CountryCode(*b"BR"),
                )
                .object(ObjectId(i as u16 % EDGE_OBJECTS), 0)
                .transfer_stats(EDGE_RATE_KB * 1_000 * u64::from(EDGE_DUR), 350_000, 0.0)
                .build()
        })
        .collect();
    Schedule::from_entries(&entries)
}

/// One hierarchical fan-out run over real sockets: origin + 2 relays,
/// every client completing through its relay's broadcast ring. Returns
/// the wire payload bytes delivered to clients. Panics unless the loop
/// closes cleanly and the overlay actually saved origin egress — a
/// broken ring would either truncate clients or collapse the fan-in.
fn edge_run() -> u64 {
    let schedule = edge_schedule();
    let registry = Arc::new(Registry::new());
    let cfg = lsw_edge::EdgeConfig {
        topology: lsw_edge::Topology {
            relays: 2,
            route_by: lsw_edge::RouteBy::As,
        },
        origin: ServerConfig {
            compression: REPLAY_COMPRESSION,
            workers: 1,
            slow_policy: SlowClientPolicy::Backpressure,
            send_buffer: u64::MAX / 4,
            ..ServerConfig::default()
        },
        relay: lsw_edge::RelayConfig {
            slow_policy: SlowClientPolicy::Backpressure,
            ..lsw_edge::RelayConfig::default()
        },
        driver_workers: 2,
    };
    let out = lsw_edge::run_edge(&schedule, &cfg, registry).expect("edge run");
    assert!(
        out.driven.connect_failures == 0
            && out.driven.rejected == 0
            && out.driven.completed == u64::from(EDGE_CONNS),
        "edge loop must close cleanly: {:?}",
        out.driven
    );
    assert!(
        out.egress.egress_ratio() < 1.0,
        "overlay must save origin egress: {} sent vs {} delivered",
        out.egress.origin_bytes,
        out.egress.delivered_bytes
    );
    out.egress.delivered_bytes
}

fn bench_config() -> WorkloadConfig {
    WorkloadConfig::paper().scaled(15_000, 86_400, 25_000)
}

/// Total CPU seconds (user + system, summed over every thread) this
/// process has burned so far, from `/proc/self/stat`. `None` off Linux
/// or when the file cannot be read. CPU time is what makes per-stage
/// numbers comparable across hosts: on a 1-CPU box a "parallel" stage's
/// wall time hides the serialization that its CPU time exposes.
fn process_cpu_secs() -> Option<f64> {
    #[cfg(target_os = "linux")]
    {
        let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
        // comm (field 2) may contain spaces; everything after the closing
        // paren is fixed-position, starting at field 3 (state).
        let rest = stat.rsplit_once(')')?.1;
        let mut fields = rest.split_ascii_whitespace();
        let utime: f64 = fields.nth(11)?.parse().ok()?; // field 14
        let stime: f64 = fields.next()?.parse().ok()?; // field 15
                                                       // Clock-tick unit: USER_HZ is 100 on every mainstream Linux.
        Some((utime + stime) / 100.0)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Run `f` [`ITERS`] times and return (result of last run, best wall
/// secs, CPU secs spent during that best run).
fn time<T>(mut f: impl FnMut() -> T) -> (T, f64, Option<f64>) {
    let mut best = f64::INFINITY;
    let mut best_cpu = None;
    let mut out = None;
    for _ in 0..ITERS {
        let c0 = process_cpu_secs();
        let t0 = Instant::now();
        let v = f();
        let wall = t0.elapsed().as_secs_f64();
        if wall < best {
            best = wall;
            best_cpu = process_cpu_secs()
                .zip(c0)
                .map(|(c1, c0)| (c1 - c0).max(0.0));
        }
        out = Some(v);
    }
    (out.expect("ITERS > 0"), best, best_cpu)
}

fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

struct Stage {
    name: &'static str,
    threads: usize,
    elements: usize,
    /// Best wall-clock seconds over [`ITERS`] runs.
    secs: f64,
    /// Process CPU seconds burned during the best run (`null` when the
    /// host cannot report them). Wall alone misleads on small hosts: at 1
    /// CPU a parallel stage's wall time equals its CPU time, and any
    /// wall-derived "speedup" is pure scheduler noise.
    cpu_secs: Option<f64>,
    /// Resident sketch bytes, for bounded-memory stages.
    sketch_bytes: Option<u64>,
}

impl Stage {
    fn rate(&self) -> f64 {
        self.elements as f64 / self.secs
    }

    fn json(&self) -> String {
        let cpu = self
            .cpu_secs
            .map_or("null".to_string(), |c| format!("{c:.6}"));
        let sketch = self
            .sketch_bytes
            .map_or(String::new(), |b| format!(", \"sketch_bytes\": {b}"));
        format!(
            "    {{ \"stage\": \"{}\", \"threads\": {}, \"elements\": {}, \
             \"secs\": {:.6}, \"cpu_secs\": {}, \"elements_per_sec\": {:.1}{} }}",
            self.name,
            self.threads,
            self.elements,
            self.secs,
            cpu,
            self.rate(),
            sketch
        )
    }
}

/// Pull `(stage, threads, elements_per_sec)` triples plus the recorded
/// generate speedup (absent or `null` on single-CPU hosts) out of a
/// benchmark JSON file. Field-order tolerant but schema-exact: it reads
/// the same hand-formatted shape `main` writes.
fn read_baseline(path: &str) -> (Vec<(String, u64, f64)>, Option<f64>) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
    let value: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse baseline {path}: {e}"));
    let stages = value["stages"].as_array().expect("baseline has stages[]");
    let triples = stages
        .iter()
        .map(|s| {
            (
                s["stage"].as_str().expect("stage name").to_string(),
                s["threads"].as_u64().expect("stage threads"),
                s["elements_per_sec"].as_f64().expect("stage rate"),
            )
        })
        .collect();
    (triples, value["generate_speedup"].as_f64())
}

/// Allowed regression before `--check` fails: a stage may run up to 25%
/// slower than the committed baseline before the perf-smoke job goes red.
const CHECK_TOLERANCE: f64 = 0.25;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (out_path, check_path) = match args.split_first() {
        Some((flag, rest)) if flag == "--check" => {
            let base = rest
                .first()
                .cloned()
                .unwrap_or_else(|| "BENCH_throughput.json".to_string());
            ("/dev/null".to_string(), Some(base))
        }
        Some((out, _)) => (out.clone(), None),
        None => ("BENCH_throughput.json".to_string(), None),
    };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let par_threads = Parallelism::auto().threads().max(4);
    let config = bench_config();
    let seed = 9001;

    eprintln!("bench-json: host_cpus={host_cpus}, parallel stages use {par_threads} threads");

    let gen = |threads: usize| {
        let config = config.clone();
        move || {
            Generator::new(config.clone(), seed)
                .expect("valid config")
                .with_parallelism(Parallelism::fixed(threads))
                .generate()
        }
    };

    let (workload, secs_1, cpu_1) = time(gen(1));
    let n_transfers = workload.len();
    let (_, secs_n, cpu_n) = time(gen(par_threads));
    let trace = workload.render();

    let (sessions, sess_secs, sess_cpu) = time(|| {
        Sessions::identify_with(
            &trace,
            SessionConfig::default(),
            Parallelism::fixed(par_threads),
        )
    });
    let intervals: Vec<(u32, u32)> = trace
        .entries()
        .iter()
        .map(|e| (e.start, e.start + e.duration))
        .collect();
    let horizon = intervals.iter().map(|&(_, hi)| hi).max().unwrap_or(0) + 1;
    let (_, conc_secs, conc_cpu) = time(|| {
        ConcurrencyProfile::from_intervals_par(&intervals, horizon, Parallelism::fixed(par_threads))
    });

    // One-pass streaming characterization over the rendered log text:
    // lines/sec through parse + sketches + look-ahead reorder + online
    // sessionization, plus the resident sketch footprint.
    let log_text =
        String::from_utf8(lsw_trace::wms::format_log(trace.entries()).to_vec()).expect("ASCII log");
    let n_lines = log_text.lines().count();
    let (stream_report, stream_secs, stream_cpu) = time(|| {
        let mut engine = lsw_stream::StreamAnalyzer::new(lsw_stream::StreamConfig {
            shards: par_threads,
            ..lsw_stream::StreamConfig::default()
        });
        engine.ingest_str(&log_text);
        engine.finalize()
    });

    // Zero-copy parse alone (no sketches, no sessionization): the raw
    // byte-scanner throughput over the same rendered log.
    let (parsed_ok, parse_secs, parse_cpu) = time(|| {
        let mut ok = 0u64;
        for item in lsw_trace::wms::parse_lines_bytes(log_text.as_bytes()) {
            ok += u64::from(item.is_ok());
        }
        ok
    });
    assert_eq!(
        parsed_ok as usize,
        trace.len(),
        "parse must keep every line"
    );

    // Text → columnar conversion: parse every line and append to the
    // block writer — the `lsw convert` hot path.
    let (ltc_image, convert_secs, convert_cpu) = time(|| {
        let mut out = Vec::new();
        let mut w = lsw_trace::ltc::LtcWriter::new(&mut out).expect("vec sink");
        for (_, e) in lsw_trace::wms::parse_lines_bytes(log_text.as_bytes()).flatten() {
            w.push(&e).expect("vec sink");
        }
        w.finish().expect("vec sink");
        out
    });

    // Columnar block ingest: the same one-pass characterization fed from
    // the ltc container — block decode replaces text parse, and the
    // sorted footer flag bypasses the look-ahead heap.
    let (ltc_report, ltc_secs, ltc_cpu) = time(|| {
        let mut engine = lsw_stream::StreamAnalyzer::new(lsw_stream::StreamConfig {
            shards: par_threads,
            ..lsw_stream::StreamConfig::default()
        });
        engine.ingest_ltc_bytes(&ltc_image).expect("in-memory ltc");
        engine.finalize()
    });
    assert_eq!(
        ltc_report.summary.transfers, stream_report.summary.transfers,
        "ltc and text ingest must keep the same transfers"
    );

    // DES event pump: schedule every transfer's start, then pop in time
    // order scheduling its stop — the simulator's exact queue churn
    // pattern, isolated from server/network bookkeeping.
    let (des_pops, des_secs, des_cpu) = time(|| {
        let mut q = lsw_sim::des::EventQueue::with_capacity(n_transfers * 2);
        for t in workload.transfers() {
            q.schedule(t.start, (t.duration, false));
        }
        let mut pops = 0u64;
        while let Some((now, (dur, is_stop))) = q.pop() {
            pops += 1;
            if !is_stop {
                q.schedule(now + dur, (0.0, true));
            }
        }
        pops
    });
    assert_eq!(des_pops as usize, n_transfers * 2, "every event pops once");

    // Live replay over real loopback sockets, reactor plane vs the
    // tick-scan baseline at equal connection count. elements = wire
    // payload bytes received by the closed-loop driver, so
    // elements_per_sec is served bytes/sec and the two stages' ratio is
    // the reactor's speedup. Three threads move the bytes: one server
    // shard plus two driver workers.
    let ((reactor_bytes, reactor_p50, reactor_p99), reactor_secs, reactor_cpu) =
        time(|| replay_run(DataPlane::Reactor));
    let ((tick_bytes, tick_p50, tick_p99), tick_secs, tick_cpu) =
        time(|| replay_run(DataPlane::Tick));
    assert_eq!(
        reactor_bytes, tick_bytes,
        "both data planes must serve the same wire budget"
    );

    // Hierarchical fan-out over real sockets: origin + 2 relays, 256
    // clients on 4 hot objects. elements = wire payload bytes delivered
    // to clients, so elements_per_sec is edge delivery throughput. Five
    // threads move the bytes: one origin shard, two relay reactors, two
    // driver workers per relay (sharing the pool).
    let (edge_bytes, edge_secs, edge_cpu) = time(edge_run);

    // Whole-workspace static analysis: lex + item extraction + call-graph
    // construction + all eleven rules over every first-party source file.
    // files/sec is the number CI's xtask-lint-strict job experiences.
    let (lint_report, lint_secs, lint_cpu) = time(|| {
        xtask::run_lint(
            &xtask::workspace::workspace_root(),
            &xtask::LintOptions::default(),
        )
        .expect("workspace lint")
    });
    assert!(lint_report.clean(), "benchmarked workspace must lint clean");

    let stages = [
        Stage {
            name: "generate",
            threads: 1,
            elements: n_transfers,
            secs: secs_1,
            cpu_secs: cpu_1,
            sketch_bytes: None,
        },
        Stage {
            name: "generate",
            threads: par_threads,
            elements: n_transfers,
            secs: secs_n,
            cpu_secs: cpu_n,
            sketch_bytes: None,
        },
        Stage {
            name: "sessionize",
            threads: par_threads,
            elements: trace.len(),
            secs: sess_secs,
            cpu_secs: sess_cpu,
            sketch_bytes: None,
        },
        Stage {
            name: "concurrency",
            threads: par_threads,
            elements: intervals.len(),
            secs: conc_secs,
            cpu_secs: conc_cpu,
            sketch_bytes: None,
        },
        Stage {
            name: "stream_ingest",
            threads: par_threads,
            elements: n_lines,
            secs: stream_secs,
            cpu_secs: stream_cpu,
            sketch_bytes: Some(stream_report.memory.sketch_bytes),
        },
        Stage {
            name: "ltc_ingest",
            threads: par_threads,
            elements: trace.len(),
            secs: ltc_secs,
            cpu_secs: ltc_cpu,
            sketch_bytes: Some(ltc_report.memory.sketch_bytes),
        },
        Stage {
            name: "convert",
            threads: 1,
            elements: n_lines,
            secs: convert_secs,
            cpu_secs: convert_cpu,
            sketch_bytes: None,
        },
        Stage {
            name: "wms_parse",
            threads: 1,
            elements: n_lines,
            secs: parse_secs,
            cpu_secs: parse_cpu,
            sketch_bytes: None,
        },
        Stage {
            name: "des_pump",
            threads: 1,
            elements: des_pops as usize,
            secs: des_secs,
            cpu_secs: des_cpu,
            sketch_bytes: None,
        },
        Stage {
            name: "replay_serve",
            threads: 3,
            elements: reactor_bytes as usize,
            secs: reactor_secs,
            cpu_secs: reactor_cpu,
            sketch_bytes: None,
        },
        Stage {
            name: "replay_serve_tick",
            threads: 3,
            elements: tick_bytes as usize,
            secs: tick_secs,
            cpu_secs: tick_cpu,
            sketch_bytes: None,
        },
        Stage {
            name: "edge_fanout",
            threads: 5,
            elements: edge_bytes as usize,
            secs: edge_secs,
            cpu_secs: edge_cpu,
            sketch_bytes: None,
        },
        Stage {
            name: "lint",
            threads: 1,
            elements: lint_report.scanned,
            secs: lint_secs,
            cpu_secs: lint_cpu,
            sketch_bytes: None,
        },
    ];
    // A "speedup" measured where threads cannot actually run in parallel
    // is pure noise, so single-CPU hosts record `null` instead of ~1.0.
    let speedup = (host_cpus > 1).then(|| stages[1].rate() / stages[0].rate());
    let speedup_json = speedup.map_or_else(|| "null".to_string(), |s| format!("{s:.3}"));
    // Served-bytes/sec ratio of the epoll reactor plane over the
    // tick-scan baseline at equal connection count. Wall-clock based on
    // purpose: both runs move the same bytes, so the ratio is exactly
    // the throughput gain a caller sees.
    let replay_speedup = (reactor_bytes as f64 / reactor_secs) / (tick_bytes as f64 / tick_secs);

    let body: Vec<String> = stages.iter().map(Stage::json).collect();
    let json = format!(
        "{{\n  \"git_sha\": \"{}\",\n  \"host_cpus\": {},\n  \"parallel_threads\": {},\n  \
         \"generate_speedup\": {},\n  \"replay_speedup\": {:.3},\n  \"stages\": [\n{}\n  ]\n}}\n",
        git_sha(),
        host_cpus,
        par_threads,
        speedup_json,
        replay_speedup,
        body.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");

    for s in &stages {
        let cpu = s
            .cpu_secs
            .map_or("     n/a".to_string(), |c| format!("{c:>7.3}s"));
        eprintln!(
            "  {:<12} threads={:<2} {:>9} elems in {:>8.3}s wall / {} cpu = {:>12.0} elems/s",
            s.name,
            s.threads,
            s.elements,
            s.secs,
            cpu,
            s.rate()
        );
    }
    eprintln!(
        "  replay reactor/tick = {replay_speedup:.2}x served bytes/s \
         (pacing p50/p99: reactor {reactor_p50:.0}/{reactor_p99:.0} us, \
         tick {tick_p50:.0}/{tick_p99:.0} us)"
    );
    match speedup {
        Some(s) => eprintln!(
            "  generate speedup at {par_threads} threads: {s:.2}x \
             (sessions identified: {})",
            sessions.all().len()
        ),
        None => eprintln!(
            "  generate speedup: n/a on a single-CPU host \
             (sessions identified: {})",
            sessions.all().len()
        ),
    }
    eprintln!("wrote {out_path}");

    if let Some(baseline_path) = check_path {
        let (baseline, base_speedup) = read_baseline(&baseline_path);
        let mut failures = Vec::new();
        // The parallel-generation ratio is only meaningful when both the
        // baseline host and this host could actually run threads in
        // parallel; a single-CPU run records (and checks against) null.
        match (speedup, base_speedup) {
            (Some(s), Some(base)) => {
                let floor = base * (1.0 - CHECK_TOLERANCE);
                let verdict = if s < floor { "FAIL" } else { "ok" };
                eprintln!(
                    "  check generate_speedup {s:>12.2} vs baseline {base:>12.2} \
                     (floor {floor:>12.2}) {verdict}"
                );
                if s < floor {
                    failures.push(format!("generate speedup regressed: {s:.2}x < {floor:.2}x"));
                }
            }
            _ => eprintln!("  check generate_speedup skipped (single-CPU host or null baseline)"),
        }
        for (name, threads, base_rate) in &baseline {
            let Some(stage) = stages
                .iter()
                .find(|s| s.name == name && s.threads == *threads as usize)
            else {
                failures.push(format!("stage {name} (threads={threads}) missing from run"));
                continue;
            };
            let floor = base_rate * (1.0 - CHECK_TOLERANCE);
            let verdict = if stage.rate() < floor { "FAIL" } else { "ok" };
            eprintln!(
                "  check {:<13} threads={:<2} {:>12.0} vs baseline {:>12.0} (floor {:>12.0}) {}",
                name,
                threads,
                stage.rate(),
                base_rate,
                floor,
                verdict
            );
            if stage.rate() < floor {
                failures.push(format!(
                    "stage {name} (threads={threads}) regressed: {:.0} < {floor:.0} \
                     elements/s ({:.0}% of baseline {base_rate:.0})",
                    stage.rate(),
                    100.0 * stage.rate() / base_rate,
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!("perf-smoke FAILED against {baseline_path}:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        eprintln!("perf-smoke passed against {baseline_path}");
    }
}
