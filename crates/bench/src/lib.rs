//! # lsw-bench — benchmark fixtures
//!
//! Shared fixture builders for the Criterion benches. Three bench targets
//! exist:
//!
//! * `figures` — one benchmark per paper table/figure: the cost of
//!   regenerating that artifact from a prepared context.
//! * `throughput` — substrate throughput: workload generation, discrete-
//!   event simulation, sessionization, sweep-line concurrency, log
//!   encode/parse, distribution sampling.
//! * `ablations` — design-choice sensitivity: session timeout, arrival
//!   process, interest skew, transfers-per-session model, live vs stored.

#![warn(missing_docs)]

use lsw_core::config::WorkloadConfig;
use lsw_core::generator::Generator;
use lsw_core::Workload;
use lsw_figures::context::{ReproContext, Scale};
use lsw_trace::trace::Trace;

/// A workload sized for micro-benchmarks (~1 day, ~45k transfers).
pub fn bench_workload() -> Workload {
    let config = WorkloadConfig::paper().scaled(15_000, 86_400, 25_000);
    Generator::new(config, 9001)
        .expect("valid config") // lsw::allow(L005): static preset config
        .generate()
}

/// The rendered trace of [`bench_workload`].
pub fn bench_trace() -> Trace {
    bench_workload().render()
}

/// A prepared small-scale reproduction context.
pub fn bench_context() -> ReproContext {
    ReproContext::build(Scale::Small, 9001)
}
