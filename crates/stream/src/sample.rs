//! Bottom-k distinct sampling over clients, with exact per-client tallies.
//!
//! Client-interest Zipf slopes (Figs 4–5) and OFF-time means need
//! *per-client* statistics, but the client population is the one key space
//! that genuinely does not fit a fixed budget (692k users in the paper's
//! trace). A KMV/bottom-k sample keeps the `k` clients whose deterministic
//! 64-bit hash is smallest — a uniform random subset of the *distinct*
//! client set, with a threshold that adapts as new clients appear.
//!
//! The property that makes per-key tallies sound is monotonicity: the
//! hash of a client never changes, so a client inside the final bottom-k
//! was inside the bottom-k from its very first appearance (prefixes have
//! fewer distinct keys, hence a looser threshold). Every sampled client's
//! transfer count, session count and OFF-time total is therefore
//! *complete*, not clipped — the sample is a full-resolution sub-trace of
//! a random client subset. A Zipf slope fitted on the sampled
//! rank-frequency equals the population slope in expectation because
//! uniform client sampling scales ranks by the sampling fraction, and
//! `log(rank) → log(rank) - log(f)` only shifts the regression intercept.
//!
//! Storage is an open-addressing table keyed by the client hash (this is
//! the ingest coordinator's hottest per-entry lookup, so membership must
//! be O(1), not a tree descent) plus a max-heap holding exactly the live
//! hashes — the heap top *is* the bottom-k threshold, and an eviction
//! always removes the top, so heap and table never disagree. Since
//! SplitMix64 is a bijection on `u64`, distinct 32-bit client ids never
//! collide and hash equality is key equality. Every observable (fits,
//! estimates, merges, equality) reads the *sorted* contents, so the slot
//! layout — which depends on insertion order — never leaks into results.

use crate::sketch::{hash64, Sketch};
use lsw_stats::fit::{fit_zipf_points, ZipfFit};
use std::collections::BinaryHeap;

/// Complete per-sampled-client tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientTally {
    /// Transfers observed for this client.
    pub transfers: u64,
    /// Sessions closed for this client.
    pub sessions: u64,
    /// Sum of OFF gaps (seconds between consecutive sessions).
    pub off_sum: u64,
    /// Number of OFF gaps observed.
    pub off_n: u64,
    /// End of the most recently closed session, for the next OFF gap.
    pub last_end: Option<u32>,
}

/// One occupied table slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    hash: u64,
    client: u32,
    tally: ClientTally,
}

/// Bottom-k distinct sample keyed by hashed client id.
#[derive(Debug, Clone)]
pub struct ClientSample {
    k: usize,
    /// Linear-probe slots; capacity is a power of two kept at load <= 1/2.
    slots: Vec<Option<Entry>>,
    len: usize,
    /// Max-heap of exactly the live hashes; the top is the k-th smallest
    /// hash once the sample is full (the KMV threshold).
    max_hashes: BinaryHeap<u64>,
}

impl ClientSample {
    /// Creates a sample of at most `k` clients (min 16).
    ///
    /// The slot table is allocated at its full k-determined capacity up
    /// front: the sample can never exceed `k` live entries, so sizing by
    /// `k` (not by data) keeps the footprint constant over the whole
    /// stream — the memory a sample uses is decided by configuration, not
    /// by how many distinct clients the trace happens to contain.
    pub fn new(k: usize) -> Self {
        let k = k.max(16);
        Self {
            k,
            slots: vec![None; (2 * k).next_power_of_two()],
            len: 0,
            max_hashes: BinaryHeap::new(),
        }
    }

    /// The sample capacity.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Number of sampled clients.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no client has been observed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot index of `hash` if present.
    fn find(&self, hash: u64) -> Option<usize> {
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        while let Some(e) = &self.slots[i] {
            if e.hash == hash {
                return Some(i);
            }
            i = (i + 1) & mask;
        }
        None
    }

    /// Inserts a new entry (hash must be absent). The preallocated table
    /// holds `k` entries at load <= 1/2, so growth never triggers in
    /// practice; the guard keeps the structure sound regardless.
    fn insert_entry(&mut self, entry: Entry) {
        if (self.len + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (entry.hash as usize) & mask;
        while self.slots[i].is_some() {
            i = (i + 1) & mask;
        }
        self.slots[i] = Some(entry);
        self.len += 1;
        self.max_hashes.push(entry.hash);
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![None; new_cap]);
        let mask = new_cap - 1;
        for e in old.into_iter().flatten() {
            let mut i = (e.hash as usize) & mask;
            while self.slots[i].is_some() {
                i = (i + 1) & mask;
            }
            self.slots[i] = Some(e);
        }
    }

    /// Removes `hash` (which must be present) with backward-shift deletion
    /// so linear probing stays sound without tombstones.
    fn remove_hash(&mut self, hash: u64) {
        let Some(mut i) = self.find(hash) else {
            return;
        };
        let mask = self.slots.len() - 1;
        self.slots[i] = None;
        self.len -= 1;
        let mut j = (i + 1) & mask;
        while let Some(e) = self.slots[j] {
            let home = (e.hash as usize) & mask;
            // Shift back unless the entry already sits in its probe run
            // between its home and the hole.
            let between = if i < j {
                i < home && home <= j
            } else {
                home <= j || home > i
            };
            if !between {
                self.slots[i] = Some(e);
                self.slots[j] = None;
                i = j;
            }
            j = (j + 1) & mask;
        }
    }

    /// Observes one transfer by `client`; tallies it if sampled.
    pub fn observe_transfer(&mut self, client: u32) {
        self.observe_transfer_hashed(hash64(u64::from(client)), client);
    }

    /// [`observe_transfer`](Self::observe_transfer) with the client hash
    /// already computed (the coordinator shares one hash per entry across
    /// every client-keyed structure).
    pub fn observe_transfer_hashed(&mut self, h: u64, client: u32) {
        if let Some(i) = self.find(h) {
            // find() only returns occupied slot indices.
            if let Some(slot) = self.slots[i].as_mut() {
                slot.tally.transfers += 1;
            }
            return;
        }
        if self.len >= self.k {
            match self.max_hashes.peek() {
                Some(&max_h) if h < max_h => {
                    self.max_hashes.pop();
                    self.remove_hash(max_h);
                }
                _ => return,
            }
        }
        self.insert_entry(Entry {
            hash: h,
            client,
            tally: ClientTally {
                transfers: 1,
                ..ClientTally::default()
            },
        });
    }

    /// Records a closed session `[start, end]` for `client` (no-op when
    /// the client is not sampled). Sessions must arrive in per-client
    /// chronological order, which the sessionizer guarantees.
    pub fn observe_session(&mut self, client: u32, start: u32, end: u32) {
        let h = hash64(u64::from(client));
        if let Some(i) = self.find(h) {
            // lsw::allow(L005): find() returned an occupied slot index
            let t = &mut self.slots[i].as_mut().expect("occupied slot").tally;
            t.sessions += 1;
            if let Some(prev_end) = t.last_end {
                t.off_sum += u64::from(start.saturating_sub(prev_end));
                t.off_n += 1;
            }
            t.last_end = Some(end);
        }
    }

    /// Live entries in ascending hash order (the canonical view every
    /// estimate and comparison reads, independent of slot layout).
    fn sorted_entries(&self) -> Vec<Entry> {
        let mut v: Vec<Entry> = self.slots.iter().flatten().copied().collect();
        v.sort_unstable_by_key(|e| e.hash);
        v
    }

    /// KMV estimate of the number of distinct clients seen.
    pub fn distinct_estimate(&self) -> f64 {
        if self.len < self.k {
            return self.len as f64; // exhaustive: exact
        }
        let Some(&kth) = self.max_hashes.peek() else {
            return self.len as f64; // unreachable: len() >= k >= 1
        };
        // P(hash < kth) ≈ kth / 2^64; (k-1)/U is the unbiased KMV estimator.
        let u = kth as f64 / 18_446_744_073_709_551_616.0;
        (self.k as f64 - 1.0) / u
    }

    /// Fraction of distinct clients present in the sample.
    pub fn sample_fraction(&self) -> f64 {
        let d = self.distinct_estimate();
        if d <= 0.0 {
            1.0
        } else {
            (self.len as f64 / d).min(1.0)
        }
    }

    /// Mean OFF time over sampled clients' gaps, with the gap count.
    pub fn off_mean(&self) -> Option<(f64, u64)> {
        let (sum, n) = self.slots.iter().flatten().fold((0u64, 0u64), |(s, n), e| {
            (s + e.tally.off_sum, n + e.tally.off_n)
        });
        (n > 0).then(|| (sum as f64 / n as f64, n))
    }

    /// Zipf fit of the sampled transfers-per-client rank-frequency, using
    /// the same fit-body rule as the batch client layer (ranks while the
    /// count stays >= 10, at least 20 ranks). Slope is invariant under the
    /// rank scaling induced by uniform client sampling.
    pub fn transfers_zipf(&self) -> Option<ZipfFit> {
        self.zipf_of(|t| t.transfers)
    }

    /// Zipf fit of the sampled sessions-per-client rank-frequency.
    pub fn sessions_zipf(&self) -> Option<ZipfFit> {
        self.zipf_of(|t| t.sessions)
    }

    fn zipf_of(&self, field: impl Fn(&ClientTally) -> u64) -> Option<ZipfFit> {
        // Fit body: ranks while the raw count stays >= 10 (mirrors the
        // batch layer's cut), floor 20 ranks, cap at what exists. The
        // fit reads only ranks `<= body`, so rank just the top of the
        // distribution (select + sort of the body prefix) instead of
        // sorting every sampled client: ties across the cut carry equal
        // counts, so the fitted points — and the resulting slope and
        // r² — are bit-identical to the full descending sort.
        let mut counts: Vec<u64> = self
            .slots
            .iter()
            .flatten()
            .map(|e| field(&e.tally))
            .filter(|&c| c > 0)
            .collect();
        let n = counts.len();
        if n < 2 {
            return None;
        }
        let total: u64 = counts.iter().sum();
        let k = counts.iter().filter(|&&c| c >= 10).count();
        let body = k.max(20).min(n);
        if body < n {
            counts.select_nth_unstable_by(body, |a, b| b.cmp(a));
            counts.truncate(body);
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let points: Vec<(f64, f64)> = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| ((i + 1) as f64, c as f64 / total as f64))
            .collect();
        fit_zipf_points(&points, Some(body as f64)).ok()
    }
}

// Equality is over the sampled *contents*, not the slot layout: two
// samples built from different insertion orders (e.g. merged vs single
// stream) must compare equal when they hold the same clients and tallies.
impl PartialEq for ClientSample {
    fn eq(&self, other: &Self) -> bool {
        self.k == other.k && self.sorted_entries() == other.sorted_entries()
    }
}

impl Eq for ClientSample {}

impl Sketch for ClientSample {
    type Item = u32;
    type Estimate = f64;

    fn insert(&mut self, item: &u32) {
        self.observe_transfer(*item);
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(self.k, other.k, "cannot merge samples of different k");
        for oe in other.sorted_entries() {
            if let Some(i) = self.find(oe.hash) {
                // lsw::allow(L005): find() returned an occupied slot index
                let t = &mut self.slots[i].as_mut().expect("occupied slot").tally;
                t.transfers += oe.tally.transfers;
                t.sessions += oe.tally.sessions;
                t.off_sum += oe.tally.off_sum;
                t.off_n += oe.tally.off_n;
                t.last_end = t.last_end.max(oe.tally.last_end);
            } else {
                self.insert_entry(oe);
            }
        }
        while self.len > self.k {
            if let Some(max_h) = self.max_hashes.pop() {
                self.remove_hash(max_h);
            } else {
                break; // unreachable: heap tracks every live hash
            }
        }
    }

    fn estimate(&self) -> f64 {
        self.distinct_estimate()
    }

    fn bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.slots.len() * std::mem::size_of::<Option<Entry>>()
            + self.max_hashes.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_sample_is_exact() {
        let mut s = ClientSample::new(1024);
        for c in 0..500u32 {
            for _ in 0..=(c % 7) {
                s.observe_transfer(c);
            }
        }
        assert_eq!(s.len(), 500);
        assert_eq!(s.distinct_estimate(), 500.0);
        assert_eq!(s.sample_fraction(), 1.0);
    }

    #[test]
    fn kmv_estimate_within_bounds() {
        let mut s = ClientSample::new(4096);
        for c in 0..100_000u32 {
            s.observe_transfer(c);
        }
        let est = s.distinct_estimate();
        let err = (est - 100_000.0).abs() / 100_000.0;
        assert!(err < 0.05, "KMV estimate {est} off by {err}");
    }

    #[test]
    fn sampled_tallies_are_complete() {
        // Interleave two passes; every sampled client must have both.
        let mut s = ClientSample::new(64);
        for pass in 0..2 {
            let _ = pass;
            for c in 0..10_000u32 {
                s.observe_transfer(c);
            }
        }
        for e in s.slots.iter().flatten() {
            assert_eq!(e.tally.transfers, 2, "sampled tallies must be complete");
        }
    }

    #[test]
    fn off_gaps_accumulate() {
        let mut s = ClientSample::new(64);
        s.observe_transfer(7);
        s.observe_session(7, 100, 200);
        s.observe_session(7, 1000, 1100);
        s.observe_session(7, 5000, 5200);
        let (mean, n) = s.off_mean().unwrap();
        assert_eq!(n, 2);
        assert!((mean - (800.0 + 3900.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn merge_matches_single_stream() {
        let mut whole = ClientSample::new(128);
        let mut a = ClientSample::new(128);
        let mut b = ClientSample::new(128);
        for i in 0..30_000u32 {
            let c = i % 4_000;
            whole.observe_transfer(c);
            if i % 2 == 0 {
                a.observe_transfer(c);
            } else {
                b.observe_transfer(c);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn eviction_keeps_exactly_the_bottom_k() {
        let mut s = ClientSample::new(16);
        for c in 0..5_000u32 {
            s.observe_transfer(c);
        }
        assert_eq!(s.len(), 16);
        // The kept hashes must be exactly the 16 smallest over all clients.
        let mut all: Vec<u64> = (0..5_000u32).map(|c| hash64(u64::from(c))).collect();
        all.sort_unstable();
        let kept: Vec<u64> = s.sorted_entries().iter().map(|e| e.hash).collect();
        assert_eq!(kept, all[..16].to_vec());
        // And the heap top is the threshold (largest kept hash).
        assert_eq!(s.max_hashes.peek().copied(), Some(all[15]));
    }

    #[test]
    fn removal_keeps_probe_chains_sound() {
        // Force collisions and deletions, then verify every survivor is
        // still findable (backward-shift must not orphan entries).
        let mut s = ClientSample::new(16);
        for c in 0..200u32 {
            s.observe_transfer(c);
        }
        for e in s.sorted_entries() {
            assert!(s.find(e.hash).is_some(), "entry lost after evictions");
        }
        assert_eq!(s.len(), 16);
    }
}
