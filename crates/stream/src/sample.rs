//! Bottom-k distinct sampling over clients, with exact per-client tallies.
//!
//! Client-interest Zipf slopes (Figs 4–5) and OFF-time means need
//! *per-client* statistics, but the client population is the one key space
//! that genuinely does not fit a fixed budget (692k users in the paper's
//! trace). A KMV/bottom-k sample keeps the `k` clients whose deterministic
//! 64-bit hash is smallest — a uniform random subset of the *distinct*
//! client set, with a threshold that adapts as new clients appear.
//!
//! The property that makes per-key tallies sound is monotonicity: the
//! hash of a client never changes, so a client inside the final bottom-k
//! was inside the bottom-k from its very first appearance (prefixes have
//! fewer distinct keys, hence a looser threshold). Every sampled client's
//! transfer count, session count and OFF-time total is therefore
//! *complete*, not clipped — the sample is a full-resolution sub-trace of
//! a random client subset. A Zipf slope fitted on the sampled
//! rank-frequency equals the population slope in expectation because
//! uniform client sampling scales ranks by the sampling fraction, and
//! `log(rank) → log(rank) - log(f)` only shifts the regression intercept.
//!
//! Merging takes the union of tallies (sums per key — entry streams are
//! disjoint) and re-truncates to the k smallest hashes; since SplitMix64
//! is a bijection on `u64`, distinct 32-bit client ids never collide and
//! the merged state is independent of how the stream was sharded.

use crate::sketch::{hash64, Sketch};
use lsw_stats::empirical::RankFrequency;
use lsw_stats::fit::{fit_zipf_rank_frequency, ZipfFit};
use std::collections::BTreeMap;

/// Complete per-sampled-client tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientTally {
    /// Transfers observed for this client.
    pub transfers: u64,
    /// Sessions closed for this client.
    pub sessions: u64,
    /// Sum of OFF gaps (seconds between consecutive sessions).
    pub off_sum: u64,
    /// Number of OFF gaps observed.
    pub off_n: u64,
    /// End of the most recently closed session, for the next OFF gap.
    pub last_end: Option<u32>,
}

/// Bottom-k distinct sample keyed by hashed client id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientSample {
    k: usize,
    /// hash -> (client id, tallies); the map never exceeds `k` entries
    /// and holds the k smallest hashes seen.
    keys: BTreeMap<u64, (u32, ClientTally)>,
}

impl ClientSample {
    /// Creates a sample of at most `k` clients (min 16).
    pub fn new(k: usize) -> Self {
        Self {
            k: k.max(16),
            keys: BTreeMap::new(),
        }
    }

    /// The sample capacity.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Number of sampled clients.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no client has been observed.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Observes one transfer by `client`; tallies it if sampled.
    pub fn observe_transfer(&mut self, client: u32) {
        let h = hash64(u64::from(client));
        if let Some((_, t)) = self.keys.get_mut(&h) {
            t.transfers += 1;
            return;
        }
        if self.keys.len() < self.k {
            self.keys.insert(
                h,
                (
                    client,
                    ClientTally {
                        transfers: 1,
                        ..ClientTally::default()
                    },
                ),
            );
            return;
        }
        let Some((&max_h, _)) = self.keys.last_key_value() else {
            return; // unreachable: len() >= k >= 1 here, but do not panic
        };
        if h < max_h {
            self.keys.pop_last();
            self.keys.insert(
                h,
                (
                    client,
                    ClientTally {
                        transfers: 1,
                        ..ClientTally::default()
                    },
                ),
            );
        }
    }

    /// Records a closed session `[start, end]` for `client` (no-op when
    /// the client is not sampled). Sessions must arrive in per-client
    /// chronological order, which the sessionizer guarantees.
    pub fn observe_session(&mut self, client: u32, start: u32, end: u32) {
        let h = hash64(u64::from(client));
        if let Some((_, t)) = self.keys.get_mut(&h) {
            t.sessions += 1;
            if let Some(prev_end) = t.last_end {
                t.off_sum += u64::from(start.saturating_sub(prev_end));
                t.off_n += 1;
            }
            t.last_end = Some(end);
        }
    }

    /// KMV estimate of the number of distinct clients seen.
    pub fn distinct_estimate(&self) -> f64 {
        if self.keys.len() < self.k {
            return self.keys.len() as f64; // exhaustive: exact
        }
        let Some((&kth, _)) = self.keys.last_key_value() else {
            return self.keys.len() as f64; // unreachable: len() >= k >= 1
        };
        // P(hash < kth) ≈ kth / 2^64; (k-1)/U is the unbiased KMV estimator.
        let u = kth as f64 / 18_446_744_073_709_551_616.0;
        (self.k as f64 - 1.0) / u
    }

    /// Fraction of distinct clients present in the sample.
    pub fn sample_fraction(&self) -> f64 {
        let d = self.distinct_estimate();
        if d <= 0.0 {
            1.0
        } else {
            (self.keys.len() as f64 / d).min(1.0)
        }
    }

    /// Mean OFF time over sampled clients' gaps, with the gap count.
    pub fn off_mean(&self) -> Option<(f64, u64)> {
        let (sum, n) = self
            .keys
            .values()
            .fold((0u64, 0u64), |(s, n), (_, t)| (s + t.off_sum, n + t.off_n));
        (n > 0).then(|| (sum as f64 / n as f64, n))
    }

    /// Zipf fit of the sampled transfers-per-client rank-frequency, using
    /// the same fit-body rule as the batch client layer (ranks while the
    /// count stays >= 10, at least 20 ranks). Slope is invariant under the
    /// rank scaling induced by uniform client sampling.
    pub fn transfers_zipf(&self) -> Option<ZipfFit> {
        self.zipf_of(|t| t.transfers)
    }

    /// Zipf fit of the sampled sessions-per-client rank-frequency.
    pub fn sessions_zipf(&self) -> Option<ZipfFit> {
        self.zipf_of(|t| t.sessions)
    }

    fn zipf_of(&self, field: impl Fn(&ClientTally) -> u64) -> Option<ZipfFit> {
        let counts: Vec<u64> = self.keys.values().map(|(_, t)| field(t)).collect();
        let rf = RankFrequency::from_counts(counts);
        if rf.n() < 2 {
            return None;
        }
        // Fit body: keep ranks while the raw count stays >= 10 (mirrors
        // the batch layer's cut), floor 20 ranks, cap at what exists.
        let mut k = rf.n();
        for rank in 1..=rf.n() {
            if rf.count_at(rank).is_some_and(|c| c < 10) {
                k = rank - 1;
                break;
            }
        }
        let body = (k.max(20) as f64).min(rf.n() as f64);
        fit_zipf_rank_frequency(&rf, Some(body)).ok()
    }
}

impl Sketch for ClientSample {
    type Item = u32;
    type Estimate = f64;

    fn insert(&mut self, item: &u32) {
        self.observe_transfer(*item);
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(self.k, other.k, "cannot merge samples of different k");
        for (&h, &(id, t)) in &other.keys {
            let e = self.keys.entry(h).or_insert((id, ClientTally::default()));
            e.1.transfers += t.transfers;
            e.1.sessions += t.sessions;
            e.1.off_sum += t.off_sum;
            e.1.off_n += t.off_n;
            e.1.last_end = e.1.last_end.max(t.last_end);
        }
        while self.keys.len() > self.k {
            self.keys.pop_last();
        }
    }

    fn estimate(&self) -> f64 {
        self.distinct_estimate()
    }

    fn bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.keys.len() * 2 * (8 + std::mem::size_of::<(u32, ClientTally)>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_sample_is_exact() {
        let mut s = ClientSample::new(1024);
        for c in 0..500u32 {
            for _ in 0..=(c % 7) {
                s.observe_transfer(c);
            }
        }
        assert_eq!(s.len(), 500);
        assert_eq!(s.distinct_estimate(), 500.0);
        assert_eq!(s.sample_fraction(), 1.0);
    }

    #[test]
    fn kmv_estimate_within_bounds() {
        let mut s = ClientSample::new(4096);
        for c in 0..100_000u32 {
            s.observe_transfer(c);
        }
        let est = s.distinct_estimate();
        let err = (est - 100_000.0).abs() / 100_000.0;
        assert!(err < 0.05, "KMV estimate {est} off by {err}");
    }

    #[test]
    fn sampled_tallies_are_complete() {
        // Interleave two passes; every sampled client must have both.
        let mut s = ClientSample::new(64);
        for pass in 0..2 {
            let _ = pass;
            for c in 0..10_000u32 {
                s.observe_transfer(c);
            }
        }
        for (_, t) in s.keys.values() {
            assert_eq!(t.transfers, 2, "sampled tallies must be complete");
        }
    }

    #[test]
    fn off_gaps_accumulate() {
        let mut s = ClientSample::new(64);
        s.observe_transfer(7);
        s.observe_session(7, 100, 200);
        s.observe_session(7, 1000, 1100);
        s.observe_session(7, 5000, 5200);
        let (mean, n) = s.off_mean().unwrap();
        assert_eq!(n, 2);
        assert!((mean - (800.0 + 3900.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn merge_matches_single_stream() {
        let mut whole = ClientSample::new(128);
        let mut a = ClientSample::new(128);
        let mut b = ClientSample::new(128);
        for i in 0..30_000u32 {
            let c = i % 4_000;
            whole.observe_transfer(c);
            if i % 2 == 0 {
                a.observe_transfer(c);
            } else {
                b.observe_transfer(c);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }
}
