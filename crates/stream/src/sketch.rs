//! The common sketch contract: insert, merge, estimate.
//!
//! Every streaming summary in this crate — HyperLogLog, the log-bucketed
//! quantile histogram, SpaceSaving, the bottom-k distinct sample, the
//! fixed-point log-moments — implements [`Sketch`] so the ingest engine
//! can treat per-shard state uniformly: shards insert independently, the
//! coordinator merges them in shard-index order, and estimates are read
//! only from the merged sketch.
//!
//! Merge discipline: for every sketch in this crate, merging is
//! commutative and associative over the *multiset of inserted items*
//! within its documented exactness envelope (see each type's docs), so the
//! merged state — and therefore every downstream byte of the report — is
//! independent of how items were split across shards. The proptests in
//! `tests/sketch_props.rs` pin this down for 1/2/8-way splits.

/// A mergeable one-pass summary.
pub trait Sketch {
    /// What the sketch consumes.
    type Item;
    /// What the sketch reports.
    type Estimate;

    /// Observes one item.
    fn insert(&mut self, item: &Self::Item);

    /// Folds another sketch (built from a disjoint item stream) into this
    /// one. Both sketches must have been created with the same parameters.
    fn merge(&mut self, other: &Self);

    /// The current estimate.
    fn estimate(&self) -> Self::Estimate;

    /// Resident size in bytes, for memory accounting.
    fn bytes(&self) -> usize;
}

/// SplitMix64 finalizer: the crate-wide deterministic 64-bit hash.
///
/// A bijection on `u64`, so distinct 32-bit ids never collide; the
/// avalanche constants are the reference SplitMix64/Murmur3 finalizer.
/// Seed-free by design — determinism across runs and processes is a
/// feature here, not a DoS surface (inputs are trusted logs).
pub fn hash64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash64_is_deterministic_and_spreads() {
        assert_eq!(hash64(0), hash64(0));
        assert_ne!(hash64(0), hash64(1));
        // Bijectivity smoke check: no collisions over a small dense range.
        let mut seen: Vec<u64> = (0..10_000u64).map(hash64).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 10_000);
    }
}
