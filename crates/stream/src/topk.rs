//! SpaceSaving heavy-hitter counting (Metwally et al. 2005).
//!
//! Tracks the most frequent keys — autonomous systems, countries, objects
//! — in a fixed number of counters. Within the paper's workload every one
//! of those key spaces is small (1 010 ASes, 11 countries, a handful of
//! cameras), so with the default capacity the sketch never evicts and is
//! *exact*; the SpaceSaving eviction rule only engages on adversarial key
//! spaces, where each reported count overestimates by at most the
//! counter's recorded `error`.
//!
//! Determinism: counters live in a `BTreeMap` and every eviction or
//! truncation picks its victim by `(count, error, key)`, so identical
//! input multisets produce identical state. Merging is exact (count and
//! error add per key) while the union fits in `capacity`; beyond that the
//! merged sketch keeps the top `capacity` counters by `(count desc, key
//! asc)` — still deterministic, with the dropped mass bounded by the
//! smallest kept count. The shard-invariance guarantee of this crate
//! therefore holds unconditionally in the exact regime and the proptests
//! exercise exactly that envelope.

use crate::sketch::Sketch;
use std::collections::BTreeMap;

/// One SpaceSaving counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    /// Estimated occurrences (an overestimate by at most `error`).
    pub count: u64,
    /// Maximum overestimation inherited from evicted keys.
    pub error: u64,
}

/// SpaceSaving top-k sketch over ordered keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceSaving<K: Ord + Clone> {
    capacity: usize,
    counters: BTreeMap<K, Counter>,
    /// True once any key has been evicted or truncated away; while false,
    /// every reported count is exact.
    saturated: bool,
}

impl<K: Ord + Clone> SpaceSaving<K> {
    /// Creates a sketch holding at most `capacity` counters (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            counters: BTreeMap::new(),
            saturated: false,
        }
    }

    /// Observes one key occurrence.
    pub fn insert_key(&mut self, key: &K) {
        if let Some(c) = self.counters.get_mut(key) {
            c.count += 1;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters
                .insert(key.clone(), Counter { count: 1, error: 0 });
            return;
        }
        // Evict the deterministic minimum by (count, error, key).
        self.saturated = true;
        let Some(victim) = self
            .counters
            .iter()
            .min_by(|a, b| (a.1.count, a.1.error, a.0).cmp(&(b.1.count, b.1.error, b.0)))
            .map(|(k, c)| (k.clone(), *c))
        else {
            // Unreachable: capacity >= 1 and the map is full here.
            self.counters
                .insert(key.clone(), Counter { count: 1, error: 0 });
            return;
        };
        self.counters.remove(&victim.0);
        self.counters.insert(
            key.clone(),
            Counter {
                count: victim.1.count + 1,
                error: victim.1.count,
            },
        );
    }

    /// Number of live counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when no keys have been observed.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// True while no eviction has occurred, i.e. all counts are exact.
    pub fn is_exact(&self) -> bool {
        !self.saturated
    }

    /// Counters sorted by `(count desc, key asc)`.
    pub fn top(&self) -> Vec<(K, Counter)> {
        let mut v: Vec<(K, Counter)> = self.counters.iter().map(|(k, c)| (k.clone(), *c)).collect();
        v.sort_by(|a, b| b.1.count.cmp(&a.1.count).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// Total of all live counts.
    pub fn total(&self) -> u64 {
        self.counters.values().map(|c| c.count).sum()
    }
}

impl<K: Ord + Clone> Sketch for SpaceSaving<K> {
    type Item = K;
    type Estimate = Vec<(K, u64)>;

    fn insert(&mut self, item: &K) {
        self.insert_key(item);
    }

    fn merge(&mut self, other: &Self) {
        self.saturated |= other.saturated;
        for (k, c) in &other.counters {
            let e = self.counters.entry(k.clone()).or_default();
            e.count += c.count;
            e.error += c.error;
        }
        if self.counters.len() > self.capacity {
            self.saturated = true;
            let keep = self.top();
            self.counters = keep.into_iter().take(self.capacity).collect();
        }
    }

    fn estimate(&self) -> Vec<(K, u64)> {
        self.top().into_iter().map(|(k, c)| (k, c.count)).collect()
    }

    fn bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.counters.len() * 2 * (std::mem::size_of::<K>() + std::mem::size_of::<Counter>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut ss = SpaceSaving::<u16>::new(16);
        for k in 0..8u16 {
            for _ in 0..=k {
                ss.insert_key(&k);
            }
        }
        assert!(ss.is_exact());
        let top = ss.top();
        assert_eq!(top[0], (7, Counter { count: 8, error: 0 }));
        assert_eq!(top.last().unwrap().0, 0);
    }

    #[test]
    fn eviction_preserves_heavy_hitter() {
        let mut ss = SpaceSaving::<u32>::new(4);
        for _ in 0..100 {
            ss.insert_key(&1);
        }
        for k in 10..30u32 {
            ss.insert_key(&k);
        }
        assert!(!ss.is_exact());
        let top = ss.top();
        assert_eq!(top[0].0, 1, "heavy hitter must survive eviction");
        assert!(top[0].1.count >= 100);
    }

    #[test]
    fn merge_exact_regime_equals_single_stream() {
        let keys: Vec<u16> = (0..200).map(|i| i % 13).collect();
        let mut whole = SpaceSaving::<u16>::new(64);
        let mut a = SpaceSaving::<u16>::new(64);
        let mut b = SpaceSaving::<u16>::new(64);
        for (i, k) in keys.iter().enumerate() {
            whole.insert_key(k);
            if i < 71 {
                a.insert_key(k);
            } else {
                b.insert_key(k);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }
}
