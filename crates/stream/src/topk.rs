//! SpaceSaving heavy-hitter counting (Metwally et al. 2005).
//!
//! Tracks the most frequent keys — autonomous systems, countries, objects
//! — in a fixed number of counters. Within the paper's workload every one
//! of those key spaces is small (1 010 ASes, 11 countries, a handful of
//! cameras), so with the default capacity the sketch never evicts and is
//! *exact*; the SpaceSaving eviction rule only engages on adversarial key
//! spaces, where each reported count overestimates by at most the
//! counter's recorded `error`.
//!
//! Counters live in an open-addressing table keyed by the deterministic
//! SplitMix64 hash of the key, so the per-entry hit path — the ingest hot
//! loop runs three of these per kept record — is one probe chain instead
//! of a B-tree descent. Slot *layout* depends on insertion history, so
//! nothing reads it directly: every eviction or truncation picks its
//! victim by the total order `(count, error, key)` (a unique minimum no
//! matter the iteration order), [`SpaceSaving::top`] sorts by `(count
//! desc, key asc)`, and equality compares sorted contents. Identical
//! input multisets therefore produce identical observable state. Merging
//! is exact (count and error add per key) while the union fits in
//! `capacity`; beyond that the merged sketch keeps the top `capacity`
//! counters by `(count desc, key asc)` — still deterministic, with the
//! dropped mass bounded by the smallest kept count. The shard-invariance
//! guarantee of this crate therefore holds unconditionally in the exact
//! regime and the proptests exercise exactly that envelope.

use crate::sketch::{hash64, Sketch};

/// One SpaceSaving counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    /// Estimated occurrences (an overestimate by at most `error`).
    pub count: u64,
    /// Maximum overestimation inherited from evicted keys.
    pub error: u64,
}

/// Keys the sketch can count: ordered (for deterministic reporting) and
/// embeddable into `u64` (for slot placement via `hash64`). The embedding
/// must be injective so distinct keys never share a hash input.
pub trait TopKey: Ord + Clone {
    /// Injective `u64` image of the key.
    fn key64(&self) -> u64;
}

impl TopKey for u16 {
    #[inline]
    fn key64(&self) -> u64 {
        u64::from(*self)
    }
}

impl TopKey for u32 {
    #[inline]
    fn key64(&self) -> u64 {
        u64::from(*self)
    }
}

impl TopKey for [u8; 2] {
    #[inline]
    fn key64(&self) -> u64 {
        u64::from(u16::from_le_bytes(*self))
    }
}

#[derive(Debug, Clone)]
struct Slot<K> {
    hash: u64,
    key: K,
    counter: Counter,
}

/// SpaceSaving top-k sketch over ordered keys.
#[derive(Debug, Clone)]
pub struct SpaceSaving<K: TopKey> {
    capacity: usize,
    /// Linear-probe slots; length is a power of two kept at load <= 1/2.
    slots: Vec<Option<Slot<K>>>,
    len: usize,
    /// True once any key has been evicted or truncated away; while false,
    /// every reported count is exact.
    saturated: bool,
}

impl<K: TopKey> SpaceSaving<K> {
    /// Creates a sketch holding at most `capacity` counters (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            slots: (0..16).map(|_| None).collect(),
            len: 0,
            saturated: false,
        }
    }

    /// Observes one key occurrence.
    pub fn insert_key(&mut self, key: &K) {
        let h = hash64(key.key64());
        let mask = self.slots.len() - 1;
        let mut i = (h as usize) & mask;
        while let Some(s) = &mut self.slots[i] {
            if s.hash == h && s.key == *key {
                s.counter.count += 1;
                return;
            }
            i = (i + 1) & mask;
        }
        if self.len < self.capacity {
            self.insert_slot(Slot {
                hash: h,
                key: key.clone(),
                counter: Counter { count: 1, error: 0 },
            });
            return;
        }
        // Evict the deterministic minimum by (count, error, key) — the
        // total order has a unique minimum, so slot iteration order is
        // immaterial. Removal rebuilds the table (evictions are rare and
        // the old B-tree victim scan was O(len) here too).
        self.saturated = true;
        let Some(victim) = self
            .slots
            .iter()
            .flatten()
            .min_by(|a, b| {
                (a.counter.count, a.counter.error, &a.key).cmp(&(
                    b.counter.count,
                    b.counter.error,
                    &b.key,
                ))
            })
            .map(|s| (s.key.clone(), s.counter))
        else {
            // Unreachable: capacity >= 1 and the table is full here.
            self.insert_slot(Slot {
                hash: h,
                key: key.clone(),
                counter: Counter { count: 1, error: 0 },
            });
            return;
        };
        self.remove_key(&victim.0);
        self.insert_slot(Slot {
            hash: h,
            key: key.clone(),
            counter: Counter {
                count: victim.1.count + 1,
                error: victim.1.count,
            },
        });
    }

    /// Inserts a slot whose key is absent, growing the table at load 1/2.
    fn insert_slot(&mut self, slot: Slot<K>) {
        if (self.len + 1) * 2 > self.slots.len() {
            let new_cap = self.slots.len() * 2;
            let old = std::mem::replace(&mut self.slots, (0..new_cap).map(|_| None).collect());
            for s in old.into_iter().flatten() {
                self.place(s);
            }
        }
        self.place(slot);
        self.len += 1;
    }

    fn place(&mut self, slot: Slot<K>) {
        let mask = self.slots.len() - 1;
        let mut i = (slot.hash as usize) & mask;
        while self.slots[i].is_some() {
            i = (i + 1) & mask;
        }
        self.slots[i] = Some(slot);
    }

    /// Removes a present key by re-placing the survivors (no tombstones;
    /// only the rare eviction/truncation paths call this).
    fn remove_key(&mut self, key: &K) {
        let cap = self.slots.len();
        let old = std::mem::replace(&mut self.slots, (0..cap).map(|_| None).collect());
        self.len = 0;
        for s in old.into_iter().flatten() {
            if s.key != *key {
                self.place(s);
                self.len += 1;
            }
        }
    }

    /// Number of live counters.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys have been observed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True while no eviction has occurred, i.e. all counts are exact.
    pub fn is_exact(&self) -> bool {
        !self.saturated
    }

    /// Counters sorted by `(count desc, key asc)`.
    pub fn top(&self) -> Vec<(K, Counter)> {
        let mut v: Vec<(K, Counter)> = self
            .slots
            .iter()
            .flatten()
            .map(|s| (s.key.clone(), s.counter))
            .collect();
        v.sort_by(|a, b| b.1.count.cmp(&a.1.count).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// Total of all live counts.
    pub fn total(&self) -> u64 {
        self.slots.iter().flatten().map(|s| s.counter.count).sum()
    }

    /// Live counters in ascending key order (canonical content view).
    fn sorted_by_key(&self) -> Vec<(K, Counter)> {
        let mut v: Vec<(K, Counter)> = self
            .slots
            .iter()
            .flatten()
            .map(|s| (s.key.clone(), s.counter))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

/// Content equality: slot layout depends on insertion history, so compare
/// the canonical (key-sorted) counter list instead.
impl<K: TopKey> PartialEq for SpaceSaving<K> {
    fn eq(&self, other: &Self) -> bool {
        self.capacity == other.capacity
            && self.saturated == other.saturated
            && self.sorted_by_key() == other.sorted_by_key()
    }
}

impl<K: TopKey> Eq for SpaceSaving<K> {}

impl<K: TopKey> Sketch for SpaceSaving<K> {
    type Item = K;
    type Estimate = Vec<(K, u64)>;

    fn insert(&mut self, item: &K) {
        self.insert_key(item);
    }

    fn merge(&mut self, other: &Self) {
        self.saturated |= other.saturated;
        for s in other.slots.iter().flatten() {
            let mask = self.slots.len() - 1;
            let mut i = (s.hash as usize) & mask;
            let mut found = false;
            while let Some(mine) = &mut self.slots[i] {
                if mine.hash == s.hash && mine.key == s.key {
                    mine.counter.count += s.counter.count;
                    mine.counter.error += s.counter.error;
                    found = true;
                    break;
                }
                i = (i + 1) & mask;
            }
            if !found {
                self.insert_slot(s.clone());
            }
        }
        if self.len > self.capacity {
            self.saturated = true;
            let keep = self.top();
            let mut cap = 16usize;
            while cap < (self.capacity + 1) * 2 {
                cap *= 2;
            }
            self.slots = (0..cap).map(|_| None).collect();
            self.len = 0;
            for (key, counter) in keep.into_iter().take(self.capacity) {
                self.insert_slot(Slot {
                    hash: hash64(key.key64()),
                    key,
                    counter,
                });
            }
        }
    }

    fn estimate(&self) -> Vec<(K, u64)> {
        self.top().into_iter().map(|(k, c)| (k, c.count)).collect()
    }

    fn bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.slots.len() * std::mem::size_of::<Option<Slot<K>>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut ss = SpaceSaving::<u16>::new(16);
        for k in 0..8u16 {
            for _ in 0..=k {
                ss.insert_key(&k);
            }
        }
        assert!(ss.is_exact());
        let top = ss.top();
        assert_eq!(top[0], (7, Counter { count: 8, error: 0 }));
        assert_eq!(top.last().unwrap().0, 0);
    }

    #[test]
    fn eviction_preserves_heavy_hitter() {
        let mut ss = SpaceSaving::<u32>::new(4);
        for _ in 0..100 {
            ss.insert_key(&1);
        }
        for k in 10..30u32 {
            ss.insert_key(&k);
        }
        assert!(!ss.is_exact());
        let top = ss.top();
        assert_eq!(top[0].0, 1, "heavy hitter must survive eviction");
        assert!(top[0].1.count >= 100);
    }

    #[test]
    fn merge_exact_regime_equals_single_stream() {
        let keys: Vec<u16> = (0..200).map(|i| i % 13).collect();
        let mut whole = SpaceSaving::<u16>::new(64);
        let mut a = SpaceSaving::<u16>::new(64);
        let mut b = SpaceSaving::<u16>::new(64);
        for (i, k) in keys.iter().enumerate() {
            whole.insert_key(k);
            if i < 71 {
                a.insert_key(k);
            } else {
                b.insert_key(k);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn eviction_matches_reference_semantics() {
        // Mirror the rule on a naive ordered map: same counts, same
        // errors, same victim choice, insert by insert.
        use std::collections::BTreeMap;
        let mut reference: BTreeMap<u16, Counter> = BTreeMap::new();
        let capacity = 8usize;
        let mut ss = SpaceSaving::<u16>::new(capacity);
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..5_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (state >> 33) as u16 % 37;
            ss.insert_key(&key);
            if let Some(c) = reference.get_mut(&key) {
                c.count += 1;
            } else if reference.len() < capacity {
                reference.insert(key, Counter { count: 1, error: 0 });
            } else {
                let victim = reference
                    .iter()
                    .min_by(|a, b| (a.1.count, a.1.error, a.0).cmp(&(b.1.count, b.1.error, b.0)))
                    .map(|(k, c)| (*k, *c))
                    .expect("full map");
                reference.remove(&victim.0);
                reference.insert(
                    key,
                    Counter {
                        count: victim.1.count + 1,
                        error: victim.1.count,
                    },
                );
            }
        }
        let mut got = ss.top();
        got.sort_by_key(|a| a.0);
        let want: Vec<(u16, Counter)> = reference.into_iter().collect();
        assert_eq!(got, want);
    }
}
