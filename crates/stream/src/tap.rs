//! Multi-tap merge: per-tier characterization over one logged stream.
//!
//! A hierarchical replay logs completions at several tiers — the origin
//! sees relay subscriptions, each relay sees its own clients — and the
//! closed loop needs both views: per-tier reports for the operator, and
//! one *edge-aggregated* report to diff against the trace's own
//! characterization.
//!
//! Per-tier reports cannot be merged after the fact: the coordinator
//! layer under [`StreamAnalyzer`] (sessionization, online concurrency,
//! the CPU audit) folds over the released entry stream in order, and
//! order across tiers is exactly what per-tier analyzers discard. So the
//! merge happens at ingest: a [`MultiTap`] holds one analyzer per tier
//! *plus* one merged analyzer, and every entry is ingested into its
//! tier's analyzer and the merged one. The merged analyzer observes the
//! identical entry stream a single-tier tap would have, so its report
//! inherits every determinism and accuracy guarantee the single tap has
//! — the differential test in `crates/edge` pins byte-equality against
//! a direct single-tier ingest.

use crate::ingest::{StreamAnalyzer, StreamConfig};
use crate::report::StreamReport;
use lsw_trace::LogEntry;

/// Per-tier characterization taps plus the merged edge-aggregate tap.
#[derive(Debug)]
pub struct MultiTap {
    tiers: Vec<StreamAnalyzer>,
    merged: StreamAnalyzer,
}

impl MultiTap {
    /// One analyzer per tier plus the merged aggregate, all under the
    /// same configuration.
    pub fn new(cfg: StreamConfig, tiers: usize) -> Self {
        Self {
            tiers: (0..tiers)
                .map(|_| StreamAnalyzer::new(cfg.clone()))
                .collect(),
            merged: StreamAnalyzer::new(cfg),
        }
    }

    /// Number of per-tier taps (excluding the merged aggregate).
    pub fn tiers(&self) -> usize {
        self.tiers.len()
    }

    /// Presets every tap's reorder look-ahead (see
    /// [`StreamAnalyzer::preset_lookahead`]).
    pub fn preset_lookahead(&mut self, max_duration: u32) {
        for t in &mut self.tiers {
            t.preset_lookahead(max_duration);
        }
        self.merged.preset_lookahead(max_duration);
    }

    /// Ingests one completion into tier `tier`'s tap and the merged
    /// aggregate. Out-of-range tiers feed only the aggregate, so a
    /// misrouted entry can skew a per-tier view but never the
    /// closed-loop diff.
    pub fn ingest(&mut self, tier: usize, e: &LogEntry) {
        if let Some(t) = self.tiers.get_mut(tier) {
            t.ingest_entry(e);
        }
        self.merged.ingest_entry(e);
    }

    /// Finalizes every tap: per-tier reports in tier order, then the
    /// merged edge-aggregate report.
    pub fn finalize(self) -> (Vec<StreamReport>, StreamReport) {
        (
            self.tiers
                .into_iter()
                .map(StreamAnalyzer::finalize)
                .collect(),
            self.merged.finalize(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsw_trace::event::LogEntryBuilder;
    use lsw_trace::ids::{AsId, ClientId, CountryCode, Ipv4Addr, ObjectId};

    fn entries() -> Vec<LogEntry> {
        (0..400u32)
            .map(|i| {
                LogEntryBuilder::new()
                    .span((i / 4) * 7, (i % 13) + 1)
                    .client(ClientId(i % 37))
                    .origin(
                        Ipv4Addr(0x0a00_0000 + (i % 19)),
                        AsId((i % 5) as u16),
                        CountryCode(*b"BR"),
                    )
                    .object(ObjectId((i % 3) as u16), 0)
                    .transfer_stats(u64::from(i) * 311 + 64, 64_000, 0.0)
                    .build()
            })
            .collect()
    }

    /// The merged aggregate is byte-identical to a direct single-tier
    /// ingest of the same entry stream, however entries are spread
    /// across tiers.
    #[test]
    fn merged_tap_equals_direct_single_tier_ingest() {
        let es = entries();
        let mut direct = StreamAnalyzer::new(StreamConfig::default());
        let mut multi = MultiTap::new(StreamConfig::default(), 3);
        for (i, e) in es.iter().enumerate() {
            direct.ingest_entry(e);
            multi.ingest(i % 3, e);
        }
        let (tiers, merged) = multi.finalize();
        assert_eq!(tiers.len(), 3);
        assert_eq!(merged.to_json(), direct.finalize().to_json());
    }

    /// Tier reports partition the kept transfers; the aggregate sees all.
    #[test]
    fn tier_reports_partition_the_stream() {
        let es = entries();
        let mut multi = MultiTap::new(StreamConfig::default(), 2);
        multi.preset_lookahead(13);
        for (i, e) in es.iter().enumerate() {
            multi.ingest(i % 2, e);
        }
        let (tiers, merged) = multi.finalize();
        let kept: u64 = tiers.iter().map(|t| t.accounting.kept).sum();
        assert_eq!(kept, merged.accounting.kept);
        assert_eq!(merged.accounting.kept, es.len() as u64);
    }

    /// An out-of-range tier index still reaches the aggregate.
    #[test]
    fn misrouted_entries_never_skew_the_aggregate() {
        let es = entries();
        let mut multi = MultiTap::new(StreamConfig::default(), 1);
        for e in &es {
            multi.ingest(9, e);
        }
        let (tiers, merged) = multi.finalize();
        assert_eq!(tiers[0].accounting.kept, 0);
        assert_eq!(merged.accounting.kept, es.len() as u64);
    }
}
