//! Deterministic fixed-point accumulation.
//!
//! Floating-point addition is not associative, so summing `f64`s in shard
//! order and summing them in merged order can differ in the last bits —
//! enough to break the workspace's byte-identical-at-any-shard-count
//! contract. Every running sum in `lsw-stream` therefore quantizes each
//! observation once (a per-item operation, identical no matter which shard
//! sees the item) and accumulates the quantized values in `i128`, whose
//! addition *is* associative and commutative. Merging shards becomes
//! integer addition and cannot depend on grouping.
//!
//! The scale is 2^32: observations here are bounded (log-values, CPU
//! fractions, seconds), so 95 bits of headroom above the scale comfortably
//! holds sums over billions of entries.

use lsw_stats::fit::LogNormalFit;

/// Fixed-point scale: each unit of the accumulator is 2^-32.
const SCALE: f64 = 4_294_967_296.0;

/// An order-insensitive sum of `f64` observations.
///
/// Each observation is rounded once to a multiple of 2^-32 and added into
/// an `i128`. Two `FixedSum`s built from the same multiset of observations
/// are bit-identical regardless of insertion or merge order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FixedSum {
    raw: i128,
}

impl FixedSum {
    /// The empty sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation (quantized to 2^-32).
    pub fn add(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "FixedSum observations must be finite");
        self.raw += (v * SCALE).round() as i128;
    }

    /// Adds another sum; exact integer addition, grouping-independent.
    pub fn merge(&mut self, other: &Self) {
        self.raw += other.raw;
    }

    /// The accumulated sum as `f64`.
    pub fn value(&self) -> f64 {
        self.raw as f64 / SCALE
    }

    /// True when nothing has been added (or additions cancelled exactly).
    pub fn is_zero(&self) -> bool {
        self.raw == 0
    }
}

/// Streaming first and second log-moments for lognormal fitting.
///
/// Keeps `n`, `Σ ln x`, and `Σ (ln x)^2` in fixed point; the lognormal
/// `mu`/`sigma` fall out as the sample mean and standard deviation of
/// `ln x`. Equivalent to the batch fitter up to the fixed-point quantum
/// (2^-32 per observation) and the one-pass variance formula.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LogMoments {
    n: u64,
    sum: FixedSum,
    sum_sq: FixedSum,
}

impl LogMoments {
    /// The empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one strictly positive value; non-positive values are
    /// ignored (the batch fitter rejects them wholesale, the stream skips
    /// them — callers feed display-transformed values that are >= 1).
    pub fn insert(&mut self, x: f64) {
        if x <= 0.0 || !x.is_finite() {
            return;
        }
        let l = x.ln();
        self.n += 1;
        self.sum.add(l);
        self.sum_sq.add(l * l);
    }

    /// Merges another accumulator (integer addition; order-free).
    pub fn merge(&mut self, other: &Self) {
        self.n += other.n;
        self.sum.merge(&other.sum);
        self.sum_sq.merge(&other.sum_sq);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of `ln x` (the lognormal `mu`), if any observations exist.
    pub fn mu(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum.value() / self.n as f64)
    }

    /// The fitted lognormal, mirroring `lsw_stats::fit::fit_lognormal`:
    /// needs >= 2 observations and strictly positive log-variance.
    pub fn lognormal(&self) -> Option<LogNormalFit> {
        if self.n < 2 {
            return None;
        }
        let n = self.n as f64;
        let mu = self.sum.value() / n;
        // Population (MLE) variance via the one-pass identity — the batch
        // fitter divides by n, not n - 1.
        let var = (self.sum_sq.value() - n * mu * mu) / n;
        if !var.is_finite() || var <= 0.0 {
            return None;
        }
        Some(LogNormalFit {
            mu,
            sigma: var.sqrt(),
            n: self.n as usize,
        })
    }

    /// Resident bytes (for memory accounting).
    pub fn bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_sum_is_grouping_independent() {
        let vals = [0.1, 0.7, 13.25, 1e-9, 100.5, 3.3333];
        let mut all = FixedSum::new();
        for v in vals {
            all.add(v);
        }
        for split in 1..vals.len() {
            let (a, b) = vals.split_at(split);
            let mut left = FixedSum::new();
            let mut right = FixedSum::new();
            for &v in a {
                left.add(v);
            }
            for &v in b {
                right.add(v);
            }
            left.merge(&right);
            assert_eq!(left, all);
        }
    }

    #[test]
    fn log_moments_match_batch_fit() {
        let data: Vec<f64> = (1..200).map(|i| f64::from(i) * 1.5).collect();
        let batch = lsw_stats::fit::fit_lognormal(&data).unwrap();
        let mut lm = LogMoments::new();
        for &x in &data {
            lm.insert(x);
        }
        let fit = lm.lognormal().unwrap();
        assert!(
            (fit.mu - batch.mu).abs() < 1e-7,
            "{} vs {}",
            fit.mu,
            batch.mu
        );
        assert!(
            (fit.sigma - batch.sigma).abs() < 1e-7,
            "{} vs {}",
            fit.sigma,
            batch.sigma
        );
        assert_eq!(fit.n, data.len());
    }

    #[test]
    fn log_moments_reject_degenerate() {
        let mut lm = LogMoments::new();
        lm.insert(5.0);
        assert!(lm.lognormal().is_none(), "one point is not a fit");
        lm.insert(5.0);
        assert!(lm.lognormal().is_none(), "zero variance is not a fit");
        lm.insert(-3.0);
        assert_eq!(lm.count(), 2, "non-positive values are skipped");
    }
}
