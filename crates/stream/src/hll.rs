//! HyperLogLog distinct counting (Flajolet et al. 2007).
//!
//! Counts unique clients and unique IPs in the client layer (Table 1's
//! "total # of users" / "# of client IPs") in 2^p bytes. At the default
//! precision p = 14 the standard error is `1.04 / sqrt(2^14)` ≈ 0.81%,
//! inside the ≤ 2% bound the acceptance tests assert. Small cardinalities
//! (the bias-dominated regime below ~2.5·m) fall back to linear counting
//! on the empty-register count, which is near-exact there.
//!
//! The merge is a register-wise `max` — idempotent, commutative and
//! associative — so any shard split of the input stream merges to the
//! same registers, bit for bit.

use crate::sketch::{hash64, Sketch};

/// HyperLogLog over `u64` keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperLogLog {
    precision: u8,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// Creates a sketch with `2^precision` one-byte registers.
    /// Precision is clamped to `[4, 18]`.
    pub fn new(precision: u8) -> Self {
        let precision = precision.clamp(4, 18);
        Self {
            precision,
            registers: vec![0; 1 << precision],
        }
    }

    /// The precision `p` (register count is `2^p`).
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Observes a raw key (hashed internally).
    pub fn insert_key(&mut self, key: u64) {
        self.insert_hash(hash64(key));
    }

    /// Observes a pre-hashed key (`hash64` of the raw key) — for callers
    /// that already computed the hash for another per-entry structure.
    pub fn insert_hash(&mut self, h: u64) {
        let idx = (h >> (64 - self.precision)) as usize;
        // Rank of the first set bit in the remaining 64-p bits, in 1..=64-p+1.
        let rest = h << self.precision;
        let rho = (rest.leading_zeros() as u8).min(64 - self.precision) + 1;
        if rho > self.registers[idx] {
            self.registers[idx] = rho;
        }
    }

    /// Cardinality estimate with linear-counting small-range correction.
    pub fn count(&self) -> f64 {
        let m = self.registers.len() as f64;
        let mut sum = 0.0;
        let mut zeros = 0u64;
        for &r in &self.registers {
            sum += f64::powi(2.0, -i32::from(r));
            zeros += u64::from(r == 0);
        }
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m && zeros > 0 {
            // Linear counting: near-exact in the bias-dominated regime.
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }
}

impl Sketch for HyperLogLog {
    type Item = u64;
    type Estimate = f64;

    fn insert(&mut self, item: &u64) {
        self.insert_key(*item);
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.precision, other.precision,
            "cannot merge HyperLogLogs of different precision"
        );
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(*b);
        }
    }

    fn estimate(&self) -> f64 {
        self.count()
    }

    fn bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.registers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_range_is_near_exact() {
        let mut h = HyperLogLog::new(14);
        for k in 0..5_000u64 {
            h.insert_key(k);
        }
        let est = h.count();
        let err = (est - 5_000.0).abs() / 5_000.0;
        assert!(err < 0.01, "estimate {est} off by {err}");
    }

    #[test]
    fn large_range_within_published_bound() {
        let mut h = HyperLogLog::new(14);
        for k in 0..700_000u64 {
            h.insert_key(k);
        }
        let est = h.count();
        let err = (est - 700_000.0).abs() / 700_000.0;
        assert!(err < 0.02, "estimate {est} off by {err}");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut h = HyperLogLog::new(12);
        for _ in 0..100 {
            for k in 0..1_000u64 {
                h.insert_key(k);
            }
        }
        let est = h.count();
        assert!((est - 1_000.0).abs() / 1_000.0 < 0.02, "estimate {est}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new(12);
        let mut b = HyperLogLog::new(12);
        let mut union = HyperLogLog::new(12);
        for k in 0..10_000u64 {
            union.insert_key(k);
            if k % 2 == 0 {
                a.insert_key(k);
            } else {
                b.insert_key(k);
            }
        }
        a.merge(&b);
        assert_eq!(a, union, "merge must equal the single-stream sketch");
    }
}
