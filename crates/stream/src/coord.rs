//! The sequential coordinator behind the look-ahead heap.
//!
//! Order-insensitive per-entry statistics live in the parallel shard
//! sketches; everything whose definition depends on *stream order* —
//! sessionization, transfer interarrival gaps, the concurrency sweep, the
//! per-second CPU audit — is computed here, on the single deterministic
//! entry sequence the look-ahead heap releases (sorted by `(start,
//! timestamp, line)`). One consumer, one order: shard count cannot touch
//! these results, and memory stays bounded by the look-ahead window.

use crate::fixed::LogMoments;
use crate::quantile::LogQuantileSketch;
use crate::sample::ClientSample;
use crate::session::{ClosedSession, StreamSessionizer};
use lsw_trace::event::LogEntry;
use std::collections::BTreeMap;
use std::collections::BinaryHeap;

/// Fixed-point scale for CPU-audit sums (2^-32 per unit).
const CPU_SCALE: f64 = 4_294_967_296.0;

/// Seconds per CPU-audit block: bins are grouped 64 at a time so the hot
/// `observe` path descends a tree that is 64x smaller and the per-entry
/// flush probe is a single shallow `first_key_value`.
const CPU_BLOCK_BITS: u32 = 6;
const CPU_BLOCK: usize = 1 << CPU_BLOCK_BITS;

/// 64 consecutive one-second bins of `(fixed-point sum, sample count)`.
#[derive(Debug)]
struct CpuBlock {
    sums: [i64; CPU_BLOCK],
    counts: [u32; CPU_BLOCK],
}

impl CpuBlock {
    fn new() -> Box<Self> {
        Box::new(Self {
            sums: [0; CPU_BLOCK],
            counts: [0; CPU_BLOCK],
        })
    }
}

/// Per-second CPU-load audit in a sliding window (§2.4).
///
/// The batch sanitizer averages CPU readings into one-second bins over the
/// whole trace; here bins are kept only while entries can still land in
/// them. A bin at second `t` receives readings from entries with
/// `timestamp == t`, and every entry satisfies `timestamp >= start`, so
/// once the released stream reaches start `s` all bins below `s` are
/// final and fold into two counters. Folding happens a whole 64-bin block
/// at a time — deferral only delays *when* a final bin is counted, never
/// what it contributes, so the finish-time fractions are unchanged.
#[derive(Debug, Default)]
pub struct CpuAudit {
    blocks: BTreeMap<u32, Box<CpuBlock>>,
    done_bins: u64,
    done_under: u64,
    transfers: u64,
    under_transfers: u64,
}

impl CpuAudit {
    /// Observes one kept entry's CPU reading.
    pub fn observe(&mut self, timestamp: u32, cpu: f32) {
        self.transfers += 1;
        if cpu < lsw_trace::sanitize::CPU_THRESHOLD {
            self.under_transfers += 1;
        }
        let block = self
            .blocks
            .entry(timestamp >> CPU_BLOCK_BITS)
            .or_insert_with(CpuBlock::new);
        let slot = (timestamp as usize) & (CPU_BLOCK - 1);
        block.sums[slot] += (f64::from(cpu) * CPU_SCALE).round() as i64;
        block.counts[slot] += 1;
    }

    /// Folds every block strictly below `watermark` into the totals (a
    /// block folds once *all* its bins are below the watermark).
    pub fn flush_below(&mut self, watermark: u32) {
        // Called once per released entry: bail with a read-only probe for
        // the (overwhelmingly common) case where no block is final yet.
        let limit = u64::from(watermark) >> CPU_BLOCK_BITS;
        while self
            .blocks
            .first_key_value()
            .is_some_and(|(&b, _)| u64::from(b) < limit)
        {
            let Some((_, block)) = self.blocks.pop_first() else {
                break;
            };
            self.fold(&block);
        }
    }

    fn fold(&mut self, block: &CpuBlock) {
        for (sum, n) in block.sums.iter().zip(&block.counts) {
            if *n == 0 {
                continue;
            }
            self.done_bins += 1;
            let avg = *sum as f64 / CPU_SCALE / f64::from(*n);
            if avg < f64::from(lsw_trace::sanitize::CPU_THRESHOLD) {
                self.done_under += 1;
            }
        }
    }

    /// Final underload fractions `(time, transfers)`, batch conventions:
    /// empty audits count as fully underloaded.
    pub fn finish(&mut self) -> (f64, f64) {
        while let Some((_, block)) = self.blocks.pop_first() {
            self.fold(&block);
        }
        let time = if self.done_bins == 0 {
            1.0
        } else {
            self.done_under as f64 / self.done_bins as f64
        };
        let transfers = if self.transfers == 0 {
            1.0
        } else {
            self.under_transfers as f64 / self.transfers as f64
        };
        (time, transfers)
    }

    /// Live window size (non-empty bins currently held).
    pub fn window_bins(&self) -> usize {
        self.blocks
            .values()
            .map(|b| b.counts.iter().filter(|&&n| n > 0).count())
            .sum()
    }
}

/// Number of 15-minute bins in a day (the paper's piecewise window).
pub const DAILY_BINS: usize = 96;

/// Online transfer-concurrency sweep over the released stream.
///
/// Equivalent to the batch difference-array profile but without the
/// per-second array: the stream arrives start-ordered, a min-heap holds
/// pending removal times (`stop + 1`), and time advances piecewise —
/// each constant-concurrency segment is accumulated into a level → seconds
/// marginal, a time-weighted total, and a 96-bin time-of-day fold.
#[derive(Debug)]
pub struct OnlineConcurrency {
    removals: BinaryHeap<std::cmp::Reverse<u32>>,
    level: u32,
    t_cur: u32,
    peak: u32,
    /// Seconds spent at each concurrency level, indexed by level. Levels
    /// are dense small integers (bounded by peak concurrency), so a flat
    /// vector beats a tree: `account` runs once or twice per released
    /// entry and its histogram bump must be O(1).
    marginal: Vec<u64>,
    weighted: u128,
    fold_secs: [u64; DAILY_BINS],
    fold_weighted: [u64; DAILY_BINS],
    peak_pending: usize,
}

impl Default for OnlineConcurrency {
    fn default() -> Self {
        Self {
            removals: BinaryHeap::new(),
            level: 0,
            t_cur: 0,
            peak: 0,
            marginal: Vec::new(),
            weighted: 0,
            fold_secs: [0; DAILY_BINS],
            fold_weighted: [0; DAILY_BINS],
            peak_pending: 0,
        }
    }
}

impl OnlineConcurrency {
    /// The empty sweep (time starts at second 0, level 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one kept transfer active over `[start, stop]`, in released
    /// order. Late entries (start below the sweep clock, possible only
    /// after a look-ahead miss) are clamped to the clock.
    pub fn observe(&mut self, start: u32, stop: u32) {
        let s = start.max(self.t_cur);
        self.advance(s);
        self.level += 1;
        self.peak = self.peak.max(self.level);
        let removal = stop.max(s).saturating_add(1);
        self.removals.push(std::cmp::Reverse(removal));
        self.peak_pending = self.peak_pending.max(self.removals.len());
    }

    /// Runs the sweep clock forward to `t`, retiring due removals.
    fn advance(&mut self, t: u32) {
        while let Some(&std::cmp::Reverse(r)) = self.removals.peek() {
            if r > t {
                break;
            }
            self.removals.pop();
            self.account(r);
            self.level -= 1;
        }
        self.account(t);
    }

    /// Accounts the constant segment `[t_cur, until)` at the current level.
    fn account(&mut self, until: u32) {
        if until <= self.t_cur {
            return;
        }
        let dur = u64::from(until - self.t_cur);
        let level = self.level as usize;
        if level >= self.marginal.len() {
            self.marginal.resize(level + 1, 0);
        }
        self.marginal[level] += dur;
        self.weighted += u128::from(self.level) * u128::from(dur);
        // Time-of-day fold over 15-minute bins.
        let mut t = u64::from(self.t_cur);
        let end = u64::from(until);
        while t < end {
            let bin = ((t % 86_400) / 900) as usize;
            let next = ((t / 900) + 1) * 900;
            let seg = next.min(end) - t;
            self.fold_secs[bin] += seg;
            self.fold_weighted[bin] += u64::from(self.level) * seg;
            t = next.min(end);
        }
        self.t_cur = until;
    }

    /// Ends the sweep at `horizon` seconds, accounting the tail.
    pub fn finish(&mut self, horizon: u32) {
        self.advance(horizon);
        // Removals beyond the horizon are clamped (batch behaviour: an
        // entry is active through `stop.min(horizon - 1)`).
        self.removals.clear();
        self.level = 0;
    }

    /// Peak concurrency.
    pub fn peak(&self) -> u32 {
        self.peak
    }

    /// Time-weighted mean concurrency over `[0, horizon)`.
    pub fn mean(&self, horizon: u32) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            self.weighted as f64 / f64::from(horizon)
        }
    }

    /// Marginal distribution: `(level, seconds spent at that level)`,
    /// ascending, non-empty levels only (same shape the tree produced).
    pub fn marginal(&self) -> Vec<(u32, u64)> {
        self.marginal
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s > 0)
            .map(|(l, &s)| (l as u32, s))
            .collect()
    }

    /// Mean concurrency per 15-minute time-of-day bin (Fig 15's shape).
    pub fn daily_fold(&self) -> Vec<f64> {
        (0..DAILY_BINS)
            .map(|b| {
                if self.fold_secs[b] == 0 {
                    0.0
                } else {
                    self.fold_weighted[b] as f64 / self.fold_secs[b] as f64
                }
            })
            .collect()
    }

    /// High-water mark of pending removals (the sweep's memory bound).
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }
}

/// Everything the coordinator accumulates from the released stream.
#[derive(Debug)]
pub struct Coordinator {
    sessionizer: StreamSessionizer,
    /// Bottom-k client sample (transfers, sessions, OFF gaps per client).
    pub sample: ClientSample,
    closed: Vec<ClosedSession>,
    /// Sessions closed so far.
    pub n_sessions: u64,
    /// ON-time log-moments (display-transformed).
    pub on_moments: LogMoments,
    /// ON-time quantile sketch (display-transformed).
    pub on_quant: LogQuantileSketch,
    /// Exact transfers-per-session histogram.
    pub tps: BTreeMap<u32, u64>,
    /// Intra-session interarrival log-moments (display-transformed).
    pub intra_moments: LogMoments,
    /// Transfer interarrival quantile sketch (display-transformed gaps
    /// between consecutive released starts).
    pub iat_quant: LogQuantileSketch,
    prev_start: Option<u32>,
    /// Concurrency sweep.
    pub conc: OnlineConcurrency,
    /// §2.4 CPU audit.
    pub cpu: CpuAudit,
    /// Entries that arrived below the sweep clock (look-ahead misses).
    pub late_entries: u64,
    released: u64,
}

impl Coordinator {
    /// Creates a coordinator with the given session timeout and client
    /// sample capacity.
    pub fn new(timeout: f64, sample_k: usize) -> Self {
        Self {
            sessionizer: StreamSessionizer::new(timeout),
            sample: ClientSample::new(sample_k),
            closed: Vec::new(),
            n_sessions: 0,
            on_moments: LogMoments::new(),
            on_quant: LogQuantileSketch::new(),
            tps: BTreeMap::new(),
            intra_moments: LogMoments::new(),
            iat_quant: LogQuantileSketch::new(),
            prev_start: None,
            conc: OnlineConcurrency::new(),
            cpu: CpuAudit::default(),
            late_entries: 0,
            released: 0,
        }
    }

    /// Consumes one released (start-ordered) kept entry.
    pub fn process(&mut self, e: &LogEntry) {
        self.released += 1;
        if e.start < self.prev_start.unwrap_or(0) {
            self.late_entries += 1;
        }

        // Transfer interarrival gap (consecutive released starts).
        if let Some(prev) = self.prev_start {
            let gap = e.start.saturating_sub(prev);
            self.iat_quant
                .insert_value(lsw_stats::paper::log_display_time(f64::from(gap)));
        }
        self.prev_start = Some(self.prev_start.unwrap_or(0).max(e.start));

        self.conc.observe(e.start, e.stop());
        self.cpu.observe(e.timestamp, e.cpu_util);
        self.cpu.flush_below(e.start);
        self.sample.observe_transfer(e.client.0);

        let intra = self
            .sessionizer
            .observe(e.client.0, e.start, e.stop(), &mut self.closed);
        if let Some(gap) = intra {
            self.intra_moments
                .insert(lsw_stats::paper::log_display_time(f64::from(gap)));
        }
        // Periodic eager close keeps the active map inside one timeout
        // window of the sweep clock.
        if self.released % 4096 == 0 {
            self.sessionizer.prune_before(e.start, &mut self.closed);
        }
        self.drain_closed();
    }

    /// Ends the stream: closes open sessions and the sweep.
    pub fn finish(&mut self, horizon: u32) -> (f64, f64) {
        self.sessionizer.finish(&mut self.closed);
        self.drain_closed();
        self.conc.finish(horizon);
        self.cpu.finish()
    }

    fn drain_closed(&mut self) {
        while let Some(c) = self.closed.pop() {
            self.n_sessions += 1;
            let on_disp = f64::from(c.on_time()) + 1.0;
            self.on_moments.insert(on_disp);
            self.on_quant.insert_value(on_disp);
            *self.tps.entry(c.transfers).or_insert(0) += 1;
            self.sample.observe_session(c.client, c.start, c.end);
        }
    }

    /// Transfers-per-session frequency points `(k, P[K = k])`, identical
    /// to the batch layer's construction (the histogram is exact).
    pub fn tps_points(&self) -> Vec<(f64, f64)> {
        let total: u64 = self.tps.values().sum();
        if total == 0 {
            return Vec::new();
        }
        self.tps
            .iter()
            .map(|(&k, &n)| (f64::from(k), n as f64 / total as f64))
            .collect()
    }

    /// Currently open sessions.
    pub fn active_sessions(&self) -> usize {
        self.sessionizer.active_len()
    }

    /// High-water mark of open sessions.
    pub fn peak_active_sessions(&self) -> usize {
        self.sessionizer.peak_active()
    }

    /// Approximate resident bytes of coordinator state.
    pub fn bytes(&self) -> usize {
        use crate::sketch::Sketch as _;
        self.sessionizer.bytes()
            + self.sample.bytes()
            + self.on_quant.bytes()
            + self.iat_quant.bytes()
            + self.tps.len() * 2 * 12
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrency_matches_batch_profile() {
        use lsw_trace::concurrency::ConcurrencyProfile;

        // Deterministic pseudo-random intervals, fed in start order.
        let mut state = 0xdead_beef_cafe_f00du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut intervals: Vec<(u32, u32)> = (0..3_000)
            .map(|_| {
                let start = (next() % 50_000) as u32;
                let stop = start + (next() % 2_000) as u32;
                (start, stop)
            })
            .collect();
        intervals.sort_unstable();
        let horizon = 60_000;

        let batch = ConcurrencyProfile::from_intervals(intervals.iter().copied(), horizon);
        let mut sweep = OnlineConcurrency::new();
        for &(s, e) in &intervals {
            sweep.observe(s, e);
        }
        sweep.finish(horizon);

        assert_eq!(sweep.peak(), batch.peak());
        // Marginal must match the batch per-second histogram exactly.
        let mut batch_marginal: BTreeMap<u32, u64> = BTreeMap::new();
        for &c in batch.per_second() {
            *batch_marginal.entry(c).or_insert(0) += 1;
        }
        let batch_points: Vec<(u32, u64)> = batch_marginal.into_iter().collect();
        assert_eq!(sweep.marginal(), batch_points);
        let batch_mean = batch
            .per_second()
            .iter()
            .map(|&c| u64::from(c))
            .sum::<u64>() as f64
            / f64::from(horizon);
        assert!((sweep.mean(horizon) - batch_mean).abs() < 1e-9);
    }

    #[test]
    fn cpu_audit_matches_batch_fractions() {
        let mut audit = CpuAudit::default();
        // (timestamp, cpu): two cool bins, one hot bin.
        for (ts, cpu) in [(5u32, 0.5f32), (100, 0.01), (100, 0.02), (200, 0.03)] {
            audit.observe(ts, cpu);
        }
        let (time, transfers) = audit.finish();
        assert!((time - 2.0 / 3.0).abs() < 1e-9);
        assert!((transfers - 3.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn late_entries_are_counted_not_fatal() {
        let mut c = Coordinator::new(1500.0, 1024);
        let mk = |start: u32, dur: u32| {
            lsw_trace::event::LogEntryBuilder::new()
                .span(start, dur)
                .client(lsw_trace::ids::ClientId(1))
                .build()
        };
        c.process(&mk(1000, 10));
        c.process(&mk(500, 10)); // out of order
        c.process(&mk(2000, 10));
        assert_eq!(c.late_entries, 1);
        let _ = c.finish(3000);
        assert!(c.n_sessions >= 1);
    }
}
