//! The sequential coordinator behind the look-ahead heap.
//!
//! Order-insensitive per-entry statistics live in the parallel shard
//! sketches; everything whose definition depends on *stream order* —
//! sessionization, transfer interarrival gaps, the concurrency sweep, the
//! per-second CPU audit — is computed here, on the single deterministic
//! entry sequence the look-ahead heap releases (sorted by `(start,
//! timestamp, line)`). One consumer, one order: shard count cannot touch
//! these results, and memory stays bounded by the look-ahead window.

use crate::fixed::LogMoments;
use crate::quantile::LogQuantileSketch;
use crate::sample::ClientSample;
use crate::session::{ClosedSession, StreamSessionizer};
use lsw_trace::event::LogEntry;
use std::collections::BinaryHeap;

/// Fixed-point scale for CPU-audit sums (2^-32 per unit).
const CPU_SCALE: f64 = 4_294_967_296.0;

/// Seconds per CPU-audit block: bins are grouped 64 at a time so the hot
/// `observe` path descends a tree that is 64x smaller and the per-entry
/// flush probe is a single shallow `first_key_value`.
const CPU_BLOCK_BITS: u32 = 6;
const CPU_BLOCK: usize = 1 << CPU_BLOCK_BITS;

/// 64 consecutive one-second bins of `(fixed-point sum, sample count)`.
#[derive(Debug)]
struct CpuBlock {
    /// Owning block key (`timestamp >> CPU_BLOCK_BITS`), kept so ring
    /// growth can re-place the block without external bookkeeping.
    key: u32,
    sums: [i64; CPU_BLOCK],
    counts: [u32; CPU_BLOCK],
}

impl CpuBlock {
    fn new(key: u32) -> Box<Self> {
        Box::new(Self {
            key,
            sums: [0; CPU_BLOCK],
            counts: [0; CPU_BLOCK],
        })
    }
}

/// Per-second CPU-load audit in a sliding window (§2.4).
///
/// The batch sanitizer averages CPU readings into one-second bins over the
/// whole trace; here bins are kept only while entries can still land in
/// them. A bin at second `t` receives readings from entries with
/// `timestamp == t`, and every entry satisfies `timestamp >= start`, so
/// once the released stream reaches start `s` all bins below `s` are
/// final and fold into two counters. Folding happens a whole 64-bin block
/// at a time — deferral only delays *when* a final bin is counted, never
/// what it contributes, so the finish-time fractions are unchanged.
#[derive(Debug)]
pub struct CpuAudit {
    /// Power-of-two ring of live blocks, indexed by block key mod the
    /// ring length. Live keys span `[min_block, max_block]`; the ring
    /// grows until that span fits, so distinct live keys never collide
    /// and the hot `observe` probe is one indexed load plus a compare.
    ring: Vec<Option<Box<CpuBlock>>>,
    /// Occupied ring slots.
    live: usize,
    /// Smallest live block key (`u32::MAX` when empty), so the
    /// once-per-entry flush probe is a register compare instead of a
    /// tree descent. Doubles as the flush cursor over the ring.
    min_block: u32,
    /// Largest live block key (0 when empty).
    max_block: u32,
    done_bins: u64,
    done_under: u64,
    transfers: u64,
    under_transfers: u64,
}

impl Default for CpuAudit {
    fn default() -> Self {
        Self {
            ring: Vec::new(),
            live: 0,
            min_block: u32::MAX,
            max_block: 0,
            done_bins: 0,
            done_under: 0,
            transfers: 0,
            under_transfers: 0,
        }
    }
}

impl CpuAudit {
    /// Observes one kept entry's CPU reading.
    pub fn observe(&mut self, timestamp: u32, cpu: f32) {
        self.transfers += 1;
        if cpu < lsw_trace::sanitize::CPU_THRESHOLD {
            self.under_transfers += 1;
        }
        let key = timestamp >> CPU_BLOCK_BITS;
        let (min, max) = if self.live == 0 {
            (key, key)
        } else {
            (self.min_block.min(key), self.max_block.max(key))
        };
        if u64::from(max - min) >= self.ring.len() as u64 {
            self.grow_ring(max - min);
        }
        self.min_block = min;
        self.max_block = max;
        let slot = key as usize & (self.ring.len() - 1);
        let block = match &mut self.ring[slot] {
            Some(b) => b,
            vacant => {
                self.live += 1;
                vacant.insert(CpuBlock::new(key))
            }
        };
        debug_assert_eq!(block.key, key, "live key span exceeded the ring");
        let bin = (timestamp as usize) & (CPU_BLOCK - 1);
        block.sums[bin] += (f64::from(cpu) * CPU_SCALE).round() as i64;
        block.counts[bin] += 1;
    }

    /// Doubles the ring until a live key span of `span` fits, re-placing
    /// every live block (distinct keys stay distinct mod the new length).
    fn grow_ring(&mut self, span: u32) {
        let mut new_len = self.ring.len().max(16);
        while new_len as u64 <= u64::from(span) {
            new_len *= 2;
        }
        let old = std::mem::take(&mut self.ring);
        self.ring.resize_with(new_len, || None);
        for block in old.into_iter().flatten() {
            let slot = block.key as usize & (new_len - 1);
            debug_assert!(self.ring[slot].is_none());
            self.ring[slot] = Some(block);
        }
    }

    /// Folds every block strictly below `watermark` into the totals (a
    /// block folds once *all* its bins are below the watermark).
    pub fn flush_below(&mut self, watermark: u32) {
        // Called once per released entry: bail on the cached minimum for
        // the (overwhelmingly common) case where no block is final yet.
        let limit = u64::from(watermark) >> CPU_BLOCK_BITS;
        while u64::from(self.min_block) < limit && self.live > 0 {
            let slot = self.min_block as usize & (self.ring.len() - 1);
            if let Some(block) = self.ring[slot].take() {
                self.fold(&block);
                self.live -= 1;
            }
            if self.live == 0 {
                self.min_block = u32::MAX;
                self.max_block = 0;
            } else {
                // The cursor walks key by key; each block key is visited
                // at most once over the whole stream.
                self.min_block += 1;
            }
        }
    }

    fn fold(&mut self, block: &CpuBlock) {
        for (sum, n) in block.sums.iter().zip(&block.counts) {
            if *n == 0 {
                continue;
            }
            self.done_bins += 1;
            let avg = *sum as f64 / CPU_SCALE / f64::from(*n);
            if avg < f64::from(lsw_trace::sanitize::CPU_THRESHOLD) {
                self.done_under += 1;
            }
        }
    }

    /// Final underload fractions `(time, transfers)`, batch conventions:
    /// empty audits count as fully underloaded.
    pub fn finish(&mut self) -> (f64, f64) {
        // Fold survivors in ascending key order (the span fits the ring,
        // so one pass of the cursor visits every live block).
        while self.live > 0 {
            let slot = self.min_block as usize & (self.ring.len() - 1);
            if let Some(block) = self.ring[slot].take() {
                self.fold(&block);
                self.live -= 1;
            }
            if self.min_block == self.max_block {
                break;
            }
            self.min_block += 1;
        }
        self.live = 0;
        self.min_block = u32::MAX;
        self.max_block = 0;
        let time = if self.done_bins == 0 {
            1.0
        } else {
            self.done_under as f64 / self.done_bins as f64
        };
        let transfers = if self.transfers == 0 {
            1.0
        } else {
            self.under_transfers as f64 / self.transfers as f64
        };
        (time, transfers)
    }

    /// Live window size (non-empty bins currently held).
    pub fn window_bins(&self) -> usize {
        self.ring
            .iter()
            .flatten()
            .map(|b| b.counts.iter().filter(|&&n| n > 0).count())
            .sum()
    }
}

/// Number of 15-minute bins in a day (the paper's piecewise window).
pub const DAILY_BINS: usize = 96;

/// Slot cap of the concurrency timing wheel (seconds). Removal leads at
/// or beyond this (transfers longer than ~36 hours) fall back to the
/// overflow heap, bounding wheel memory at 512 KiB.
const CONC_WHEEL_CAP: usize = 1 << 17;

/// Online transfer-concurrency sweep over the released stream.
///
/// Equivalent to the batch difference-array profile but without the
/// per-second array: the stream arrives start-ordered, pending removal
/// times (`stop + 1`) sit in a timing wheel of per-second counts, and
/// time advances piecewise — each constant-concurrency segment is
/// accumulated into a level → seconds marginal, a time-weighted total,
/// and a 96-bin time-of-day fold.
///
/// The wheel replaces a removal min-heap on the per-entry hot path: a
/// push is one counter bump and retirement scans each elapsed second
/// once globally (clock time, already bounded by the horizon), instead
/// of paying a heap sift per transfer. Leads the wheel cannot hold go
/// to a (normally empty) overflow heap; removals still retire in
/// nondecreasing time order, so every accounted segment — and thus
/// every published statistic — is identical to the heap formulation.
#[derive(Debug)]
pub struct OnlineConcurrency {
    /// Power-of-two ring of removal counts, indexed by absolute second
    /// mod the wheel length. Grows with the largest lead seen (capped).
    wheel: Vec<u32>,
    /// Removals currently resident in the wheel.
    wheel_pending: u64,
    /// Removals whose lead exceeded [`CONC_WHEEL_CAP`].
    overflow: BinaryHeap<std::cmp::Reverse<u32>>,
    level: u32,
    t_cur: u32,
    peak: u32,
    /// Seconds spent at each concurrency level, indexed by level. Levels
    /// are dense small integers (bounded by peak concurrency), so a flat
    /// vector beats a tree: `account` runs once or twice per released
    /// entry and its histogram bump must be O(1).
    marginal: Vec<u64>,
    weighted: u128,
    fold_secs: [u64; DAILY_BINS],
    fold_weighted: [u64; DAILY_BINS],
    /// Time-of-day bin containing `t_cur` and the absolute second where it
    /// ends: the common segment fits one bin, making the fold a compare
    /// and two adds instead of a div/mod pair.
    bin: usize,
    bin_end: u64,
    peak_pending: usize,
}

impl Default for OnlineConcurrency {
    fn default() -> Self {
        Self {
            wheel: Vec::new(),
            wheel_pending: 0,
            overflow: BinaryHeap::new(),
            level: 0,
            t_cur: 0,
            peak: 0,
            marginal: Vec::new(),
            weighted: 0,
            fold_secs: [0; DAILY_BINS],
            fold_weighted: [0; DAILY_BINS],
            bin: 0,
            bin_end: 900,
            peak_pending: 0,
        }
    }
}

impl OnlineConcurrency {
    /// The empty sweep (time starts at second 0, level 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one kept transfer active over `[start, stop]`, in released
    /// order. Late entries (start below the sweep clock, possible only
    /// after a look-ahead miss) are clamped to the clock.
    pub fn observe(&mut self, start: u32, stop: u32) {
        let s = start.max(self.t_cur);
        self.advance(s);
        self.level += 1;
        self.peak = self.peak.max(self.level);
        let removal = stop.max(s).saturating_add(1);
        self.push_removal(removal);
        self.peak_pending = self
            .peak_pending
            .max(self.wheel_pending as usize + self.overflow.len());
    }

    /// Files one pending removal at absolute second `r` (`r > t_cur`).
    fn push_removal(&mut self, r: u32) {
        // The wheel addresses the window `(t_cur, t_cur + len]`; a lead
        // strictly below `len` always fits, leaving the `t_cur` slot free.
        let lead = (r - self.t_cur) as usize;
        if lead >= CONC_WHEEL_CAP {
            self.overflow.push(std::cmp::Reverse(r));
            return;
        }
        if lead >= self.wheel.len() {
            self.grow_wheel(lead);
        }
        let mask = self.wheel.len() - 1;
        self.wheel[r as usize & mask] += 1;
        self.wheel_pending += 1;
    }

    /// Doubles the wheel until `lead` fits, re-bucketing pending counts.
    ///
    /// Every pending removal lies in `(t_cur, t_cur + old_len]`, so each
    /// old slot maps to exactly one absolute second in that window and
    /// the re-bucketing is a bijection.
    fn grow_wheel(&mut self, lead: usize) {
        let mut new_len = self.wheel.len().max(64);
        while new_len <= lead {
            new_len *= 2;
        }
        let old = std::mem::replace(&mut self.wheel, vec![0u32; new_len]);
        if !old.is_empty() && self.wheel_pending > 0 {
            let from = u64::from(self.t_cur) + 1;
            let to = (u64::from(self.t_cur) + old.len() as u64).min(u64::from(u32::MAX));
            for sec in from..=to {
                let cnt = old[sec as usize & (old.len() - 1)];
                if cnt > 0 {
                    self.wheel[sec as usize & (new_len - 1)] = cnt;
                }
            }
        }
    }

    /// Runs the sweep clock forward to `t`, retiring due removals.
    ///
    /// Scans second by second only while removals are pending — each
    /// elapsed second is visited at most once over the whole stream
    /// (`t_cur` jumps to `t` at every call), so retirement is O(clock
    /// seconds + removals), not O(removals · log pending).
    fn advance(&mut self, t: u32) {
        if self.wheel_pending > 0 || !self.overflow.is_empty() {
            let end = u64::from(t);
            let mut sec = u64::from(self.t_cur) + 1;
            while sec <= end
                && (self.wheel_pending > 0
                    || self
                        .overflow
                        .peek()
                        .is_some_and(|&std::cmp::Reverse(r)| u64::from(r) <= end))
            {
                let s32 = sec as u32;
                let mut cnt = 0u32;
                if self.wheel_pending > 0 {
                    let slot = sec as usize & (self.wheel.len() - 1);
                    cnt = self.wheel[slot];
                    if cnt > 0 {
                        self.wheel[slot] = 0;
                        self.wheel_pending -= u64::from(cnt);
                    }
                }
                while self
                    .overflow
                    .peek()
                    .is_some_and(|&std::cmp::Reverse(r)| r == s32)
                {
                    self.overflow.pop();
                    cnt += 1;
                }
                if cnt > 0 {
                    self.account(s32);
                    self.level -= cnt;
                }
                sec += 1;
            }
        }
        self.account(t);
    }

    /// Accounts the constant segment `[t_cur, until)` at the current level.
    fn account(&mut self, until: u32) {
        if until <= self.t_cur {
            return;
        }
        let dur = u64::from(until - self.t_cur);
        let level = self.level as usize;
        if level >= self.marginal.len() {
            self.marginal.resize(level + 1, 0);
        }
        self.marginal[level] += dur;
        self.weighted += u128::from(self.level) * u128::from(dur);
        // Time-of-day fold over 15-minute bins. `bin`/`bin_end` track the
        // bin holding `t_cur`, so whole-segment-in-bin (the overwhelming
        // case) costs one compare and two adds.
        let mut t = u64::from(self.t_cur);
        let end = u64::from(until);
        loop {
            let stop = self.bin_end.min(end);
            let seg = stop - t;
            self.fold_secs[self.bin] += seg;
            self.fold_weighted[self.bin] += u64::from(self.level) * seg;
            t = stop;
            if t >= end {
                break;
            }
            self.bin = (self.bin + 1) % DAILY_BINS;
            self.bin_end += 900;
        }
        self.t_cur = until;
    }

    /// Ends the sweep at `horizon` seconds, accounting the tail.
    pub fn finish(&mut self, horizon: u32) {
        self.advance(horizon);
        // Removals beyond the horizon are clamped (batch behaviour: an
        // entry is active through `stop.min(horizon - 1)`).
        self.wheel.fill(0);
        self.wheel_pending = 0;
        self.overflow.clear();
        self.level = 0;
    }

    /// Peak concurrency.
    pub fn peak(&self) -> u32 {
        self.peak
    }

    /// Time-weighted mean concurrency over `[0, horizon)`.
    pub fn mean(&self, horizon: u32) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            self.weighted as f64 / f64::from(horizon)
        }
    }

    /// Marginal distribution: `(level, seconds spent at that level)`,
    /// ascending, non-empty levels only (same shape the tree produced).
    pub fn marginal(&self) -> Vec<(u32, u64)> {
        self.marginal
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s > 0)
            .map(|(l, &s)| (l as u32, s))
            .collect()
    }

    /// Mean concurrency per 15-minute time-of-day bin (Fig 15's shape).
    pub fn daily_fold(&self) -> Vec<f64> {
        (0..DAILY_BINS)
            .map(|b| {
                if self.fold_secs[b] == 0 {
                    0.0
                } else {
                    self.fold_weighted[b] as f64 / self.fold_secs[b] as f64
                }
            })
            .collect()
    }

    /// High-water mark of pending removals (the sweep's memory bound).
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }
}

/// Everything the coordinator accumulates from the released stream.
#[derive(Debug)]
pub struct Coordinator {
    sessionizer: StreamSessionizer,
    /// Bottom-k client sample (transfers, sessions, OFF gaps per client).
    pub sample: ClientSample,
    closed: Vec<ClosedSession>,
    /// Sessions closed so far.
    pub n_sessions: u64,
    /// ON-time log-moments (display-transformed).
    pub on_moments: LogMoments,
    /// ON-time quantile sketch (display-transformed).
    pub on_quant: LogQuantileSketch,
    /// Exact transfers-per-session histogram, dense by transfer count
    /// (bounded by the longest session; bumped once per closed session).
    pub tps: Vec<u64>,
    /// Intra-session interarrival log-moments (display-transformed).
    pub intra_moments: LogMoments,
    /// Transfer interarrival quantile sketch (display-transformed gaps
    /// between consecutive released starts).
    pub iat_quant: LogQuantileSketch,
    prev_start: Option<u32>,
    /// Concurrency sweep.
    pub conc: OnlineConcurrency,
    /// §2.4 CPU audit.
    pub cpu: CpuAudit,
    /// Entries that arrived below the sweep clock (look-ahead misses).
    pub late_entries: u64,
    released: u64,
}

impl Coordinator {
    /// Creates a coordinator with the given session timeout and client
    /// sample capacity.
    pub fn new(timeout: f64, sample_k: usize) -> Self {
        Self {
            sessionizer: StreamSessionizer::new(timeout),
            sample: ClientSample::new(sample_k),
            closed: Vec::new(),
            n_sessions: 0,
            on_moments: LogMoments::new(),
            on_quant: LogQuantileSketch::new(),
            tps: Vec::new(),
            intra_moments: LogMoments::new(),
            iat_quant: LogQuantileSketch::new(),
            prev_start: None,
            conc: OnlineConcurrency::new(),
            cpu: CpuAudit::default(),
            late_entries: 0,
            released: 0,
        }
    }

    /// Consumes one released (start-ordered) kept entry.
    pub fn process(&mut self, e: &LogEntry) {
        self.process_hashed(e, crate::sketch::hash64(u64::from(e.client.0)));
    }

    /// [`process`](Self::process) with the client hash already computed —
    /// the fused `ltc` ingest path shares one `hash64` per entry between
    /// the shard HyperLogLog, the client sample and the sessionizer.
    pub fn process_hashed(&mut self, e: &LogEntry, client_hash: u64) {
        self.released += 1;
        if e.start < self.prev_start.unwrap_or(0) {
            self.late_entries += 1;
        }

        // Transfer interarrival gap (consecutive released starts).
        if let Some(prev) = self.prev_start {
            let gap = e.start.saturating_sub(prev);
            self.iat_quant
                .insert_value(lsw_stats::paper::log_display_time(f64::from(gap)));
        }
        self.prev_start = Some(self.prev_start.unwrap_or(0).max(e.start));

        self.conc.observe(e.start, e.stop());
        self.cpu.observe(e.timestamp, e.cpu_util);
        self.cpu.flush_below(e.start);
        self.sample.observe_transfer_hashed(client_hash, e.client.0);

        let intra = self.sessionizer.observe_hashed(
            client_hash,
            e.client.0,
            e.start,
            e.stop(),
            &mut self.closed,
        );
        if let Some(gap) = intra {
            self.intra_moments
                .insert(lsw_stats::paper::log_display_time(f64::from(gap)));
        }
        // Periodic eager close keeps the active map inside one timeout
        // window of the sweep clock.
        if self.released % 4096 == 0 {
            self.sessionizer.prune_before(e.start, &mut self.closed);
        }
        self.drain_closed();
    }

    /// Ends the stream: closes open sessions and the sweep.
    pub fn finish(&mut self, horizon: u32) -> (f64, f64) {
        self.sessionizer.finish(&mut self.closed);
        self.drain_closed();
        self.conc.finish(horizon);
        self.cpu.finish()
    }

    fn drain_closed(&mut self) {
        while let Some(c) = self.closed.pop() {
            self.n_sessions += 1;
            let on_disp = f64::from(c.on_time()) + 1.0;
            self.on_moments.insert(on_disp);
            self.on_quant.insert_value(on_disp);
            let k = c.transfers as usize;
            if k >= self.tps.len() {
                self.tps.resize(k + 1, 0);
            }
            self.tps[k] += 1;
            self.sample.observe_session(c.client, c.start, c.end);
        }
    }

    /// Transfers-per-session frequency points `(k, P[K = k])`, identical
    /// to the batch layer's construction (the histogram is exact).
    pub fn tps_points(&self) -> Vec<(f64, f64)> {
        let total: u64 = self.tps.iter().sum();
        if total == 0 {
            return Vec::new();
        }
        self.tps
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(k, &n)| (k as f64, n as f64 / total as f64))
            .collect()
    }

    /// Currently open sessions.
    pub fn active_sessions(&self) -> usize {
        self.sessionizer.active_len()
    }

    /// High-water mark of open sessions.
    pub fn peak_active_sessions(&self) -> usize {
        self.sessionizer.peak_active()
    }

    /// Approximate resident bytes of coordinator state.
    pub fn bytes(&self) -> usize {
        use crate::sketch::Sketch as _;
        self.sessionizer.bytes()
            + self.sample.bytes()
            + self.on_quant.bytes()
            + self.iat_quant.bytes()
            + self.tps.len() * 8
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn concurrency_matches_batch_profile() {
        use lsw_trace::concurrency::ConcurrencyProfile;

        // Deterministic pseudo-random intervals, fed in start order.
        let mut state = 0xdead_beef_cafe_f00du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut intervals: Vec<(u32, u32)> = (0..3_000)
            .map(|_| {
                let start = (next() % 50_000) as u32;
                let stop = start + (next() % 2_000) as u32;
                (start, stop)
            })
            .collect();
        intervals.sort_unstable();
        let horizon = 60_000;

        let batch = ConcurrencyProfile::from_intervals(intervals.iter().copied(), horizon);
        let mut sweep = OnlineConcurrency::new();
        for &(s, e) in &intervals {
            sweep.observe(s, e);
        }
        sweep.finish(horizon);

        assert_eq!(sweep.peak(), batch.peak());
        // Marginal must match the batch per-second histogram exactly.
        let mut batch_marginal: BTreeMap<u32, u64> = BTreeMap::new();
        for &c in batch.per_second() {
            *batch_marginal.entry(c).or_insert(0) += 1;
        }
        let batch_points: Vec<(u32, u64)> = batch_marginal.into_iter().collect();
        assert_eq!(sweep.marginal(), batch_points);
        let batch_mean = batch
            .per_second()
            .iter()
            .map(|&c| u64::from(c))
            .sum::<u64>() as f64
            / f64::from(horizon);
        assert!((sweep.mean(horizon) - batch_mean).abs() < 1e-9);
    }

    #[test]
    fn cpu_audit_matches_batch_fractions() {
        let mut audit = CpuAudit::default();
        // (timestamp, cpu): two cool bins, one hot bin.
        for (ts, cpu) in [(5u32, 0.5f32), (100, 0.01), (100, 0.02), (200, 0.03)] {
            audit.observe(ts, cpu);
        }
        let (time, transfers) = audit.finish();
        assert!((time - 2.0 / 3.0).abs() < 1e-9);
        assert!((transfers - 3.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn late_entries_are_counted_not_fatal() {
        let mut c = Coordinator::new(1500.0, 1024);
        let mk = |start: u32, dur: u32| {
            lsw_trace::event::LogEntryBuilder::new()
                .span(start, dur)
                .client(lsw_trace::ids::ClientId(1))
                .build()
        };
        c.process(&mk(1000, 10));
        c.process(&mk(500, 10)); // out of order
        c.process(&mk(2000, 10));
        assert_eq!(c.late_entries, 1);
        let _ = c.finish(3000);
        assert!(c.n_sessions >= 1);
    }
}
