//! The streamed characterization report.
//!
//! [`StreamReport`] mirrors the batch `CharacterizationReport` layer by
//! layer — client interest, session dynamics, transfer marginals,
//! concurrency — but every figure comes out of a bounded-memory sketch
//! rather than an in-RAM trace. Fields that are *estimates* (HLL counts,
//! sampled OFF times) are documented as such; fields that are *exact under
//! streaming* (session count, ON-time fit, transfers-per-session fit)
//! match the batch pipeline to floating-point round-off.

use crate::quantile::QuantileSummary;
use lsw_stats::fit::{LogNormalFit, TwoRegimeTail, ZipfFit};
use lsw_stats::paper;
use lsw_trace::sanitize::RejectReason;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Ingest accounting: what the engine read, kept and discarded.
///
/// Carries the same per-reason reject breakdown as the batch sanitizer's
/// `SanitizeReport`, so batch and stream ingest can be reconciled line for
/// line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamAccounting {
    /// Log lines read (including blanks, comments and malformed lines).
    pub lines_total: u64,
    /// Lines that failed to parse (counted, never fatal).
    pub malformed_lines: u64,
    /// First parse error observed, with its line number.
    pub first_malformed: Option<String>,
    /// Entries that arrived below the released watermark and were clamped
    /// into the ordered stream (look-ahead misses).
    pub late_entries: u64,
    /// Binary (`ltc`) blocks rejected by CRC or decode checks — the
    /// container analogue of `malformed_lines`: counted, never fatal.
    pub corrupt_blocks: u64,
    /// Records lost inside rejected blocks, per the container index.
    pub corrupt_records: u64,
    /// First block corruption observed, for diagnostics.
    pub first_corrupt: Option<String>,
    /// Entries parsed successfully (the batch sanitizer's `examined`).
    pub examined: u64,
    /// Entries kept after the §2.4 sanitization rules.
    pub kept: u64,
    /// Per-reason §2.4 reject counts, descending.
    pub rejects: Vec<(RejectReason, u64)>,
    /// Fraction of 1-second bins with mean CPU below the 10% threshold.
    pub underload_time_fraction: f64,
    /// Fraction of transfers logged while CPU was below the threshold.
    pub underload_transfer_fraction: f64,
}

impl StreamAccounting {
    /// Total entries rejected by the sanitization rules.
    pub fn rejected(&self) -> u64 {
        self.rejects.iter().map(|&(_, n)| n).sum()
    }
}

/// Table 1 style workload totals (client layer).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamSummary {
    /// Collection horizon in seconds (explicit or inferred `max stop + 1`).
    pub horizon: u32,
    /// Horizon in days.
    pub days: f64,
    /// Distinct users (player ids) — HyperLogLog estimate, ≤ 2% error at
    /// the default 2^14 registers.
    pub users: f64,
    /// Distinct client IP addresses — HyperLogLog estimate.
    pub client_ips: f64,
    /// Distinct client autonomous systems (exact while the AS space fits
    /// the SpaceSaving capacity; the paper's workload has 1 010).
    pub client_ases: u64,
    /// Distinct client countries (exact: the paper has 11).
    pub countries: u64,
    /// Distinct live objects (exact: the paper has 2).
    pub objects: u64,
    /// Transfers kept (exact count).
    pub transfers: u64,
    /// Bytes served, in TB (exact sum).
    pub terabytes: f64,
}

/// The online concurrency profile (Fig 14/15 analogue).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConcurrencySummary {
    /// Peak simultaneous transfers.
    pub peak: u32,
    /// Time-averaged concurrency over the horizon.
    pub mean: f64,
    /// Seconds spent at each concurrency level, ascending by level.
    pub marginal: Vec<(u32, u64)>,
    /// Mean concurrency folded into 96 fifteen-minute bins of the day.
    pub daily_fold: Vec<f64>,
}

/// Resident-memory audit of the streaming engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// Bytes held by all sketches (shards + coordinator) at finalize.
    pub sketch_bytes: u64,
    /// High-water mark of entries buffered in the look-ahead heap.
    pub peak_heap_entries: u64,
    /// High-water mark of simultaneously open sessions.
    pub peak_active_sessions: u64,
}

/// Everything the one-pass engine can say about a trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamReport {
    /// Session idle timeout used (seconds).
    pub session_timeout: f64,
    /// Parse shard count (affects wall-clock only, never the numbers).
    pub shards: usize,
    /// Workload totals.
    pub summary: StreamSummary,
    /// Ingest accounting.
    pub accounting: StreamAccounting,
    /// Sessions identified by the online timeout rule (exact).
    pub n_sessions: u64,
    /// Zipf fit of per-client transfer counts (Fig 7), from the bottom-k
    /// client sample — slope invariant under uniform rank scaling.
    pub interest_transfers: Option<ZipfFit>,
    /// Zipf fit of per-client session counts (Fig 7).
    pub interest_sessions: Option<ZipfFit>,
    /// Clients in the bottom-k sample.
    pub sample_clients: u64,
    /// Estimated fraction of the client population sampled.
    pub sample_fraction: f64,
    /// Lognormal fit of session ON times (Fig 9) — exact multiset, matches
    /// batch to round-off.
    pub on_fit: Option<LogNormalFit>,
    /// ON-time quantiles from the log-bucket sketch (≤ 1% rank error).
    pub on_quantiles: Option<QuantileSummary>,
    /// Mean OFF time in seconds, from sampled clients' complete gap lists.
    pub off_mean: Option<f64>,
    /// OFF gaps behind `off_mean`.
    pub off_gaps: u64,
    /// Zipf fit of the transfers-per-session frequency plot (Fig 13) —
    /// exact histogram, matches batch.
    pub tps_fit: Option<ZipfFit>,
    /// Lognormal fit of intra-session transfer interarrivals (Fig 16).
    pub intra_iat_fit: Option<LogNormalFit>,
    /// Lognormal fit of transfer lengths (Fig 12 / Table 2).
    pub transfer_length_fit: Option<LogNormalFit>,
    /// Transfer-length quantiles from the log-bucket sketch.
    pub transfer_length_quantiles: Option<QuantileSummary>,
    /// Two-regime power-law tail of transfer interarrivals (Fig 17),
    /// fitted on the quantile sketch's CCDF.
    pub iat_tail: Option<TwoRegimeTail>,
    /// Fraction of transfers whose average bandwidth sat under the
    /// 20 kbit/s congestion bound (§5, ~10%).
    pub congestion_bound_fraction: f64,
    /// Busiest client ASes by transfer count.
    pub top_ases: Vec<(u16, u64)>,
    /// Client countries by transfer share.
    pub top_countries: Vec<(String, f64)>,
    /// Online concurrency profile.
    pub concurrency: ConcurrencySummary,
    /// Memory audit.
    pub memory: MemoryFootprint,
}

impl StreamReport {
    /// Pretty JSON, stable across shard counts byte for byte.
    pub fn to_json(&self) -> String {
        // lsw::allow(L005): plain struct of numbers/strings always serializes
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Human-readable digest with the paper's Table 2 reference values.
    pub fn headline(&self) -> String {
        let mut out = String::new();
        let s = &self.summary;
        let a = &self.accounting;
        let _ = writeln!(out, "streamed characterization ({} shards)", self.shards);
        let _ = writeln!(
            out,
            "  trace: {:.1} days, {} transfers kept / {} examined ({} rejected, {} malformed lines, {} late)",
            s.days,
            s.transfers,
            a.examined,
            a.rejected(),
            a.malformed_lines,
            a.late_entries
        );
        if a.corrupt_blocks > 0 {
            let _ = writeln!(
                out,
                "  corrupt ltc blocks: {} ({} records lost; first: {})",
                a.corrupt_blocks,
                a.corrupt_records,
                a.first_corrupt.as_deref().unwrap_or("?")
            );
        }
        let _ = writeln!(
            out,
            "  clients: ~{:.0} users, ~{:.0} IPs, {} ASes, {} countries, {} objects, {:.2} TB",
            s.users, s.client_ips, s.client_ases, s.countries, s.objects, s.terabytes
        );
        if let Some(z) = &self.interest_transfers {
            let _ = writeln!(
                out,
                "  interest (transfers/client): alpha {:.4}  [paper {:.4}]  (sample of {} clients)",
                z.alpha,
                paper::INTEREST_TRANSFERS_ALPHA,
                self.sample_clients
            );
        }
        if let Some(z) = &self.interest_sessions {
            let _ = writeln!(
                out,
                "  interest (sessions/client): alpha {:.4}  [paper {:.4}]",
                z.alpha,
                paper::INTEREST_SESSIONS_ALPHA
            );
        }
        let _ = writeln!(
            out,
            "  sessions: {} (timeout {} s)",
            self.n_sessions, self.session_timeout
        );
        if let Some(f) = &self.on_fit {
            let _ = writeln!(
                out,
                "  ON time lognormal: mu {:.4} sigma {:.4}  [paper {:.4} / {:.4}]",
                f.mu,
                f.sigma,
                paper::SESSION_ON_MU,
                paper::SESSION_ON_SIGMA
            );
        }
        if let Some(m) = self.off_mean {
            let _ = writeln!(
                out,
                "  OFF time mean: {:.0} s over {} gaps  [paper {:.0}]",
                m,
                self.off_gaps,
                paper::SESSION_OFF_MEAN
            );
        }
        if let Some(z) = &self.tps_fit {
            let _ = writeln!(
                out,
                "  transfers/session Zipf: alpha {:.4}  [paper {:.4}]",
                z.alpha,
                paper::TRANSFERS_PER_SESSION_ALPHA
            );
        }
        if let Some(f) = &self.intra_iat_fit {
            let _ = writeln!(
                out,
                "  intra-session IAT lognormal: mu {:.4} sigma {:.4}  [paper {:.4} / {:.4}]",
                f.mu,
                f.sigma,
                paper::INTRA_SESSION_IAT_MU,
                paper::INTRA_SESSION_IAT_SIGMA
            );
        }
        if let Some(f) = &self.transfer_length_fit {
            let _ = writeln!(
                out,
                "  transfer length lognormal: mu {:.4} sigma {:.4}  [paper {:.4} / {:.4}]",
                f.mu,
                f.sigma,
                paper::TRANSFER_LENGTH_MU,
                paper::TRANSFER_LENGTH_SIGMA
            );
        }
        if let Some(t) = &self.iat_tail {
            let _ = writeln!(
                out,
                "  transfer IAT tail: alpha_short {:.2} alpha_long {:.2} @ {:.0} s  [paper {:.1} / {:.1}]",
                t.alpha_short,
                t.alpha_long,
                t.boundary,
                paper::TRANSFER_IAT_TAIL_ALPHA_SHORT,
                paper::TRANSFER_IAT_TAIL_ALPHA_LONG
            );
        }
        let _ = writeln!(
            out,
            "  congestion-bounded transfers: {:.1}%  [paper ~{:.0}%]",
            100.0 * self.congestion_bound_fraction,
            100.0 * paper::CONGESTION_BOUND_FRACTION
        );
        let _ = writeln!(
            out,
            "  server underload: {:.4} of time, {:.4} of transfers below the {:.0}% CPU bound",
            a.underload_time_fraction,
            a.underload_transfer_fraction,
            100.0 * paper::SERVER_LOAD_THRESHOLD
        );
        let c = &self.concurrency;
        let _ = writeln!(
            out,
            "  concurrency: peak {} mean {:.2} ({} levels observed)",
            c.peak,
            c.mean,
            c.marginal.len()
        );
        let m = &self.memory;
        let _ = writeln!(
            out,
            "  memory: {} sketch bytes, peak {} heap entries, peak {} open sessions",
            m.sketch_bytes, m.peak_heap_entries, m.peak_active_sessions
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let report = StreamReport {
            session_timeout: 1500.0,
            shards: 2,
            summary: StreamSummary {
                horizon: 86_400,
                days: 1.0,
                users: 100.0,
                client_ips: 90.0,
                client_ases: 5,
                countries: 3,
                objects: 2,
                transfers: 1_000,
                terabytes: 0.001,
            },
            accounting: StreamAccounting {
                lines_total: 1_010,
                malformed_lines: 2,
                first_malformed: Some("line 7: bad field".into()),
                late_entries: 0,
                corrupt_blocks: 0,
                corrupt_records: 0,
                first_corrupt: None,
                examined: 1_008,
                kept: 1_000,
                rejects: vec![(RejectReason::FailedStatus, 8)],
                underload_time_fraction: 1.0,
                underload_transfer_fraction: 1.0,
            },
            n_sessions: 400,
            interest_transfers: None,
            interest_sessions: None,
            sample_clients: 100,
            sample_fraction: 1.0,
            on_fit: None,
            on_quantiles: None,
            off_mean: Some(1234.0),
            off_gaps: 300,
            tps_fit: None,
            intra_iat_fit: None,
            transfer_length_fit: None,
            transfer_length_quantiles: None,
            iat_tail: None,
            congestion_bound_fraction: 0.1,
            top_ases: vec![(7, 500)],
            top_countries: vec![("BR".into(), 0.9)],
            concurrency: ConcurrencySummary {
                peak: 10,
                mean: 2.5,
                marginal: vec![(0, 100), (1, 50)],
                daily_fold: vec![0.0; 4],
            },
            memory: MemoryFootprint {
                sketch_bytes: 1 << 20,
                peak_heap_entries: 12,
                peak_active_sessions: 9,
            },
        };
        let json = report.to_json();
        let back: StreamReport = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.to_json(), json);
        assert_eq!(report.accounting.rejected(), 8);
        let text = report.headline();
        assert!(text.contains("sessions: 400"));
        assert!(text.contains("OFF time mean"));
    }
}
