//! The streaming ingest engine: chunked parallel parse, look-ahead
//! re-ordering, sequential coordination.
//!
//! A WMS log line is written when a transfer *stops*, so a log is (at
//! best) stop-ordered while every order-dependent statistic wants
//! start-ordered entries. The engine restores start order with a bounded
//! look-ahead heap: an entry is released once no future line can precede
//! it, i.e. its start is below `max(max start seen, max timestamp seen −
//! max duration seen)`. For start-sorted logs (the generator's output) the
//! heap holds one start cohort; for stop-sorted logs it holds one
//! look-ahead window of entries. An entry that still arrives below the
//! released watermark — possible only when a duration exceeds every
//! duration seen before it — is clamped and *counted* (`late_entries`),
//! never dropped or fatal.
//!
//! Parallelism follows the PR 1 discipline: each chunk of lines is split
//! into contiguous sub-ranges, sub-range `i` feeds shard `i`'s sketches,
//! and shard states merge in shard-index order at the end. Per-entry
//! sketches are commutative monoids over the entry multiset (max
//! registers, integer counts, fixed-point sums), and every order-dependent
//! statistic runs on the single released stream — so the report is
//! byte-identical at any shard count.

use crate::coord::Coordinator;
use crate::fixed::LogMoments;
use crate::hll::HyperLogLog;
use crate::quantile::LogQuantileSketch;
use crate::report::{
    ConcurrencySummary, MemoryFootprint, StreamAccounting, StreamReport, StreamSummary,
};
use crate::sketch::Sketch;
use crate::topk::SpaceSaving;
use lsw_stats::paper;
use lsw_stats::par::Parallelism;
use lsw_trace::event::LogEntry;
use lsw_trace::ltc;
use lsw_trace::sanitize::{classify, RejectReason};
use lsw_trace::wms;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// All knobs of the streaming engine.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Session idle timeout in seconds (paper: 1500).
    pub timeout: f64,
    /// Collection horizon; `None` infers `max stop + 1` like the batch CLI
    /// (with an inferred horizon the two horizon-dependent reject rules
    /// can never fire, in either mode).
    pub horizon: Option<u32>,
    /// Parallel parse shards (also the sketch merge fan-in).
    pub shards: usize,
    /// HyperLogLog precision (2^p registers per estimator).
    pub hll_precision: u8,
    /// Bottom-k client sample capacity.
    pub sample_k: usize,
    /// SpaceSaving counter capacity (ASes / countries / objects).
    pub topk_capacity: usize,
    /// Bytes per read chunk of the line reader.
    pub chunk_bytes: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            timeout: paper::SESSION_TIMEOUT_SECS,
            horizon: None,
            shards: Parallelism::auto().threads(),
            hll_precision: 14,
            sample_k: 1 << 15,
            topk_capacity: 4096,
            chunk_bytes: 4 << 20,
        }
    }
}

impl StreamConfig {
    /// Scales sketch sizes down to fit a memory budget (bytes).
    ///
    /// The budget governs *sketch* memory: the client sample (the largest
    /// consumer, ~128 bytes per sampled client: a half-loaded slot table
    /// preallocated at its k-determined capacity plus the threshold heap),
    /// the per-shard HyperLogLogs and the read chunk. The look-ahead heap
    /// and active-session map are workload-bounded (one look-ahead window
    /// / one timeout window of state), not budget-bounded.
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        // Half the budget to the client sample at ~128 B/client.
        self.sample_k = ((bytes / 2) / 128).clamp(1 << 10, 1 << 20);
        // A quarter to the HLL pair replicated per shard.
        while self.hll_precision > 10
            && self.shards * 2 * (1usize << self.hll_precision) > bytes / 4
        {
            self.hll_precision -= 1;
        }
        // Keep the read chunk inside an eighth of the budget.
        self.chunk_bytes = self.chunk_bytes.min((bytes / 8).max(64 << 10));
        self
    }
}

/// Order-insensitive per-entry sketches owned by one parse shard.
#[derive(Debug, Clone)]
pub struct ShardSketches {
    /// Distinct clients (Table 1 "total # of users").
    pub clients: HyperLogLog,
    /// Distinct client IPs.
    pub ips: HyperLogLog,
    /// Transfer-length log-moments (display-transformed durations).
    pub length_moments: LogMoments,
    /// Transfer-length quantile sketch.
    pub length_quant: LogQuantileSketch,
    /// Total bytes served.
    pub bytes_total: u64,
    /// Transfers with average bandwidth under the congestion threshold.
    pub congested: u64,
    /// Entries parsed (pre-sanitization), the batch `examined` count.
    pub parsed: u64,
    /// Entries kept after the §2.4 rules.
    pub kept: u64,
    /// Lines that failed to parse.
    pub malformed: u64,
    /// First malformed-line error, for diagnostics.
    pub first_malformed: Option<String>,
    /// §2.4 rejects, indexed by [`reason_index`].
    pub rejects: [u64; 5],
    /// Transfers per AS.
    pub as_top: SpaceSaving<u16>,
    /// Transfers per country.
    pub country_top: SpaceSaving<[u8; 2]>,
    /// Transfers per object.
    pub object_top: SpaceSaving<u16>,
}

/// Stable index of a reject reason inside [`ShardSketches::rejects`].
pub fn reason_index(r: RejectReason) -> usize {
    match r {
        RejectReason::SpansTracePeriod => 0,
        RejectReason::StartsBeyondHorizon => 1,
        RejectReason::InconsistentTimestamps => 2,
        RejectReason::FailedStatus => 3,
        RejectReason::MalformedStats => 4,
    }
}

/// The reason at each [`reason_index`] slot.
pub const REASONS: [RejectReason; 5] = [
    RejectReason::SpansTracePeriod,
    RejectReason::StartsBeyondHorizon,
    RejectReason::InconsistentTimestamps,
    RejectReason::FailedStatus,
    RejectReason::MalformedStats,
];

impl ShardSketches {
    fn new(cfg: &StreamConfig) -> Self {
        Self {
            clients: HyperLogLog::new(cfg.hll_precision),
            ips: HyperLogLog::new(cfg.hll_precision),
            length_moments: LogMoments::new(),
            length_quant: LogQuantileSketch::new(),
            bytes_total: 0,
            congested: 0,
            parsed: 0,
            kept: 0,
            malformed: 0,
            first_malformed: None,
            rejects: [0; 5],
            as_top: SpaceSaving::new(cfg.topk_capacity),
            country_top: SpaceSaving::new(cfg.topk_capacity.min(1024)),
            object_top: SpaceSaving::new(cfg.topk_capacity.min(1024)),
        }
    }

    /// Folds one kept entry into every per-entry sketch.
    fn observe(&mut self, e: &LogEntry) {
        self.observe_hashed(e, crate::sketch::hash64(u64::from(e.client.0)));
    }

    /// [`observe`](Self::observe) with the client hash already computed —
    /// the fused direct path shares one hash per entry between the shard
    /// HLL and the coordinator's client-keyed structures.
    fn observe_hashed(&mut self, e: &LogEntry, client_hash: u64) {
        self.kept += 1;
        self.clients.insert_hash(client_hash);
        self.ips.insert_key(u64::from(e.ip.0));
        let disp = e.display_duration();
        self.length_moments.insert(disp);
        self.length_quant.insert_value(disp);
        self.bytes_total += e.bytes;
        // Same predicate as the batch transfer layer's 20 kbit/s bound.
        self.congested += u64::from(f64::from(e.avg_bandwidth) < 20_000.0);
        self.as_top.insert_key(&e.as_id.0);
        self.country_top.insert_key(&e.country.0);
        self.object_top.insert_key(&e.object.0);
    }

    /// Folds `other` into `self`; called in shard-index order.
    fn merge(&mut self, other: &Self) {
        self.clients.merge(&other.clients);
        self.ips.merge(&other.ips);
        self.length_moments.merge(&other.length_moments);
        self.length_quant.merge(&other.length_quant);
        self.bytes_total += other.bytes_total;
        self.congested += other.congested;
        self.parsed += other.parsed;
        self.kept += other.kept;
        self.malformed += other.malformed;
        if self.first_malformed.is_none() {
            self.first_malformed.clone_from(&other.first_malformed);
        }
        for (a, b) in self.rejects.iter_mut().zip(&other.rejects) {
            *a += b;
        }
        self.as_top.merge(&other.as_top);
        self.country_top.merge(&other.country_top);
        self.object_top.merge(&other.object_top);
    }

    /// Approximate resident bytes of this shard's sketches.
    pub fn bytes(&self) -> usize {
        self.clients.bytes()
            + self.ips.bytes()
            + self.length_moments.bytes()
            + self.length_quant.bytes()
            + self.as_top.bytes()
            + self.country_top.bytes()
            + self.object_top.bytes()
    }
}

/// Heap key ordering entries by `(start, timestamp, line)`.
#[derive(Debug, Clone, Copy)]
struct Pending {
    start: u32,
    timestamp: u32,
    line: u64,
    entry: LogEntry,
}

// The line number is unique, so the key triple is a total order; the
// payload entry never participates in comparisons.
impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        (self.start, self.timestamp, self.line) == (other.start, other.timestamp, other.line)
    }
}

impl Eq for Pending {}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.start, self.timestamp, self.line).cmp(&(other.start, other.timestamp, other.line))
    }
}

/// The one-pass streaming characterization engine.
///
/// Feed it text with [`ingest_read`](Self::ingest_read) (any `Read`) or
/// [`ingest_str`](Self::ingest_str), then call
/// [`finalize`](Self::finalize) for the [`StreamReport`].
#[derive(Debug)]
pub struct StreamAnalyzer {
    cfg: StreamConfig,
    shards: Vec<ShardSketches>,
    heap: BinaryHeap<Reverse<Pending>>,
    coord: Coordinator,
    lines_total: u64,
    next_line: u64,
    max_start: u32,
    max_ts: u32,
    max_dur: u32,
    /// Max stop over *parsed* entries — the batch CLI's inferred horizon
    /// is this plus one.
    max_stop_parsed: u32,
    peak_heap: usize,
    peak_active: usize,
    corrupt_blocks: u64,
    corrupt_records: u64,
    first_corrupt: Option<String>,
    /// Reusable chunk scratch: byte offsets `(start, end)` of each line
    /// in the chunk being ingested (allocation survives across chunks).
    line_offsets: Vec<(usize, usize)>,
    /// Reusable per-shard kept-entry buffers: shard `i` parses into
    /// `kept_scratch[i]`, keeping its capacity from chunk to chunk.
    kept_scratch: Vec<Vec<Pending>>,
    /// Reusable merged release buffer for the sort-based release.
    release_scratch: Vec<Pending>,
}

impl StreamAnalyzer {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: StreamConfig) -> Self {
        let shards = (0..cfg.shards.max(1))
            .map(|_| ShardSketches::new(&cfg))
            .collect();
        let coord = Coordinator::new(cfg.timeout, cfg.sample_k);
        Self {
            cfg,
            shards,
            heap: BinaryHeap::new(),
            coord,
            lines_total: 0,
            next_line: 1,
            max_start: 0,
            max_ts: 0,
            max_dur: 0,
            max_stop_parsed: 0,
            peak_heap: 0,
            peak_active: 0,
            corrupt_blocks: 0,
            corrupt_records: 0,
            first_corrupt: None,
            line_offsets: Vec::new(),
            kept_scratch: Vec::new(),
            release_scratch: Vec::new(),
        }
    }

    /// Streams a whole reader through the engine in bounded memory.
    pub fn ingest_read<R: std::io::Read>(&mut self, reader: R) -> std::io::Result<()> {
        for chunk in wms::LineChunks::new(reader, self.cfg.chunk_bytes) {
            let chunk = chunk?;
            self.ingest_chunk(&chunk.bytes, chunk.first_line as u64);
        }
        Ok(())
    }

    /// Ingests in-memory text (tests, small logs).
    pub fn ingest_str(&mut self, text: &str) {
        let first = self.next_line;
        self.ingest_chunk(text.as_bytes(), first);
    }

    /// Widens the look-ahead window to at least `max_duration` seconds.
    ///
    /// The reorder heap releases an entry once no future arrival can
    /// precede it, inferring the window from the longest duration *seen
    /// so far* — so an entry whose duration breaks the running record can
    /// arrive late and be clamped. A tap that knows the longest transfer
    /// it will ever deliver (e.g. `lsw-replay`, which extracted the whole
    /// schedule) can declare it upfront and make the release exact.
    pub fn preset_lookahead(&mut self, max_duration: u32) {
        self.max_dur = self.max_dur.max(max_duration);
    }

    /// Ingests one already-decoded entry — the tap entry point for live
    /// sources (the `lsw-replay` serving harness feeds each completed
    /// transfer here as its connection drains). The entry flows through
    /// the same §2.4 classification, shard sketches, and look-ahead
    /// reorder heap as the text path, so a tap stream and the equivalent
    /// log text produce the same report. The watermark release runs after
    /// every entry; when feeding many at once, prefer
    /// [`ingest_entries`](Self::ingest_entries), which batches it.
    pub fn ingest_entry(&mut self, e: &LogEntry) {
        self.tap_entry(e);
        self.peak_heap = self.peak_heap.max(self.heap.len());
        self.release_below_watermark(false);
        self.peak_active = self.peak_active.max(self.coord.peak_active_sessions());
    }

    /// Ingests a batch of already-decoded entries (see
    /// [`ingest_entry`](Self::ingest_entry)), deferring the look-ahead
    /// watermark release to the end of the batch — the same cadence the
    /// text path uses per chunk.
    pub fn ingest_entries<'a, I: IntoIterator<Item = &'a LogEntry>>(&mut self, entries: I) {
        for e in entries {
            self.tap_entry(e);
        }
        self.peak_heap = self.peak_heap.max(self.heap.len());
        self.release_below_watermark(false);
        self.peak_active = self.peak_active.max(self.coord.peak_active_sessions());
    }

    /// Classifies and enqueues one decoded entry (shared tap plumbing;
    /// callers handle the watermark release and peak accounting).
    fn tap_entry(&mut self, e: &LogEntry) {
        let line = self.next_line;
        self.next_line += 1;
        self.lines_total += 1;
        let shard = &mut self.shards[0];
        shard.parsed += 1;
        self.max_stop_parsed = self.max_stop_parsed.max(e.stop());
        match classify(e, self.cfg.horizon.unwrap_or(u32::MAX)) {
            Some(r) => shard.rejects[reason_index(r)] += 1,
            None => {
                shard.observe(e);
                self.max_start = self.max_start.max(e.start);
                self.max_ts = self.max_ts.max(e.timestamp);
                self.max_dur = self.max_dur.max(e.duration);
                self.heap.push(Reverse(Pending {
                    start: e.start,
                    timestamp: e.timestamp,
                    line,
                    entry: *e,
                }));
            }
        }
    }

    /// Streams an in-memory `ltc` container image through the engine.
    pub fn ingest_ltc_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.ingest_ltc(ltc::SliceSource::new(bytes))
    }

    /// Streams an `ltc` file through the engine in bounded memory (one
    /// round of blocks resident at a time).
    pub fn ingest_ltc_path(&mut self, path: &std::path::Path) -> std::io::Result<()> {
        self.ingest_ltc(ltc::FileSource::open(path)?)
    }

    /// Streams any [`ltc::BlockSource`] through the engine.
    ///
    /// Blocks fan out to the parse shards in rounds — block `k` of a round
    /// decodes into shard `k`'s sketches — and each round merges back in
    /// shard-index (= file block) order, with a watermark release after
    /// every block so the heap evolution is invariant to the shard count.
    /// Containers whose footer certifies `(start, timestamp)` order skip
    /// the look-ahead heap entirely and feed the coordinator directly.
    /// Corrupt blocks are counted and skipped, never fatal; only source
    /// I/O failures and a non-`ltc` header abort the ingest.
    pub fn ingest_ltc<S: ltc::BlockSource>(&mut self, mut src: S) -> std::io::Result<()> {
        let index = ltc::read_index(&mut src)?;
        // A sorted container releases in record order with no look-ahead —
        // exactly what the heap would emit — so bypass it unless entries
        // from an earlier text ingest are still pending.
        let direct = index.sorted && self.heap.is_empty();
        let n_shards = self.cfg.shards.max(1);
        let mut bufs: Vec<Vec<u8>> = vec![Vec::new(); n_shards];
        let mut scratch: Vec<ltc::RecordBlock> = vec![ltc::RecordBlock::default(); n_shards];
        let mut block_no = 0usize;
        let mut ordinal = self.lines_total;
        for round in index.blocks.chunks(n_shards) {
            // Sequentially lend each block's raw bytes into a per-worker
            // buffer (one memcpy; the source owns at most one view).
            for (buf, meta) in bufs.iter_mut().zip(round) {
                let len = ltc::BLOCK_HEADER_LEN + meta.payload_len as usize;
                buf.clear();
                buf.extend_from_slice(src.view(meta.offset, len)?);
            }
            // Fused fast path: a sorted container on a single-block round
            // releases in record order anyway, so decode, classify,
            // observe and coordinate in one pass — no intermediate buffer
            // of kept entries to fill and drain again in the same order.
            if direct && round.len() == 1 {
                let meta = round[0];
                ordinal += u64::from(meta.n_records);
                self.lines_total += u64::from(meta.n_records);
                match self.process_ltc_block_direct(&bufs[0], meta, &mut scratch[0]) {
                    Err(what) => {
                        self.corrupt_blocks += 1;
                        self.corrupt_records += u64::from(meta.n_records);
                        if self.first_corrupt.is_none() {
                            self.first_corrupt = Some(format!("block {block_no}: {what}"));
                        }
                    }
                    Ok(max_stop) => self.max_stop_parsed = self.max_stop_parsed.max(max_stop),
                }
                block_no += 1;
                self.peak_active = self.peak_active.max(self.coord.peak_active_sessions());
                continue;
            }
            let mut firsts = Vec::with_capacity(round.len());
            for meta in round {
                firsts.push(ordinal + 1);
                ordinal += u64::from(meta.n_records);
            }
            let horizon = self.cfg.horizon;
            type BlockOut = Result<(Vec<(u64, LogEntry)>, u32), &'static str>;
            let outputs: Vec<BlockOut> = if round.len() == 1 {
                vec![decode_ltc_block(
                    &bufs[0],
                    round[0],
                    firsts[0],
                    horizon,
                    &mut self.shards[0],
                    &mut scratch[0],
                )]
            } else {
                crossbeam::thread::scope(|s| {
                    let handles: Vec<_> = self
                        .shards
                        .iter_mut()
                        .zip(bufs.iter())
                        .zip(scratch.iter_mut())
                        .zip(round.iter().zip(&firsts))
                        .map(|(((shard, buf), block), (meta, &first))| {
                            s.spawn(move || {
                                decode_ltc_block(buf, *meta, first, horizon, shard, block)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| match h.join() {
                            Ok(out) => out,
                            Err(payload) => std::panic::resume_unwind(payload),
                        })
                        .collect::<Vec<_>>()
                })
            };

            for (out, meta) in outputs.into_iter().zip(round) {
                self.lines_total += u64::from(meta.n_records);
                match out {
                    Err(what) => {
                        self.corrupt_blocks += 1;
                        self.corrupt_records += u64::from(meta.n_records);
                        if self.first_corrupt.is_none() {
                            self.first_corrupt = Some(format!("block {block_no}: {what}"));
                        }
                    }
                    Ok((kept, max_stop)) => {
                        self.max_stop_parsed = self.max_stop_parsed.max(max_stop);
                        for (line, e) in kept {
                            self.max_start = self.max_start.max(e.start);
                            self.max_ts = self.max_ts.max(e.timestamp);
                            self.max_dur = self.max_dur.max(e.duration);
                            if direct {
                                self.coord.process(&e);
                            } else {
                                self.heap.push(Reverse(Pending {
                                    start: e.start,
                                    timestamp: e.timestamp,
                                    line,
                                    entry: e,
                                }));
                            }
                        }
                        if !direct {
                            self.peak_heap = self.peak_heap.max(self.heap.len());
                            self.release_below_watermark(true);
                        }
                    }
                }
                block_no += 1;
            }
            self.peak_active = self.peak_active.max(self.coord.peak_active_sessions());
        }
        self.next_line = ordinal + 1;
        Ok(())
    }

    /// Decodes one raw block and feeds kept records straight into the
    /// coordinator — the fused path for a sorted container, where the
    /// per-block merge buffer would only be drained again in the same
    /// order. Returns the block's max stop, or the corruption reason.
    fn process_ltc_block_direct(
        &mut self,
        raw: &[u8],
        meta: ltc::BlockMeta,
        block: &mut ltc::RecordBlock,
    ) -> Result<u32, &'static str> {
        let header = ltc::parse_block_header(raw).ok_or("truncated block header")?;
        if header.payload_len != meta.payload_len || header.n_records != meta.n_records {
            return Err("block header disagrees with index");
        }
        let payload = &raw[ltc::BLOCK_HEADER_LEN..];
        if !ltc::decode_block(payload, header, block) {
            return Err("crc mismatch or undecodable columns");
        }
        let shard = &mut self.shards[0];
        shard.parsed += block.len() as u64;
        let classify_horizon = self.cfg.horizon.unwrap_or(u32::MAX);
        let mut max_stop = 0u32;
        for e in block.entries() {
            max_stop = max_stop.max(e.stop());
            match classify(&e, classify_horizon) {
                Some(r) => shard.rejects[reason_index(r)] += 1,
                None => {
                    let h = crate::sketch::hash64(u64::from(e.client.0));
                    shard.observe_hashed(&e, h);
                    self.max_start = self.max_start.max(e.start);
                    self.max_ts = self.max_ts.max(e.timestamp);
                    self.max_dur = self.max_dur.max(e.duration);
                    self.coord.process_hashed(&e, h);
                }
            }
        }
        Ok(max_stop)
    }

    /// Pops every heap entry strictly below the look-ahead watermark into
    /// the coordinator.
    ///
    /// The watermark is the tightest start no future entry can undercut.
    /// Text logs are start-ordered, so `max_start` is a valid bound and
    /// keeps the heap at one start cohort. A live tap delivers entries in
    /// *completion* order, where `max_start` is no bound at all (a long
    /// transfer completes after — but starts before — many short ones), so
    /// tap callers rely only on the stop-order bound `max_ts − max_dur`.
    fn release_below_watermark(&mut self, start_ordered: bool) {
        let lookahead = self.max_ts.saturating_sub(self.max_dur);
        let watermark = if start_ordered {
            self.max_start.max(lookahead)
        } else {
            lookahead
        };
        while self
            .heap
            .peek()
            .is_some_and(|Reverse(p)| p.start < watermark)
        {
            let Some(Reverse(p)) = self.heap.pop() else {
                break;
            };
            self.coord.process(&p.entry);
        }
    }

    fn ingest_chunk(&mut self, text: &[u8], first_line: u64) {
        // Line boundaries as byte offsets into `text`, in a scratch buffer
        // whose allocation survives across chunks — the shard handoff
        // never materializes a fresh `Vec<&[u8]>` per chunk.
        let base = text.as_ptr() as usize;
        self.line_offsets.clear();
        // lsw::allow(L009): cleared above; holds at most one offset pair per chunk line
        self.line_offsets.extend(wms::byte_lines(text).map(|l| {
            let s = l.as_ptr() as usize - base;
            (s, s + l.len())
        }));
        let n_lines = self.line_offsets.len();
        self.lines_total += n_lines as u64;
        self.next_line = first_line + n_lines as u64;
        if n_lines == 0 {
            return;
        }

        let ranges = Parallelism::fixed(self.cfg.shards.max(1)).chunk_ranges(n_lines);
        if self.kept_scratch.len() < ranges.len() {
            self.kept_scratch.resize_with(ranges.len(), Vec::new);
        }
        let horizon = self.cfg.horizon;
        // Each worker parses a contiguous sub-range into shard `i`'s
        // sketches and its reusable kept buffer, in input order.
        let stats: Vec<RangeStats> = if ranges.len() == 1 {
            let kept = &mut self.kept_scratch[0];
            kept.clear();
            vec![parse_range(
                text,
                &self.line_offsets[ranges[0].clone()],
                first_line + ranges[0].start as u64,
                horizon,
                &mut self.shards[0],
                kept,
            )]
        } else {
            let line_offsets = &self.line_offsets;
            crossbeam::thread::scope(|s| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(self.kept_scratch.iter_mut())
                    .zip(ranges.iter().cloned())
                    .map(|((shard, kept), range)| {
                        s.spawn(move || {
                            kept.clear();
                            let first = first_line + range.start as u64;
                            parse_range(text, &line_offsets[range], first, horizon, shard, kept)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(out) => out,
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect::<Vec<_>>()
            })
        };

        for st in stats {
            self.max_stop_parsed = self.max_stop_parsed.max(st.max_stop);
            self.max_start = self.max_start.max(st.max_start);
            self.max_ts = self.max_ts.max(st.max_ts);
            self.max_dur = self.max_dur.max(st.max_dur);
        }
        // Concatenate the shard outputs in shard order (= line order) and
        // release through the sort path.
        self.release_scratch.clear();
        for i in 0..ranges.len() {
            self.release_scratch
                .extend_from_slice(&self.kept_scratch[i]);
        }
        self.release_batch();
    }

    /// Releases a freshly parsed batch below the look-ahead watermark.
    ///
    /// Equivalent to pushing every entry through the heap and popping
    /// below the watermark, but without paying a full-depth heap sift per
    /// entry: the batch is sorted by the heap key — text logs arrive
    /// nearly start-ordered, so the pattern-defeating sort runs close to
    /// linear — then merged with any still-pending heap entries in
    /// `(start, timestamp, line)` order. Only the batch tail (the final
    /// look-ahead cohort) enters the heap.
    fn release_batch(&mut self) {
        self.release_scratch.sort_unstable_by(|a, b| {
            (a.start, a.timestamp, a.line).cmp(&(b.start, b.timestamp, b.line))
        });
        let lookahead = self.max_ts.saturating_sub(self.max_dur);
        let watermark = self.max_start.max(lookahead);
        let mut i = 0;
        while i < self.release_scratch.len() && self.release_scratch[i].start < watermark {
            let p = &self.release_scratch[i];
            // Pending heap entries that sort before this one release
            // first, preserving the exact single-heap order.
            while self.heap.peek().is_some_and(|Reverse(h)| h < p) {
                let Some(Reverse(h)) = self.heap.pop() else {
                    break;
                };
                self.coord.process(&h.entry);
            }
            self.coord.process(&p.entry);
            i += 1;
        }
        // Leftover heap entries below the watermark sort after every
        // entry released above; the batch tail joins the heap.
        self.release_below_watermark(true);
        for p in &self.release_scratch[i..] {
            self.heap.push(Reverse(*p));
        }
        self.peak_heap = self.peak_heap.max(self.heap.len());
        self.peak_active = self.peak_active.max(self.coord.peak_active_sessions());
    }

    /// Ends the stream and assembles the report.
    pub fn finalize(mut self) -> StreamReport {
        while let Some(Reverse(p)) = self.heap.pop() {
            self.coord.process(&p.entry);
        }
        let horizon = self
            .cfg
            .horizon
            .unwrap_or_else(|| self.max_stop_parsed.saturating_add(1));
        let (underload_time, underload_transfers) = self.coord.finish(horizon);

        // Merge shard sketches in shard-index order.
        let mut shards = self.shards.into_iter();
        // lsw::allow(L005): the constructor always allocates >= 1 shard
        let mut merged = shards.next().expect("at least one shard");
        for s in shards {
            merged.merge(&s);
        }

        let mut rejects: Vec<(RejectReason, u64)> = REASONS
            .iter()
            .zip(merged.rejects)
            .filter(|&(_, n)| n > 0)
            .map(|(&r, n)| (r, n))
            .collect();
        // Batch order: descending count.
        rejects.sort_by_key(|&(_, n)| Reverse(n));

        let sketch_bytes = merged.bytes() + self.coord.bytes();
        let coord = &self.coord;
        let sample = &coord.sample;
        let iat_tail = lsw_stats::fit::two_regime_tail(
            &coord.iat_quant.ccdf_points(),
            paper::TRANSFER_IAT_REGIME_BOUNDARY,
            2.0,
        )
        .ok();
        let country_total = merged.country_top.total().max(1);
        let top_countries: Vec<(String, f64)> = merged
            .country_top
            .top()
            .into_iter()
            .map(|(code, c)| {
                // lsw::allow(L006): once per finalize, bounded by top-k capacity
                let code = std::str::from_utf8(&code).unwrap_or("??").to_string();
                (code, c.count as f64 / country_total as f64)
            })
            .collect();

        StreamReport {
            session_timeout: self.cfg.timeout,
            shards: self.cfg.shards,
            summary: StreamSummary {
                horizon,
                days: f64::from(horizon) / 86_400.0,
                users: merged.clients.count(),
                client_ips: merged.ips.count(),
                client_ases: merged.as_top.len() as u64,
                countries: merged.country_top.len() as u64,
                objects: merged.object_top.len() as u64,
                transfers: merged.kept,
                terabytes: merged.bytes_total as f64 / f64::powi(2.0, 40),
            },
            accounting: StreamAccounting {
                lines_total: self.lines_total,
                malformed_lines: merged.malformed,
                first_malformed: merged.first_malformed,
                late_entries: coord.late_entries,
                corrupt_blocks: self.corrupt_blocks,
                corrupt_records: self.corrupt_records,
                first_corrupt: self.first_corrupt,
                examined: merged.parsed,
                kept: merged.kept,
                rejects,
                underload_time_fraction: underload_time,
                underload_transfer_fraction: underload_transfers,
            },
            n_sessions: coord.n_sessions,
            interest_transfers: sample.transfers_zipf(),
            interest_sessions: sample.sessions_zipf(),
            sample_clients: sample.len() as u64,
            sample_fraction: sample.sample_fraction(),
            on_fit: coord.on_moments.lognormal(),
            on_quantiles: coord.on_quant.estimate(),
            off_mean: sample.off_mean().map(|(m, _)| m),
            off_gaps: sample.off_mean().map_or(0, |(_, n)| n),
            tps_fit: lsw_stats::fit::fit_zipf_points(&coord.tps_points(), Some(50.0)).ok(),
            intra_iat_fit: coord.intra_moments.lognormal(),
            transfer_length_fit: merged.length_moments.lognormal(),
            transfer_length_quantiles: merged.length_quant.estimate(),
            iat_tail,
            congestion_bound_fraction: if merged.kept == 0 {
                0.0
            } else {
                merged.congested as f64 / merged.kept as f64
            },
            top_ases: merged
                .as_top
                .top()
                .into_iter()
                .take(10)
                .map(|(id, c)| (id, c.count))
                .collect(),
            top_countries,
            concurrency: ConcurrencySummary {
                peak: coord.conc.peak(),
                mean: coord.conc.mean(horizon),
                marginal: coord.conc.marginal(),
                daily_fold: coord.conc.daily_fold(),
            },
            memory: MemoryFootprint {
                sketch_bytes: sketch_bytes as u64,
                peak_heap_entries: self.peak_heap as u64,
                peak_active_sessions: self.peak_active.max(coord.peak_active_sessions()) as u64,
            },
        }
    }
}

/// Parses one contiguous line range into `shard`, returning kept entries
/// in input order plus the max parsed stop time (for horizon inference).
///
/// Lines are raw bytes and go straight through the zero-copy scanner
/// ([`wms::parse_line_bytes`]) — no `String` is ever materialized on this
/// path.
/// Per-sub-range maxima folded back into the analyzer after a parallel
/// parse pass.
#[derive(Default)]
struct RangeStats {
    max_stop: u32,
    max_start: u32,
    max_ts: u32,
    max_dur: u32,
}

fn parse_range(
    text: &[u8],
    offsets: &[(usize, usize)],
    first_line: u64,
    horizon: Option<u32>,
    shard: &mut ShardSketches,
    kept: &mut Vec<Pending>,
) -> RangeStats {
    let mut st = RangeStats::default();
    // With an inferred horizon the two horizon rules cannot fire (every
    // duration and start is below `max stop + 1`), which `u32::MAX`
    // reproduces without knowing the maximum in advance.
    let classify_horizon = horizon.unwrap_or(u32::MAX);
    for (i, &(s, e)) in offsets.iter().enumerate() {
        let line_no = first_line + i as u64;
        let raw = text[s..e].trim_ascii();
        if raw.is_empty() || raw[0] == b'#' {
            continue;
        }
        match wms::parse_line_bytes(raw) {
            Ok(entry) => {
                shard.parsed += 1;
                st.max_stop = st.max_stop.max(entry.stop());
                match classify(&entry, classify_horizon) {
                    Some(r) => shard.rejects[reason_index(r)] += 1,
                    None => {
                        shard.observe(&entry);
                        st.max_start = st.max_start.max(entry.start);
                        st.max_ts = st.max_ts.max(entry.timestamp);
                        st.max_dur = st.max_dur.max(entry.duration);
                        kept.push(Pending {
                            start: entry.start,
                            timestamp: entry.timestamp,
                            line: line_no,
                            entry,
                        });
                    }
                }
            }
            Err(mut err) => {
                shard.malformed += 1;
                if shard.first_malformed.is_none() {
                    err.line = line_no as usize;
                    // lsw::allow(L006): first malformed line only, guarded above
                    shard.first_malformed = Some(err.to_string());
                }
            }
        }
    }
    st
}

/// Kept entries in record order, tagged with 1-based record ordinals,
/// plus the block's max stop time.
type DecodedBlock = (Vec<(u64, LogEntry)>, u32);

/// Decodes one raw `ltc` block (header + payload bytes) into `block`,
/// classifies every record and folds kept entries into `shard`; returns
/// kept entries in record order (tagged with 1-based record ordinals from
/// `first_record`) plus the block's max stop, or the corruption reason.
fn decode_ltc_block(
    raw: &[u8],
    meta: ltc::BlockMeta,
    first_record: u64,
    horizon: Option<u32>,
    shard: &mut ShardSketches,
    block: &mut ltc::RecordBlock,
) -> Result<DecodedBlock, &'static str> {
    let header = ltc::parse_block_header(raw).ok_or("truncated block header")?;
    if header.payload_len != meta.payload_len || header.n_records != meta.n_records {
        return Err("block header disagrees with index");
    }
    let payload = &raw[ltc::BLOCK_HEADER_LEN..];
    if !ltc::decode_block(payload, header, block) {
        return Err("crc mismatch or undecodable columns");
    }
    shard.parsed += block.len() as u64;
    let classify_horizon = horizon.unwrap_or(u32::MAX);
    let mut kept = Vec::with_capacity(block.len());
    let mut max_stop = 0u32;
    for (i, e) in block.entries().enumerate() {
        max_stop = max_stop.max(e.stop());
        match classify(&e, classify_horizon) {
            Some(r) => shard.rejects[reason_index(r)] += 1,
            None => {
                shard.observe(&e);
                kept.push((first_record + i as u64, e));
            }
        }
    }
    Ok((kept, max_stop))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_entries() -> Vec<LogEntry> {
        (0..200u32)
            .map(|i| {
                lsw_trace::event::LogEntryBuilder::new()
                    .span(i * 20, (i % 9) + 1)
                    .client(lsw_trace::ids::ClientId(i % 17))
                    .transfer_stats(u64::from(i) * 100, 30_000 + i, 0.0)
                    .build()
            })
            .collect()
    }

    fn tiny_log() -> String {
        String::from_utf8(wms::format_log(&tiny_entries()).to_vec()).unwrap()
    }

    fn tiny_ltc(entries: &[LogEntry], block_records: usize) -> Vec<u8> {
        let mut out = Vec::new();
        let mut w = ltc::LtcWriter::with_block_records(&mut out, block_records).unwrap();
        for e in entries {
            w.push(e).unwrap();
        }
        w.finish().unwrap();
        out
    }

    #[test]
    fn shard_counts_produce_identical_reports() {
        let text = tiny_log();
        let mut reports = Vec::new();
        for shards in [1usize, 2, 8] {
            let mut a = StreamAnalyzer::new(StreamConfig {
                shards,
                ..StreamConfig::default()
            });
            a.ingest_str(&text);
            reports.push({
                let mut r = a.finalize();
                r.shards = 0; // neutralize the config echo before comparing
                r.to_json()
            });
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0], reports[2]);
    }

    #[test]
    fn tap_and_text_ingest_agree() {
        // The replay tap feeds decoded entries; the report must match
        // analyzing the equivalent log text (same sketches, same heap).
        // Text logs carry header/comment lines and their own release
        // cadence; neutralize the two fields that legitimately reflect
        // that (raw line count, peak heap) before comparing.
        fn neutral(mut r: crate::report::StreamReport) -> String {
            r.accounting.lines_total = 0;
            r.memory.peak_heap_entries = 0;
            r.to_json()
        }
        let entries = tiny_entries();
        let mut text = StreamAnalyzer::new(StreamConfig::default());
        text.ingest_str(&tiny_log());
        let text = neutral(text.finalize());

        let mut tap = StreamAnalyzer::new(StreamConfig::default());
        for batch in entries.chunks(37) {
            tap.ingest_entries(batch);
        }
        assert_eq!(text, neutral(tap.finalize()));

        // Per-entry feeding only changes the release cadence, never the
        // sketch contents or session accounting.
        let mut single = StreamAnalyzer::new(StreamConfig::default());
        for e in &entries {
            single.ingest_entry(e);
        }
        assert_eq!(text, neutral(single.finalize()));
    }

    #[test]
    fn malformed_lines_are_counted_not_fatal() {
        let mut text = tiny_log();
        text.push_str("this is not a log line\n");
        text.push_str("neither is this\n");
        let mut a = StreamAnalyzer::new(StreamConfig::default());
        a.ingest_str(&text);
        let r = a.finalize();
        assert_eq!(r.accounting.malformed_lines, 2);
        assert_eq!(r.accounting.kept, 200);
        assert!(r
            .accounting
            .first_malformed
            .as_deref()
            .unwrap()
            .contains("line"));
    }

    #[test]
    fn chunked_and_whole_ingest_agree() {
        let text = tiny_log();
        let mut whole = StreamAnalyzer::new(StreamConfig::default());
        whole.ingest_str(&text);
        let whole = whole.finalize();

        let mut chunked = StreamAnalyzer::new(StreamConfig {
            chunk_bytes: 4096,
            ..StreamConfig::default()
        });
        chunked
            .ingest_read(std::io::Cursor::new(text.as_bytes()))
            .expect("in-memory read");
        let mut chunked = chunked.finalize();
        let mut whole = whole;
        // The memory audit legitimately depends on chunking (smaller
        // chunks drain the look-ahead heap more often); the statistics
        // must not.
        whole.memory.peak_heap_entries = 0;
        chunked.memory.peak_heap_entries = 0;
        assert_eq!(whole.to_json(), chunked.to_json());
    }

    #[test]
    fn ltc_shard_counts_produce_identical_reports() {
        let image = tiny_ltc(&tiny_entries(), 32);
        let mut reports = Vec::new();
        for shards in [1usize, 2, 8] {
            let mut a = StreamAnalyzer::new(StreamConfig {
                shards,
                ..StreamConfig::default()
            });
            a.ingest_ltc_bytes(&image).expect("in-memory ltc");
            reports.push({
                let mut r = a.finalize();
                r.shards = 0; // neutralize the config echo before comparing
                r.to_json()
            });
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0], reports[2]);
    }

    #[test]
    fn ltc_and_wms_reports_agree() {
        let entries = tiny_entries();
        let mut text = StreamAnalyzer::new(StreamConfig::default());
        text.ingest_str(&tiny_log());
        let mut text = text.finalize();

        let mut bin = StreamAnalyzer::new(StreamConfig::default());
        bin.ingest_ltc_bytes(&tiny_ltc(&entries, 32)).unwrap();
        let mut bin = bin.finalize();

        // A sorted container bypasses the look-ahead heap, so only the
        // heap high-water audit may differ between the two formats; the
        // text side also counts its `#` header lines in `lines_total`.
        assert_eq!(bin.memory.peak_heap_entries, 0);
        text.memory.peak_heap_entries = 0;
        bin.memory.peak_heap_entries = 0;
        assert_eq!(text.accounting.lines_total, 203);
        assert_eq!(bin.accounting.lines_total, 200);
        text.accounting.lines_total = 0;
        bin.accounting.lines_total = 0;
        assert_eq!(text.to_json(), bin.to_json());
    }

    #[test]
    fn unsorted_ltc_takes_heap_path_and_agrees_with_text() {
        // Local disorder (adjacent swaps) clears the writer's sorted flag
        // and makes the heap genuinely reorder, while staying inside the
        // look-ahead bound so no release cadence can produce late entries.
        let mut entries = tiny_entries();
        for i in [50usize, 100, 150] {
            entries.swap(i, i + 1);
        }
        let text_src = String::from_utf8(wms::format_log(&entries).to_vec()).unwrap();
        let mut text = StreamAnalyzer::new(StreamConfig {
            shards: 3,
            ..StreamConfig::default()
        });
        text.ingest_str(&text_src);
        let mut text = text.finalize();

        let mut bin = StreamAnalyzer::new(StreamConfig {
            shards: 3,
            ..StreamConfig::default()
        });
        bin.ingest_ltc_bytes(&tiny_ltc(&entries, 32)).unwrap();
        let mut bin = bin.finalize();

        // Both sides re-order through the heap; release cadence (chunk vs
        // block) legitimately moves only the heap high-water audit, and
        // the text side counts its `#` header lines in `lines_total`.
        assert!(bin.memory.peak_heap_entries > 0, "heap path must engage");
        text.memory.peak_heap_entries = 0;
        bin.memory.peak_heap_entries = 0;
        text.accounting.lines_total = 0;
        bin.accounting.lines_total = 0;
        assert_eq!(text.to_json(), bin.to_json());
    }

    #[test]
    fn corrupt_ltc_block_is_counted_not_fatal() {
        let mut image = tiny_ltc(&tiny_entries(), 50);
        // Walk to the second block and flip one payload byte.
        let first_payload = u32::from_le_bytes(image[8..12].try_into().unwrap()) as usize;
        let second = 8 + ltc::BLOCK_HEADER_LEN + first_payload;
        image[second + ltc::BLOCK_HEADER_LEN + 3] ^= 0x40;
        let mut a = StreamAnalyzer::new(StreamConfig::default());
        a.ingest_ltc_bytes(&image)
            .expect("corruption is not an error");
        let r = a.finalize();
        assert_eq!(r.accounting.corrupt_blocks, 1);
        assert_eq!(r.accounting.corrupt_records, 50);
        assert_eq!(r.accounting.kept, 150);
        assert_eq!(r.accounting.lines_total, 200);
        let first = r.accounting.first_corrupt.as_deref().unwrap();
        assert!(first.contains("block 1"), "diagnostic was {first:?}");
        assert!(r.headline().contains("corrupt ltc blocks: 1"));
    }

    #[test]
    fn explicit_horizon_rejects_like_batch() {
        let text = tiny_log();
        let mut a = StreamAnalyzer::new(StreamConfig {
            horizon: Some(1_000),
            ..StreamConfig::default()
        });
        a.ingest_str(&text);
        let r = a.finalize();
        let beyond: u64 = r
            .accounting
            .rejects
            .iter()
            .filter(|(reason, _)| *reason == RejectReason::StartsBeyondHorizon)
            .map(|&(_, n)| n)
            .sum();
        assert!(beyond > 0, "entries past the horizon must be rejected");
        assert_eq!(r.accounting.examined, 200);
        assert_eq!(r.accounting.kept + r.accounting.rejected(), 200);
    }
}
