//! The streaming ingest engine: chunked parallel parse, look-ahead
//! re-ordering, sequential coordination.
//!
//! A WMS log line is written when a transfer *stops*, so a log is (at
//! best) stop-ordered while every order-dependent statistic wants
//! start-ordered entries. The engine restores start order with a bounded
//! look-ahead heap: an entry is released once no future line can precede
//! it, i.e. its start is below `max(max start seen, max timestamp seen −
//! max duration seen)`. For start-sorted logs (the generator's output) the
//! heap holds one start cohort; for stop-sorted logs it holds one
//! look-ahead window of entries. An entry that still arrives below the
//! released watermark — possible only when a duration exceeds every
//! duration seen before it — is clamped and *counted* (`late_entries`),
//! never dropped or fatal.
//!
//! Parallelism follows the PR 1 discipline: each chunk of lines is split
//! into contiguous sub-ranges, sub-range `i` feeds shard `i`'s sketches,
//! and shard states merge in shard-index order at the end. Per-entry
//! sketches are commutative monoids over the entry multiset (max
//! registers, integer counts, fixed-point sums), and every order-dependent
//! statistic runs on the single released stream — so the report is
//! byte-identical at any shard count.

use crate::coord::Coordinator;
use crate::fixed::LogMoments;
use crate::hll::HyperLogLog;
use crate::quantile::LogQuantileSketch;
use crate::report::{
    ConcurrencySummary, MemoryFootprint, StreamAccounting, StreamReport, StreamSummary,
};
use crate::sketch::Sketch;
use crate::topk::SpaceSaving;
use lsw_stats::paper;
use lsw_stats::par::Parallelism;
use lsw_trace::event::LogEntry;
use lsw_trace::sanitize::{classify, RejectReason};
use lsw_trace::wms;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// All knobs of the streaming engine.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Session idle timeout in seconds (paper: 1500).
    pub timeout: f64,
    /// Collection horizon; `None` infers `max stop + 1` like the batch CLI
    /// (with an inferred horizon the two horizon-dependent reject rules
    /// can never fire, in either mode).
    pub horizon: Option<u32>,
    /// Parallel parse shards (also the sketch merge fan-in).
    pub shards: usize,
    /// HyperLogLog precision (2^p registers per estimator).
    pub hll_precision: u8,
    /// Bottom-k client sample capacity.
    pub sample_k: usize,
    /// SpaceSaving counter capacity (ASes / countries / objects).
    pub topk_capacity: usize,
    /// Bytes per read chunk of the line reader.
    pub chunk_bytes: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            timeout: paper::SESSION_TIMEOUT_SECS,
            horizon: None,
            shards: Parallelism::auto().threads(),
            hll_precision: 14,
            sample_k: 1 << 15,
            topk_capacity: 4096,
            chunk_bytes: 4 << 20,
        }
    }
}

impl StreamConfig {
    /// Scales sketch sizes down to fit a memory budget (bytes).
    ///
    /// The budget governs *sketch* memory: the client sample (the largest
    /// consumer, ~128 bytes per sampled client: a half-loaded slot table
    /// preallocated at its k-determined capacity plus the threshold heap),
    /// the per-shard HyperLogLogs and the read chunk. The look-ahead heap
    /// and active-session map are workload-bounded (one look-ahead window
    /// / one timeout window of state), not budget-bounded.
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        // Half the budget to the client sample at ~128 B/client.
        self.sample_k = ((bytes / 2) / 128).clamp(1 << 10, 1 << 20);
        // A quarter to the HLL pair replicated per shard.
        while self.hll_precision > 10
            && self.shards * 2 * (1usize << self.hll_precision) > bytes / 4
        {
            self.hll_precision -= 1;
        }
        // Keep the read chunk inside an eighth of the budget.
        self.chunk_bytes = self.chunk_bytes.min((bytes / 8).max(64 << 10));
        self
    }
}

/// Order-insensitive per-entry sketches owned by one parse shard.
#[derive(Debug, Clone)]
pub struct ShardSketches {
    /// Distinct clients (Table 1 "total # of users").
    pub clients: HyperLogLog,
    /// Distinct client IPs.
    pub ips: HyperLogLog,
    /// Transfer-length log-moments (display-transformed durations).
    pub length_moments: LogMoments,
    /// Transfer-length quantile sketch.
    pub length_quant: LogQuantileSketch,
    /// Total bytes served.
    pub bytes_total: u64,
    /// Transfers with average bandwidth under the congestion threshold.
    pub congested: u64,
    /// Entries parsed (pre-sanitization), the batch `examined` count.
    pub parsed: u64,
    /// Entries kept after the §2.4 rules.
    pub kept: u64,
    /// Lines that failed to parse.
    pub malformed: u64,
    /// First malformed-line error, for diagnostics.
    pub first_malformed: Option<String>,
    /// §2.4 rejects, indexed by [`reason_index`].
    pub rejects: [u64; 5],
    /// Transfers per AS.
    pub as_top: SpaceSaving<u16>,
    /// Transfers per country.
    pub country_top: SpaceSaving<[u8; 2]>,
    /// Transfers per object.
    pub object_top: SpaceSaving<u16>,
}

/// Stable index of a reject reason inside [`ShardSketches::rejects`].
pub fn reason_index(r: RejectReason) -> usize {
    match r {
        RejectReason::SpansTracePeriod => 0,
        RejectReason::StartsBeyondHorizon => 1,
        RejectReason::InconsistentTimestamps => 2,
        RejectReason::FailedStatus => 3,
        RejectReason::MalformedStats => 4,
    }
}

/// The reason at each [`reason_index`] slot.
pub const REASONS: [RejectReason; 5] = [
    RejectReason::SpansTracePeriod,
    RejectReason::StartsBeyondHorizon,
    RejectReason::InconsistentTimestamps,
    RejectReason::FailedStatus,
    RejectReason::MalformedStats,
];

impl ShardSketches {
    fn new(cfg: &StreamConfig) -> Self {
        Self {
            clients: HyperLogLog::new(cfg.hll_precision),
            ips: HyperLogLog::new(cfg.hll_precision),
            length_moments: LogMoments::new(),
            length_quant: LogQuantileSketch::new(),
            bytes_total: 0,
            congested: 0,
            parsed: 0,
            kept: 0,
            malformed: 0,
            first_malformed: None,
            rejects: [0; 5],
            as_top: SpaceSaving::new(cfg.topk_capacity),
            country_top: SpaceSaving::new(cfg.topk_capacity.min(1024)),
            object_top: SpaceSaving::new(cfg.topk_capacity.min(1024)),
        }
    }

    /// Folds one kept entry into every per-entry sketch.
    fn observe(&mut self, e: &LogEntry) {
        self.kept += 1;
        self.clients.insert_key(u64::from(e.client.0));
        self.ips.insert_key(u64::from(e.ip.0));
        let disp = e.display_duration();
        self.length_moments.insert(disp);
        self.length_quant.insert_value(disp);
        self.bytes_total += e.bytes;
        // Same predicate as the batch transfer layer's 20 kbit/s bound.
        self.congested += u64::from(f64::from(e.avg_bandwidth) < 20_000.0);
        self.as_top.insert_key(&e.as_id.0);
        self.country_top.insert_key(&e.country.0);
        self.object_top.insert_key(&e.object.0);
    }

    /// Folds `other` into `self`; called in shard-index order.
    fn merge(&mut self, other: &Self) {
        self.clients.merge(&other.clients);
        self.ips.merge(&other.ips);
        self.length_moments.merge(&other.length_moments);
        self.length_quant.merge(&other.length_quant);
        self.bytes_total += other.bytes_total;
        self.congested += other.congested;
        self.parsed += other.parsed;
        self.kept += other.kept;
        self.malformed += other.malformed;
        if self.first_malformed.is_none() {
            self.first_malformed.clone_from(&other.first_malformed);
        }
        for (a, b) in self.rejects.iter_mut().zip(&other.rejects) {
            *a += b;
        }
        self.as_top.merge(&other.as_top);
        self.country_top.merge(&other.country_top);
        self.object_top.merge(&other.object_top);
    }

    /// Approximate resident bytes of this shard's sketches.
    pub fn bytes(&self) -> usize {
        self.clients.bytes()
            + self.ips.bytes()
            + self.length_moments.bytes()
            + self.length_quant.bytes()
            + self.as_top.bytes()
            + self.country_top.bytes()
            + self.object_top.bytes()
    }
}

/// Heap key ordering entries by `(start, timestamp, line)`.
#[derive(Debug, Clone)]
struct Pending {
    start: u32,
    timestamp: u32,
    line: u64,
    entry: LogEntry,
}

// The line number is unique, so the key triple is a total order; the
// payload entry never participates in comparisons.
impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        (self.start, self.timestamp, self.line) == (other.start, other.timestamp, other.line)
    }
}

impl Eq for Pending {}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.start, self.timestamp, self.line).cmp(&(other.start, other.timestamp, other.line))
    }
}

/// The one-pass streaming characterization engine.
///
/// Feed it text with [`ingest_read`](Self::ingest_read) (any `Read`) or
/// [`ingest_str`](Self::ingest_str), then call
/// [`finalize`](Self::finalize) for the [`StreamReport`].
#[derive(Debug)]
pub struct StreamAnalyzer {
    cfg: StreamConfig,
    shards: Vec<ShardSketches>,
    heap: BinaryHeap<Reverse<Pending>>,
    coord: Coordinator,
    lines_total: u64,
    next_line: u64,
    max_start: u32,
    max_ts: u32,
    max_dur: u32,
    /// Max stop over *parsed* entries — the batch CLI's inferred horizon
    /// is this plus one.
    max_stop_parsed: u32,
    peak_heap: usize,
    peak_active: usize,
}

impl StreamAnalyzer {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: StreamConfig) -> Self {
        let shards = (0..cfg.shards.max(1))
            .map(|_| ShardSketches::new(&cfg))
            .collect();
        let coord = Coordinator::new(cfg.timeout, cfg.sample_k);
        Self {
            cfg,
            shards,
            heap: BinaryHeap::new(),
            coord,
            lines_total: 0,
            next_line: 1,
            max_start: 0,
            max_ts: 0,
            max_dur: 0,
            max_stop_parsed: 0,
            peak_heap: 0,
            peak_active: 0,
        }
    }

    /// Streams a whole reader through the engine in bounded memory.
    pub fn ingest_read<R: std::io::Read>(&mut self, reader: R) -> std::io::Result<()> {
        for chunk in wms::LineChunks::new(reader, self.cfg.chunk_bytes) {
            let chunk = chunk?;
            self.ingest_chunk(&chunk.bytes, chunk.first_line as u64);
        }
        Ok(())
    }

    /// Ingests in-memory text (tests, small logs).
    pub fn ingest_str(&mut self, text: &str) {
        let first = self.next_line;
        self.ingest_chunk(text.as_bytes(), first);
    }

    fn ingest_chunk(&mut self, text: &[u8], first_line: u64) {
        let lines: Vec<&[u8]> = wms::byte_lines(text).collect();
        self.lines_total += lines.len() as u64;
        self.next_line = first_line + lines.len() as u64;
        if lines.is_empty() {
            return;
        }

        let ranges = Parallelism::fixed(self.cfg.shards.max(1)).chunk_ranges(lines.len());
        // Each worker parses a contiguous sub-range into shard `i`'s
        // sketches and returns kept entries in input order.
        let outputs: Vec<(Vec<(u64, LogEntry)>, u32)> = if ranges.len() == 1 {
            vec![parse_range(
                &lines,
                ranges[0].clone(),
                first_line,
                self.cfg.horizon,
                &mut self.shards[0],
            )]
        } else {
            crossbeam::thread::scope(|s| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(ranges.iter().cloned())
                    .map(|(shard, range)| {
                        let lines = &lines;
                        let horizon = self.cfg.horizon;
                        s.spawn(move || parse_range(lines, range, first_line, horizon, shard))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(out) => out,
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect::<Vec<_>>()
            })
        };

        // Push kept entries in input order (sub-range order), then release
        // everything below the look-ahead watermark.
        for (kept, max_stop) in outputs {
            self.max_stop_parsed = self.max_stop_parsed.max(max_stop);
            for (line, e) in kept {
                self.max_start = self.max_start.max(e.start);
                self.max_ts = self.max_ts.max(e.timestamp);
                self.max_dur = self.max_dur.max(e.duration);
                self.heap.push(Reverse(Pending {
                    start: e.start,
                    timestamp: e.timestamp,
                    line,
                    entry: e,
                }));
            }
        }
        self.peak_heap = self.peak_heap.max(self.heap.len());
        let watermark = self.max_start.max(self.max_ts.saturating_sub(self.max_dur));
        while self
            .heap
            .peek()
            .is_some_and(|Reverse(p)| p.start < watermark)
        {
            let Some(Reverse(p)) = self.heap.pop() else {
                break;
            };
            self.coord.process(&p.entry);
        }
        self.peak_active = self.peak_active.max(self.coord.peak_active_sessions());
    }

    /// Ends the stream and assembles the report.
    pub fn finalize(mut self) -> StreamReport {
        while let Some(Reverse(p)) = self.heap.pop() {
            self.coord.process(&p.entry);
        }
        let horizon = self
            .cfg
            .horizon
            .unwrap_or_else(|| self.max_stop_parsed.saturating_add(1));
        let (underload_time, underload_transfers) = self.coord.finish(horizon);

        // Merge shard sketches in shard-index order.
        let mut shards = self.shards.into_iter();
        // lsw::allow(L005): the constructor always allocates >= 1 shard
        let mut merged = shards.next().expect("at least one shard");
        for s in shards {
            merged.merge(&s);
        }

        let mut rejects: Vec<(RejectReason, u64)> = REASONS
            .iter()
            .zip(merged.rejects)
            .filter(|&(_, n)| n > 0)
            .map(|(&r, n)| (r, n))
            .collect();
        // Batch order: descending count.
        rejects.sort_by_key(|&(_, n)| Reverse(n));

        let sketch_bytes = merged.bytes() + self.coord.bytes();
        let coord = &self.coord;
        let sample = &coord.sample;
        let iat_tail = lsw_stats::fit::two_regime_tail(
            &coord.iat_quant.ccdf_points(),
            paper::TRANSFER_IAT_REGIME_BOUNDARY,
            2.0,
        )
        .ok();
        let country_total = merged.country_top.total().max(1);
        let top_countries: Vec<(String, f64)> = merged
            .country_top
            .top()
            .into_iter()
            .map(|(code, c)| {
                let code = std::str::from_utf8(&code).unwrap_or("??").to_string();
                (code, c.count as f64 / country_total as f64)
            })
            .collect();

        StreamReport {
            session_timeout: self.cfg.timeout,
            shards: self.cfg.shards,
            summary: StreamSummary {
                horizon,
                days: f64::from(horizon) / 86_400.0,
                users: merged.clients.count(),
                client_ips: merged.ips.count(),
                client_ases: merged.as_top.len() as u64,
                countries: merged.country_top.len() as u64,
                objects: merged.object_top.len() as u64,
                transfers: merged.kept,
                terabytes: merged.bytes_total as f64 / f64::powi(2.0, 40),
            },
            accounting: StreamAccounting {
                lines_total: self.lines_total,
                malformed_lines: merged.malformed,
                first_malformed: merged.first_malformed,
                late_entries: coord.late_entries,
                examined: merged.parsed,
                kept: merged.kept,
                rejects,
                underload_time_fraction: underload_time,
                underload_transfer_fraction: underload_transfers,
            },
            n_sessions: coord.n_sessions,
            interest_transfers: sample.transfers_zipf(),
            interest_sessions: sample.sessions_zipf(),
            sample_clients: sample.len() as u64,
            sample_fraction: sample.sample_fraction(),
            on_fit: coord.on_moments.lognormal(),
            on_quantiles: coord.on_quant.estimate(),
            off_mean: sample.off_mean().map(|(m, _)| m),
            off_gaps: sample.off_mean().map_or(0, |(_, n)| n),
            tps_fit: lsw_stats::fit::fit_zipf_points(&coord.tps_points(), Some(50.0)).ok(),
            intra_iat_fit: coord.intra_moments.lognormal(),
            transfer_length_fit: merged.length_moments.lognormal(),
            transfer_length_quantiles: merged.length_quant.estimate(),
            iat_tail,
            congestion_bound_fraction: if merged.kept == 0 {
                0.0
            } else {
                merged.congested as f64 / merged.kept as f64
            },
            top_ases: merged
                .as_top
                .top()
                .into_iter()
                .take(10)
                .map(|(id, c)| (id, c.count))
                .collect(),
            top_countries,
            concurrency: ConcurrencySummary {
                peak: coord.conc.peak(),
                mean: coord.conc.mean(horizon),
                marginal: coord.conc.marginal(),
                daily_fold: coord.conc.daily_fold(),
            },
            memory: MemoryFootprint {
                sketch_bytes: sketch_bytes as u64,
                peak_heap_entries: self.peak_heap as u64,
                peak_active_sessions: self.peak_active.max(coord.peak_active_sessions()) as u64,
            },
        }
    }
}

/// Parses one contiguous line range into `shard`, returning kept entries
/// in input order plus the max parsed stop time (for horizon inference).
///
/// Lines are raw bytes and go straight through the zero-copy scanner
/// ([`wms::parse_line_bytes`]) — no `String` is ever materialized on this
/// path.
fn parse_range(
    lines: &[&[u8]],
    range: std::ops::Range<usize>,
    first_line: u64,
    horizon: Option<u32>,
    shard: &mut ShardSketches,
) -> (Vec<(u64, LogEntry)>, u32) {
    let mut kept = Vec::new();
    let mut max_stop = 0u32;
    // With an inferred horizon the two horizon rules cannot fire (every
    // duration and start is below `max stop + 1`), which `u32::MAX`
    // reproduces without knowing the maximum in advance.
    let classify_horizon = horizon.unwrap_or(u32::MAX);
    for i in range {
        let line_no = first_line + i as u64;
        let raw = lines[i].trim_ascii();
        if raw.is_empty() || raw[0] == b'#' {
            continue;
        }
        match wms::parse_line_bytes(raw) {
            Ok(e) => {
                shard.parsed += 1;
                max_stop = max_stop.max(e.stop());
                match classify(&e, classify_horizon) {
                    Some(r) => shard.rejects[reason_index(r)] += 1,
                    None => {
                        shard.observe(&e);
                        kept.push((line_no, e));
                    }
                }
            }
            Err(mut err) => {
                shard.malformed += 1;
                if shard.first_malformed.is_none() {
                    err.line = line_no as usize;
                    shard.first_malformed = Some(err.to_string());
                }
            }
        }
    }
    (kept, max_stop)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_log() -> String {
        let entries: Vec<LogEntry> = (0..200u32)
            .map(|i| {
                lsw_trace::event::LogEntryBuilder::new()
                    .span(i * 20, (i % 9) + 1)
                    .client(lsw_trace::ids::ClientId(i % 17))
                    .transfer_stats(u64::from(i) * 100, 30_000 + i, 0.0)
                    .build()
            })
            .collect();
        String::from_utf8(wms::format_log(&entries).to_vec()).unwrap()
    }

    #[test]
    fn shard_counts_produce_identical_reports() {
        let text = tiny_log();
        let mut reports = Vec::new();
        for shards in [1usize, 2, 8] {
            let mut a = StreamAnalyzer::new(StreamConfig {
                shards,
                ..StreamConfig::default()
            });
            a.ingest_str(&text);
            reports.push({
                let mut r = a.finalize();
                r.shards = 0; // neutralize the config echo before comparing
                r.to_json()
            });
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0], reports[2]);
    }

    #[test]
    fn malformed_lines_are_counted_not_fatal() {
        let mut text = tiny_log();
        text.push_str("this is not a log line\n");
        text.push_str("neither is this\n");
        let mut a = StreamAnalyzer::new(StreamConfig::default());
        a.ingest_str(&text);
        let r = a.finalize();
        assert_eq!(r.accounting.malformed_lines, 2);
        assert_eq!(r.accounting.kept, 200);
        assert!(r
            .accounting
            .first_malformed
            .as_deref()
            .unwrap()
            .contains("line"));
    }

    #[test]
    fn chunked_and_whole_ingest_agree() {
        let text = tiny_log();
        let mut whole = StreamAnalyzer::new(StreamConfig::default());
        whole.ingest_str(&text);
        let whole = whole.finalize();

        let mut chunked = StreamAnalyzer::new(StreamConfig {
            chunk_bytes: 4096,
            ..StreamConfig::default()
        });
        chunked
            .ingest_read(std::io::Cursor::new(text.as_bytes()))
            .expect("in-memory read");
        let mut chunked = chunked.finalize();
        let mut whole = whole;
        // The memory audit legitimately depends on chunking (smaller
        // chunks drain the look-ahead heap more often); the statistics
        // must not.
        whole.memory.peak_heap_entries = 0;
        chunked.memory.peak_heap_entries = 0;
        assert_eq!(whole.to_json(), chunked.to_json());
    }

    #[test]
    fn explicit_horizon_rejects_like_batch() {
        let text = tiny_log();
        let mut a = StreamAnalyzer::new(StreamConfig {
            horizon: Some(1_000),
            ..StreamConfig::default()
        });
        a.ingest_str(&text);
        let r = a.finalize();
        let beyond: u64 = r
            .accounting
            .rejects
            .iter()
            .filter(|(reason, _)| *reason == RejectReason::StartsBeyondHorizon)
            .map(|&(_, n)| n)
            .sum();
        assert!(beyond > 0, "entries past the horizon must be rejected");
        assert_eq!(r.accounting.examined, 200);
        assert_eq!(r.accounting.kept + r.accounting.rejected(), 200);
    }
}
