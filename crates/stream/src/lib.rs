//! One-pass, bounded-memory streaming characterization of WMS traces.
//!
//! The batch pipeline (`lsw-analysis`) holds every transfer in RAM; this
//! crate re-derives the paper's Table 1 / Table 2 parameters from a log
//! consumed *incrementally*, in memory proportional to the sketches — not
//! the trace. Per layer:
//!
//! - **client layer** — [`hll::HyperLogLog`] estimates unique clients and
//!   IPs (≤ 2% error at 2^14 registers); a bottom-k
//!   [`sample::ClientSample`] carries exact per-client tallies for the
//!   client-interest Zipf slopes; [`topk::SpaceSaving`] counts ASes,
//!   countries and objects (exact while the key space fits).
//! - **session layer** — a bounded look-ahead heap re-orders log entries
//!   (logged at *stop* time) back into start order, and
//!   [`session::StreamSessionizer`] applies the paper's 1500-second
//!   timeout rule online; ON times, transfers-per-session and
//!   intra-session interarrivals stream into fixed-point
//!   [`fixed::LogMoments`] and [`quantile::LogQuantileSketch`].
//! - **transfer layer** — transfer lengths and interarrival gaps feed the
//!   same moment/quantile sketches; the concurrency profile is swept
//!   online from the re-ordered stream.
//!
//! Every sketch implements [`sketch::Sketch`] and merges deterministically
//! — shards ingest chunks in parallel, the coordinator folds their state
//! in shard-index order, and all floating accumulation is fixed-point
//! ([`fixed::FixedSum`]) — so the report is byte-identical at any shard
//! count (the same discipline the generator established: thread count
//! changes wall-clock, never bytes).
//!
//! Entry point: [`ingest::StreamAnalyzer`]; the result is a
//! [`report::StreamReport`].

#![warn(missing_docs)]

pub mod coord;
pub mod fixed;
pub mod hll;
pub mod ingest;
pub mod quantile;
pub mod report;
pub mod sample;
pub mod session;
pub mod sketch;
pub mod tap;
pub mod topk;

pub use ingest::{StreamAnalyzer, StreamConfig};
pub use report::StreamReport;
pub use sketch::Sketch;
pub use tap::MultiTap;
