//! Online sessionization with the paper's timeout rule.
//!
//! The batch sessionizer sorts all transfers per client and splits at idle
//! gaps above the timeout (1500 s, §4). Streaming gets the same result in
//! one pass because the ingest coordinator feeds entries in `(start,
//! timestamp, line)` order: for each client that is a prefix-preserving
//! subsequence of the batch engine's canonical order, so applying the
//! identical gap rule yields the identical session set.
//!
//! Memory is bounded by the number of clients *active within one timeout
//! window*: once the released-stream watermark passes `session end +
//! timeout`, no future entry can extend that session (future starts are >=
//! the watermark, so their gap already exceeds the timeout) and it is
//! closed eagerly by [`StreamSessionizer::prune_before`].
//!
//! The active map is an open-addressing table keyed by the deterministic
//! SplitMix64 client hash: [`StreamSessionizer::observe`] runs once per
//! released entry, so membership must be O(1). Close *order* (slot order
//! for prunes, which depends on insertion history) is deterministic for a
//! given released stream but not canonical — every consumer of closed
//! sessions is an order-insensitive accumulator (integer sums, count
//! maps, per-client state), which the chunked-vs-whole ingest test pins:
//! chunk boundaries already shuffle prune timing, so no downstream result
//! may depend on the order sessions close.

/// A completed session, emitted exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosedSession {
    /// Owning client id.
    pub client: u32,
    /// First transfer start (seconds).
    pub start: u32,
    /// Latest transfer stop (seconds).
    pub end: u32,
    /// Transfers in the session.
    pub transfers: u32,
}

impl ClosedSession {
    /// ON time in seconds (`end - start`), as the batch layer defines it.
    pub fn on_time(&self) -> u32 {
        self.end - self.start
    }
}

#[derive(Debug, Clone, Copy)]
struct Active {
    client: u32,
    hash: u64,
    start: u32,
    end: u32,
    last_start: u32,
    transfers: u32,
}

/// One-pass sessionizer over the re-ordered entry stream.
#[derive(Debug)]
pub struct StreamSessionizer {
    timeout: f64,
    /// Linear-probe slots; capacity is a power of two kept at load <= 1/2.
    slots: Vec<Option<Active>>,
    len: usize,
    peak_active: usize,
}

impl StreamSessionizer {
    /// Creates a sessionizer with the given idle timeout (seconds).
    pub fn new(timeout: f64) -> Self {
        Self {
            timeout,
            slots: vec![None; 64],
            len: 0,
            peak_active: 0,
        }
    }

    /// Observes one transfer `[start, stop]` by `client`, in released
    /// (start-ordered) sequence. Any session this closes is pushed onto
    /// `closed`; the return value is the intra-session interarrival gap
    /// (start minus previous transfer start) when the transfer continues
    /// an existing session.
    pub fn observe(
        &mut self,
        client: u32,
        start: u32,
        stop: u32,
        closed: &mut Vec<ClosedSession>,
    ) -> Option<u32> {
        let hash = crate::sketch::hash64(u64::from(client));
        self.observe_hashed(hash, client, start, stop, closed)
    }

    /// [`observe`](Self::observe) with the client hash already computed
    /// (the coordinator shares one hash per entry across every
    /// client-keyed structure).
    pub fn observe_hashed(
        &mut self,
        hash: u64,
        client: u32,
        start: u32,
        stop: u32,
        closed: &mut Vec<ClosedSession>,
    ) -> Option<u32> {
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        while let Some(a) = &mut self.slots[i] {
            if a.hash == hash {
                let gap = f64::from(start) - f64::from(a.end);
                if gap > self.timeout {
                    closed.push(ClosedSession {
                        client,
                        start: a.start,
                        end: a.end,
                        transfers: a.transfers,
                    });
                    a.start = start;
                    a.end = stop;
                    a.last_start = start;
                    a.transfers = 1;
                    return None;
                }
                // Released order guarantees start >= last_start.
                let iat = start.saturating_sub(a.last_start);
                a.last_start = start;
                a.end = a.end.max(stop);
                a.transfers += 1;
                return Some(iat);
            }
            i = (i + 1) & mask;
        }
        self.insert(Active {
            client,
            hash,
            start,
            end: stop,
            last_start: start,
            transfers: 1,
        });
        self.peak_active = self.peak_active.max(self.len);
        None
    }

    /// Inserts a new active session, growing the table at load 1/2.
    fn insert(&mut self, a: Active) {
        if (self.len + 1) * 2 > self.slots.len() {
            let new_cap = self.slots.len() * 2;
            let old = std::mem::replace(&mut self.slots, vec![None; new_cap]);
            for e in old.into_iter().flatten() {
                self.place(e);
            }
        }
        self.place(a);
        self.len += 1;
    }

    fn place(&mut self, a: Active) {
        let mask = self.slots.len() - 1;
        let mut i = (a.hash as usize) & mask;
        while self.slots[i].is_some() {
            i = (i + 1) & mask;
        }
        self.slots[i] = Some(a);
    }

    /// Eagerly closes sessions no future entry can extend: every upcoming
    /// released entry has `start >= watermark`, so a session whose idle
    /// gap to the watermark already exceeds the timeout is final.
    ///
    /// Runs as a full table rebuild (it is called once every few thousand
    /// entries, not per entry): survivors re-place into a fresh table, so
    /// probe chains never need tombstones.
    pub fn prune_before(&mut self, watermark: u32, closed: &mut Vec<ClosedSession>) {
        let old = std::mem::take(&mut self.slots);
        let mut survivors = Vec::with_capacity(self.len);
        for a in old.into_iter().flatten() {
            if f64::from(watermark) - f64::from(a.end) > self.timeout {
                closed.push(ClosedSession {
                    client: a.client,
                    start: a.start,
                    end: a.end,
                    transfers: a.transfers,
                });
            } else {
                survivors.push(a);
            }
        }
        self.len = survivors.len();
        // Shrink toward the live set (floor 64, load <= 1/2) so a long
        // stream's memory tracks the active window, not its high-water.
        let mut cap = 64usize;
        while cap < (self.len + 1) * 2 {
            cap *= 2;
        }
        self.slots = vec![None; cap];
        for a in survivors {
            self.place(a);
        }
    }

    /// Closes every remaining session (end of stream).
    pub fn finish(&mut self, closed: &mut Vec<ClosedSession>) {
        for a in self.slots.iter().flatten() {
            closed.push(ClosedSession {
                client: a.client,
                start: a.start,
                end: a.end,
                transfers: a.transfers,
            });
        }
        self.slots.iter_mut().for_each(|s| *s = None);
        self.len = 0;
    }

    /// Currently open sessions.
    pub fn active_len(&self) -> usize {
        self.len
    }

    /// High-water mark of simultaneously open sessions.
    pub fn peak_active(&self) -> usize {
        self.peak_active
    }

    /// Approximate resident bytes of the active-session table.
    pub fn bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.slots.len() * std::mem::size_of::<Option<Active>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(entries: &[(u32, u32, u32)], timeout: f64) -> Vec<ClosedSession> {
        let mut s = StreamSessionizer::new(timeout);
        let mut closed = Vec::new();
        for &(client, start, stop) in entries {
            s.observe(client, start, stop, &mut closed);
        }
        s.finish(&mut closed);
        closed.sort_by_key(|c| (c.start, c.end, c.client));
        closed
    }

    #[test]
    fn splits_on_timeout_gap() {
        // Gap of exactly `timeout` does NOT split (rule is strictly >).
        let sessions = run(&[(1, 0, 10), (1, 1510, 1520), (1, 4000, 4010)], 1500.0);
        assert_eq!(sessions.len(), 2);
        assert_eq!(
            sessions[0],
            ClosedSession {
                client: 1,
                start: 0,
                end: 1520,
                transfers: 2,
            }
        );
        assert_eq!(sessions[1].start, 4000);
    }

    #[test]
    fn overlapping_transfers_extend() {
        let sessions = run(&[(1, 0, 100), (1, 10, 20), (1, 50, 300)], 1500.0);
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].end, 300);
        assert_eq!(sessions[0].transfers, 3);
    }

    #[test]
    fn prune_shrinks_the_table() {
        let mut s = StreamSessionizer::new(10.0);
        let mut closed = Vec::new();
        for c in 0..10_000u32 {
            s.observe(c, 100, 110, &mut closed);
        }
        assert_eq!(s.active_len(), 10_000);
        let bytes_full = s.bytes();
        s.prune_before(100_000, &mut closed);
        assert_eq!(s.active_len(), 0);
        assert_eq!(closed.len(), 10_000);
        assert!(s.bytes() < bytes_full / 16, "table must shrink after prune");
    }

    #[test]
    fn matches_batch_sessionizer() {
        use lsw_trace::event::LogEntryBuilder;
        use lsw_trace::ids::ClientId;
        use lsw_trace::session::{SessionConfig, Sessions};
        use lsw_trace::trace::Trace;

        // Deterministic pseudo-random entries across a few clients.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut entries = Vec::new();
        for _ in 0..2_000 {
            let client = (next() % 37) as u32;
            let start = (next() % 200_000) as u32;
            let dur = (next() % 900) as u32;
            entries.push(
                LogEntryBuilder::new()
                    .span(start, dur)
                    .client(ClientId(client))
                    .build(),
            );
        }
        let trace = Trace::from_entries(entries, 300_000);
        let batch = Sessions::identify(&trace, SessionConfig { timeout: 1500.0 });

        // Stream in the trace's canonical (start-sorted) order, with
        // periodic pruning to exercise eager closes.
        let mut s = StreamSessionizer::new(1500.0);
        let mut closed = Vec::new();
        for (i, e) in trace.entries().iter().enumerate() {
            s.observe(e.client.0, e.start, e.stop(), &mut closed);
            if i % 97 == 0 {
                s.prune_before(e.start, &mut closed);
            }
        }
        s.finish(&mut closed);
        closed.sort_by_key(|c| (c.start, c.end, c.client));

        let batch_keys: Vec<(u32, u32, u32, u32)> = batch
            .all()
            .iter()
            .map(|b| (b.start, b.end, b.client.0, b.transfers))
            .collect();
        let stream_keys: Vec<(u32, u32, u32, u32)> = closed
            .iter()
            .map(|c| (c.start, c.end, c.client, c.transfers))
            .collect();
        assert_eq!(stream_keys, batch_keys);
    }
}
