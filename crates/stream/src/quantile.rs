//! Log-bucketed quantile histogram (HDR-histogram style).
//!
//! Transfer lengths, ON times and interarrival gaps are heavy-tailed over
//! four to six decades, so a histogram whose buckets are geometric — one
//! power of two split into 2^7 = 128 sub-buckets — covers the whole range
//! with a bounded relative value error of `1/128` ≈ 0.78% per bucket while
//! storing only the non-empty buckets (at most a few thousand for 32-bit
//! second values). Quantiles read off the cumulative counts land within
//! one bucket of the exact order statistic, which keeps the rank error of
//! the reported quantiles under the 1% acceptance bound for the smooth
//! lognormal-ish marginals this crate summarizes.
//!
//! All state is a dense `Vec<u64>` indexed by bucket and grown on demand
//! (second-valued inputs stay under ~4k buckets; the absolute ceiling for
//! finite doubles is 2^17 buckets = 1 MB); merging adds counts per bucket,
//! so the sketch is exactly mergeable — shard splits cannot change a
//! single count. The dense layout keeps the per-insert cost at one
//! bounds-checked increment, an order of magnitude cheaper than the
//! `BTreeMap` walk it replaced — this sits on the ingest hot path, twice
//! per released entry.
//!
//! Inputs are expected to be display-transformed values `>= 1` (the
//! paper's `⌊t⌋ + 1` convention); smaller or non-finite values are clamped
//! into the first bucket so `insert` is total.

use crate::sketch::Sketch;
use serde::{Deserialize, Serialize};

/// Sub-bucket resolution bits: 2^7 linear sub-buckets per power of two.
const SUB_BITS: u32 = 7;
const SUB_MASK: u32 = (1 << SUB_BITS) - 1;

/// Selected quantiles of the summarized marginal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantileSummary {
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// A mergeable log-bucketed histogram over values `>= 1`.
#[derive(Debug, Clone, Default)]
pub struct LogQuantileSketch {
    /// Count per bucket, dense; indices past the end are empty buckets.
    counts: Vec<u64>,
    n: u64,
}

// Content equality: trailing empty buckets are not state, only capacity.
impl PartialEq for LogQuantileSketch {
    fn eq(&self, other: &Self) -> bool {
        let (short, long) = if self.counts.len() <= other.counts.len() {
            (&self.counts, &other.counts)
        } else {
            (&other.counts, &self.counts)
        };
        self.n == other.n
            && short[..] == long[..short.len()]
            && long[short.len()..].iter().all(|&c| c == 0)
    }
}

impl Eq for LogQuantileSketch {}

/// Bucket index of a value: IEEE-754 exponent and top 7 mantissa bits.
fn bucket_of(v: f64) -> u32 {
    let v = if v.is_finite() { v.max(1.0) } else { 1.0 };
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as u32 - 1023;
    let sub = ((bits >> (52 - SUB_BITS)) & u64::from(SUB_MASK)) as u32;
    (exp << SUB_BITS) | sub
}

/// Representative value of a bucket: the arithmetic bucket midpoint.
fn value_of(bucket: u32) -> f64 {
    let exp = bucket >> SUB_BITS;
    let sub = bucket & SUB_MASK;
    f64::powi(2.0, exp as i32) * (1.0 + (f64::from(sub) + 0.5) / 128.0)
}

impl LogQuantileSketch {
    /// The empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one value.
    pub fn insert_value(&mut self, v: f64) {
        let b = bucket_of(v) as usize;
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.n += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The `q`-quantile (`q` in `[0, 1]`) as the owning bucket's midpoint,
    /// or `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        // 0-based target order statistic, same convention as sorting the
        // data and indexing at floor(q * (n-1)).
        let target = (q.clamp(0.0, 1.0) * (self.n - 1) as f64).floor() as u64;
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            cum += c;
            if c > 0 && cum > target {
                return Some(value_of(b as u32));
            }
        }
        // Unreachable: cum == n > target by construction.
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(|b| value_of(b as u32))
    }

    /// CCDF points `(value, P[X >= value])`, one per non-empty bucket in
    /// ascending value order — the streaming analogue of
    /// `Ecdf::ccdf_points`, suitable for `two_regime_tail`.
    pub fn ccdf_points(&self) -> Vec<(f64, f64)> {
        let n = self.n as f64;
        let mut below = 0u64;
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| {
                let p = (self.n - below) as f64 / n;
                below += c;
                (value_of(b as u32), p)
            })
            .collect()
    }

    /// Mass at or below `v` (empirical CDF).
    pub fn cdf(&self, v: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let b = bucket_of(v) as usize;
        let end = self.counts.len().min(b + 1);
        let cum: u64 = self.counts[..end].iter().sum();
        cum as f64 / self.n as f64
    }
}

impl Sketch for LogQuantileSketch {
    type Item = f64;
    type Estimate = Option<QuantileSummary>;

    fn insert(&mut self, item: &f64) {
        self.insert_value(*item);
    }

    fn merge(&mut self, other: &Self) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.n += other.n;
    }

    fn estimate(&self) -> Option<QuantileSummary> {
        Some(QuantileSummary {
            p25: self.quantile(0.25)?,
            p50: self.quantile(0.50)?,
            p75: self.quantile(0.75)?,
            p95: self.quantile(0.95)?,
            p99: self.quantile(0.99)?,
        })
    }

    fn bytes(&self) -> usize {
        // len, not capacity: the audit must be a function of sketch
        // *content* so reports stay shard-count invariant.
        std::mem::size_of::<Self>() + self.counts.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact rank of `v` in sorted `data` (fraction strictly below).
    fn exact_rank(data: &[f64], v: f64) -> f64 {
        let below = data.iter().filter(|&&x| x < v).count();
        below as f64 / data.len() as f64
    }

    #[test]
    fn bucket_relative_error_bounded() {
        for v in [1.0, 1.5, 7.0, 100.0, 12_345.6, 2.0e6] {
            let mid = value_of(bucket_of(v));
            assert!(
                ((mid - v) / v).abs() <= 1.0 / 128.0,
                "bucket midpoint {mid} too far from {v}"
            );
        }
    }

    #[test]
    fn quantiles_have_small_rank_error() {
        // A deterministic lognormal-ish sample via inverse-ish transform.
        let mut data: Vec<f64> = (0..50_000u64)
            .map(|i| {
                let u = (i as f64 + 0.5) / 50_000.0;
                (4.4 + 1.4 * (u / (1.0 - u)).ln() * 0.55).exp().floor() + 1.0
            })
            .collect();
        let mut sk = LogQuantileSketch::new();
        for &x in &data {
            sk.insert_value(x);
        }
        data.sort_by(f64::total_cmp);
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
            let est = sk.quantile(q).unwrap();
            let rank = exact_rank(&data, est);
            assert!(
                (rank - q).abs() <= 0.01,
                "rank error at q={q}: estimate {est} has rank {rank}"
            );
        }
    }

    #[test]
    fn merge_equals_single_stream() {
        let vals: Vec<f64> = (1..=1000).map(|i| f64::from(i) * 1.7).collect();
        let mut whole = LogQuantileSketch::new();
        let mut a = LogQuantileSketch::new();
        let mut b = LogQuantileSketch::new();
        for (i, &v) in vals.iter().enumerate() {
            whole.insert_value(v);
            if i % 3 == 0 {
                a.insert_value(v);
            } else {
                b.insert_value(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn ccdf_starts_at_one_and_decreases() {
        let mut sk = LogQuantileSketch::new();
        for v in [1.0, 2.0, 4.0, 8.0, 16.0] {
            sk.insert_value(v);
        }
        let pts = sk.ccdf_points();
        assert!((pts[0].1 - 1.0).abs() < 1e-12);
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 > w[1].1);
        }
    }
}
