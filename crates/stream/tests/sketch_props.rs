//! Property tests for the sketch algebra: every sketch must be a
//! commutative monoid under `merge` (order- and grouping-independent),
//! and the end-to-end engine must produce byte-identical reports at any
//! shard count — the determinism contract the whole crate is built on.

use lsw_stream::hll::HyperLogLog;
use lsw_stream::quantile::LogQuantileSketch;
use lsw_stream::sample::ClientSample;
use lsw_stream::topk::SpaceSaving;
use lsw_stream::{Sketch, StreamAnalyzer, StreamConfig};
use proptest::prelude::*;

fn hll_of(keys: &[u64]) -> HyperLogLog {
    let mut h = HyperLogLog::new(10);
    for &k in keys {
        h.insert_key(k);
    }
    h
}

fn quant_of(vals: &[f64]) -> LogQuantileSketch {
    let mut q = LogQuantileSketch::new();
    for &v in vals {
        q.insert_value(v);
    }
    q
}

fn topk_of(keys: &[u16]) -> SpaceSaving<u16> {
    let mut t = SpaceSaving::new(64);
    for k in keys {
        t.insert_key(k);
    }
    t
}

fn sample_of(clients: &[u32]) -> ClientSample {
    let mut s = ClientSample::new(32);
    for &c in clients {
        s.observe_transfer(c);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hll_merge_is_commutative(
        a in prop::collection::vec(0u64..50_000, 0..200),
        b in prop::collection::vec(0u64..50_000, 0..200),
    ) {
        let (ha, hb) = (hll_of(&a), hll_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        // And equal to the single-stream union.
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(&ab, &hll_of(&both));
    }

    #[test]
    fn hll_merge_is_associative(
        a in prop::collection::vec(0u64..50_000, 0..120),
        b in prop::collection::vec(0u64..50_000, 0..120),
        c in prop::collection::vec(0u64..50_000, 0..120),
    ) {
        let (ha, hb, hc) = (hll_of(&a), hll_of(&b), hll_of(&c));
        let mut left = ha.clone(); // (a ∪ b) ∪ c
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone(); // a ∪ (b ∪ c)
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn quantile_merge_equals_single_stream(
        a in prop::collection::vec(1.0f64..1e6, 0..200),
        b in prop::collection::vec(1.0f64..1e6, 0..200),
    ) {
        let mut merged = quant_of(&a);
        merged.merge(&quant_of(&b));
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(&merged, &quant_of(&both));
        // Commutativity.
        let mut flipped = quant_of(&b);
        flipped.merge(&quant_of(&a));
        prop_assert_eq!(&merged, &flipped);
    }

    #[test]
    fn topk_merge_matches_single_stream_in_exact_regime(
        a in prop::collection::vec(0u16..48, 0..300),
        b in prop::collection::vec(0u16..48, 0..300),
    ) {
        // Key space (48) fits the capacity (64), so SpaceSaving is exact
        // and merge must equal the single-stream sketch.
        let mut merged = topk_of(&a);
        merged.merge(&topk_of(&b));
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(merged.top(), topk_of(&both).top());
    }

    #[test]
    fn client_sample_merge_matches_single_stream(
        a in prop::collection::vec(0u32..10_000, 0..300),
        b in prop::collection::vec(0u32..10_000, 0..300),
    ) {
        // Bottom-k membership is a pure function of the key set, and
        // tallies sum — so any split of the stream merges to the same
        // sample.
        let mut merged = sample_of(&a);
        merged.merge(&sample_of(&b));
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(&merged, &sample_of(&both));
    }

    #[test]
    fn engine_reports_are_shard_count_invariant(
        n in 20usize..120,
        seed in 0u64..1_000,
    ) {
        // A deterministic pseudo-random log, streamed at 1/2/8 shards,
        // must produce byte-identical JSON reports.
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let entries: Vec<_> = (0..n)
            .map(|_| {
                lsw_trace::event::LogEntryBuilder::new()
                    .span((next() % 50_000) as u32, (next() % 600) as u32)
                    .client(lsw_trace::ids::ClientId((next() % 40) as u32))
                    .transfer_stats(next() % 1_000_000, 15_000 + (next() % 40_000) as u32, 0.0)
                    .build()
            })
            .collect();
        let text = String::from_utf8(lsw_trace::wms::format_log(&entries).to_vec()).unwrap();

        let mut reports = Vec::new();
        for shards in [1usize, 2, 8] {
            let mut engine = StreamAnalyzer::new(StreamConfig {
                shards,
                ..StreamConfig::default()
            });
            engine.ingest_str(&text);
            let mut r = engine.finalize();
            r.shards = 0; // neutralize the config echo, compare the numbers
            reports.push(r.to_json());
        }
        prop_assert_eq!(&reports[0], &reports[1]);
        prop_assert_eq!(&reports[0], &reports[2]);
    }
}
