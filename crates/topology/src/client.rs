//! The client population: identities, home AS, shared IPs, access links.
//!
//! Table 1 reports 691,889 users behind 364,184 IPs — about 1.9 players
//! per address, the signature of NATs, proxies and shared home machines.
//! [`ClientPopulation`] reproduces that: clients are assigned to ASes by
//! popularity weight, grouped onto shared IPs within their AS, and given
//! an access class from the 2002 mix.

use crate::access::{AccessClass, AccessMix};
use crate::asmap::AsRegistry;
use lsw_stats::rng::u01;
use lsw_trace::ids::{AsId, ClientId, CountryCode, Ipv4Addr};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-client static attributes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientInfo {
    /// The client id (dense, 0-based).
    pub id: ClientId,
    /// Home autonomous system.
    pub as_id: AsId,
    /// Country (denormalized from the AS).
    pub country: CountryCode,
    /// The (possibly shared) IP the client appears from.
    pub ip: Ipv4Addr,
    /// Access-link class.
    pub access: AccessClass,
}

/// Configuration for building a client population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClientPopulationConfig {
    /// Number of clients (paper: 691,889).
    pub n_clients: usize,
    /// Mean number of clients sharing one IP (paper: ≈ 1.9).
    pub clients_per_ip: f64,
    /// Access-link mix.
    pub access_mix: Vec<(AccessClass, f64)>,
}

impl Default for ClientPopulationConfig {
    fn default() -> Self {
        Self {
            n_clients: lsw_stats::paper::NUM_USERS,
            clients_per_ip: lsw_stats::paper::NUM_USERS as f64
                / lsw_stats::paper::NUM_CLIENT_IPS as f64,
            access_mix: AccessClass::default_mix(),
        }
    }
}

/// The built population: dense arrays indexed by client id.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClientPopulation {
    clients: Vec<ClientInfo>,
    n_ips: usize,
}

impl ClientPopulation {
    /// Builds the population over an AS registry.
    ///
    /// Clients are dealt to ASes proportionally to AS weight. Within an
    /// AS, clients are packed onto IPs in groups whose size is geometric
    /// with the configured mean, drawn from the AS's `/16` block (rolling
    /// into adjacent blocks when a popular AS needs more than 64k hosts).
    pub fn build<R: Rng + ?Sized>(
        config: &ClientPopulationConfig,
        registry: &AsRegistry,
        rng: &mut R,
    ) -> Self {
        assert!(config.n_clients >= 1, "need at least one client");
        assert!(config.clients_per_ip >= 1.0, "clients_per_ip must be >= 1");
        let mix = AccessMix::new(&config.access_mix);
        let share_p = 1.0 / config.clients_per_ip; // geometric "new IP" prob

        let mut clients = Vec::with_capacity(config.n_clients);
        let mut n_ips = 0usize;

        // Deal clients to ASes: sample an AS per client (preserving the
        // Zipf weight profile Fig 2 measures), then pack clients onto
        // shared IPs *within each AS*: every AS keeps a "current" IP that
        // new clients join with probability `1 − share_p`, giving geometric
        // group sizes with the configured mean independent of how AS draws
        // interleave.
        let mut as_state: std::collections::HashMap<AsId, (u32, Ipv4Addr)> =
            std::collections::HashMap::new();
        for i in 0..config.n_clients {
            let info = registry.sample(rng);
            let state = as_state.entry(info.id).or_insert((0, Ipv4Addr(0)));
            let reuse = state.0 > 0 && u01(rng) >= share_p;
            let ip = if reuse {
                state.1
            } else {
                state.0 += 1;
                n_ips += 1;
                let h = state.0;
                // a.b.x.y with x.y walking the /16; overflow rolls b.
                let (a, b) = info.prefix;
                let ip = Ipv4Addr::from_octets(
                    a,
                    b.wrapping_add((h >> 16) as u8),
                    (h >> 8) as u8,
                    h as u8,
                );
                state.1 = ip;
                ip
            };
            clients.push(ClientInfo {
                id: ClientId(i as u32),
                as_id: info.id,
                country: info.country,
                ip,
                access: mix.sample(rng),
            });
        }
        Self { clients, n_ips }
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// True when empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Number of distinct IPs allocated.
    pub fn n_ips(&self) -> usize {
        self.n_ips
    }

    /// Looks up a client.
    pub fn get(&self, id: ClientId) -> &ClientInfo {
        &self.clients[id.0 as usize]
    }

    /// All clients in id order.
    pub fn all(&self) -> &[ClientInfo] {
        &self.clients
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asmap::AsRegistryConfig;
    use lsw_stats::SeedStream;

    fn small_population(n: usize) -> ClientPopulation {
        let seeds = SeedStream::new(11);
        let mut rng = seeds.rng("topology");
        let registry = AsRegistry::build(&AsRegistryConfig::default(), &mut rng);
        let config = ClientPopulationConfig {
            n_clients: n,
            clients_per_ip: 1.9,
            access_mix: AccessClass::default_mix(),
        };
        ClientPopulation::build(&config, &registry, &mut rng)
    }

    #[test]
    fn population_size_and_ids_dense() {
        let p = small_population(10_000);
        assert_eq!(p.len(), 10_000);
        for (i, c) in p.all().iter().enumerate() {
            assert_eq!(c.id, ClientId(i as u32));
        }
    }

    #[test]
    fn ip_sharing_ratio_near_target() {
        let p = small_population(50_000);
        let ratio = p.len() as f64 / p.n_ips() as f64;
        assert!((ratio - 1.9).abs() < 0.15, "clients/IP = {ratio}");
        // Distinct IPs in the info records agree with the counter.
        let distinct: std::collections::HashSet<_> = p.all().iter().map(|c| c.ip).collect();
        assert_eq!(distinct.len(), p.n_ips());
    }

    #[test]
    fn shared_ips_stay_within_one_as() {
        let p = small_population(30_000);
        let mut ip_as: std::collections::HashMap<Ipv4Addr, AsId> = std::collections::HashMap::new();
        for c in p.all() {
            let entry = ip_as.entry(c.ip).or_insert(c.as_id);
            assert_eq!(*entry, c.as_id, "IP {0} spans two ASes", c.ip);
        }
    }

    #[test]
    fn country_denormalization_consistent() {
        let seeds = SeedStream::new(12);
        let mut rng = seeds.rng("topology2");
        let registry = AsRegistry::build(&AsRegistryConfig::default(), &mut rng);
        let config = ClientPopulationConfig {
            n_clients: 5_000,
            clients_per_ip: 1.5,
            access_mix: AccessClass::default_mix(),
        };
        let p = ClientPopulation::build(&config, &registry, &mut rng);
        for c in p.all() {
            assert_eq!(c.country, registry.get(c.as_id).unwrap().country);
        }
    }

    #[test]
    fn popular_ases_get_more_clients() {
        let p = small_population(100_000);
        let mut per_as: std::collections::HashMap<AsId, usize> = std::collections::HashMap::new();
        for c in p.all() {
            *per_as.entry(c.as_id).or_insert(0) += 1;
        }
        let rank1 = per_as.get(&AsId(0)).copied().unwrap_or(0);
        let rank50 = per_as.get(&AsId(49)).copied().unwrap_or(0);
        assert!(rank1 > rank50 * 5, "rank-1 {rank1} vs rank-50 {rank50}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small_population(2_000);
        let b = small_population(2_000);
        assert_eq!(a.all(), b.all());
    }
}
