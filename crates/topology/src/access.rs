//! Access-link classes, after the client-bound bandwidth modes of Fig 20.
//!
//! The paper attributes the spikes on the right of the bandwidth marginal
//! to "client connection speeds (various modem speeds, DSL, cable modem,
//! etc.)". These classes model a 2002 Brazilian consumer population:
//! overwhelmingly dial-up with a growing broadband minority.

use lsw_stats::rng::u01;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A client access-link class with its nominal downstream capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessClass {
    /// 28.8 kbit/s modem.
    Modem28,
    /// 33.6 kbit/s modem.
    Modem33,
    /// 56 kbit/s modem.
    Modem56,
    /// 64/128 kbit/s ISDN.
    Isdn,
    /// Consumer ADSL (~256 kbit/s downstream in 2002 Brazil).
    Dsl,
    /// Cable modem (~512 kbit/s).
    Cable,
    /// Corporate / university LAN (effectively stream-limited).
    Lan,
}

impl AccessClass {
    /// All classes, in capacity order.
    pub const ALL: [AccessClass; 7] = [
        AccessClass::Modem28,
        AccessClass::Modem33,
        AccessClass::Modem56,
        AccessClass::Isdn,
        AccessClass::Dsl,
        AccessClass::Cable,
        AccessClass::Lan,
    ];

    /// Nominal downstream capacity, bits per second.
    pub fn capacity_bps(&self) -> u32 {
        match self {
            AccessClass::Modem28 => 28_800,
            AccessClass::Modem33 => 33_600,
            AccessClass::Modem56 => 56_000,
            AccessClass::Isdn => 128_000,
            AccessClass::Dsl => 256_000,
            AccessClass::Cable => 512_000,
            AccessClass::Lan => 1_500_000,
        }
    }

    /// Default 2002-era population mix: mostly dial-up.
    ///
    /// Weights are relative; they produce the multi-spike right-hand side
    /// of Fig 20 with the 56k spike dominating.
    pub fn default_mix() -> Vec<(AccessClass, f64)> {
        vec![
            (AccessClass::Modem28, 0.08),
            (AccessClass::Modem33, 0.12),
            (AccessClass::Modem56, 0.45),
            (AccessClass::Isdn, 0.08),
            (AccessClass::Dsl, 0.15),
            (AccessClass::Cable, 0.09),
            (AccessClass::Lan, 0.03),
        ]
    }
}

/// Samples access classes from a weighted mix.
#[derive(Debug, Clone)]
pub struct AccessMix {
    classes: Vec<AccessClass>,
    cum: Vec<f64>,
}

impl AccessMix {
    /// Builds a sampler from `(class, weight)` pairs (weights normalized).
    ///
    /// # Panics
    /// Panics when the mix is empty or a weight is non-positive.
    pub fn new(mix: &[(AccessClass, f64)]) -> Self {
        assert!(!mix.is_empty(), "access mix must not be empty");
        assert!(
            mix.iter().all(|&(_, w)| w > 0.0),
            "weights must be positive"
        );
        let total: f64 = mix.iter().map(|&(_, w)| w).sum();
        let mut cum = Vec::with_capacity(mix.len());
        let mut acc = 0.0;
        for &(_, w) in mix {
            acc += w / total;
            cum.push(acc);
        }
        if let Some(last) = cum.last_mut() {
            *last = 1.0;
        }
        Self {
            classes: mix.iter().map(|&(c, _)| c).collect(),
            cum,
        }
    }

    /// The default 2002 mix.
    pub fn default_2002() -> Self {
        Self::new(&AccessClass::default_mix())
    }

    /// Samples one class.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> AccessClass {
        let u = u01(rng);
        let idx = self
            .cum
            .partition_point(|&c| c < u)
            .min(self.classes.len() - 1);
        self.classes[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsw_stats::SeedStream;

    #[test]
    fn capacities_ordered() {
        let caps: Vec<u32> = AccessClass::ALL.iter().map(|c| c.capacity_bps()).collect();
        assert!(
            caps.windows(2).all(|w| w[0] < w[1]),
            "capacities must increase"
        );
    }

    #[test]
    fn default_mix_normalizes_and_samples() {
        let mix = AccessMix::default_2002();
        let mut rng = SeedStream::new(1).rng("access");
        let mut counts = std::collections::HashMap::new();
        const N: usize = 100_000;
        for _ in 0..N {
            *counts.entry(mix.sample(&mut rng)).or_insert(0usize) += 1;
        }
        // 56k modem should dominate (~45%).
        let m56 = counts[&AccessClass::Modem56] as f64 / N as f64;
        assert!((m56 - 0.45).abs() < 0.01, "56k share {m56}");
        // Every class appears.
        assert_eq!(counts.len(), 7);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_mix_panics() {
        AccessMix::new(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_weight_panics() {
        AccessMix::new(&[(AccessClass::Dsl, 0.0)]);
    }
}
