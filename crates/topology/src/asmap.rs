//! Autonomous-system registry with Zipf-weighted popularity.
//!
//! Fig 2 of the paper shows AS "popularity" (share of transfers and of
//! client IPs per AS) falling off Zipf-like over ~1,010 ASes, and the
//! transfer share per country dominated by Brazil with ten other countries
//! trailing down to 1e-7. The registry reproduces that structure: AS
//! weights follow a bounded Zipf over rank, and countries are assigned so
//! that country shares follow the paper's skew.

use lsw_stats::dist::{Discrete, ZipfTable};
use lsw_stats::rng::u01;
use lsw_trace::ids::{AsId, CountryCode};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Static information about one AS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsInfo {
    /// The AS identifier (dense, 0-based).
    pub id: AsId,
    /// Country the AS is registered in.
    pub country: CountryCode,
    /// Popularity weight (relative client mass; normalized over registry).
    pub weight: f64,
    /// First octet pair of the AS's address block (`a.b.0.0/16`).
    pub prefix: (u8, u8),
}

/// Configuration for building a synthetic AS registry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsRegistryConfig {
    /// Number of ASes (paper: 1,010).
    pub n_ases: usize,
    /// Zipf exponent of AS popularity over rank. Fig 2's span of ~6 decades
    /// over ~3 decades of rank corresponds to an exponent well above 1;
    /// 1.6 reproduces the plotted slope.
    pub zipf_exponent: f64,
    /// `(country, share)` pairs; shares need not be normalized. The first
    /// entry is the home country and receives all remaining probability
    /// mass when shares underflow 1.
    pub country_shares: Vec<(CountryCode, f64)>,
}

impl Default for AsRegistryConfig {
    fn default() -> Self {
        // Country shares shaped after Fig 2 (right): Brazil ~97%, US ~2.5%,
        // then a geometric decay to ~1e-7 across the remaining nine.
        let mut shares = Vec::new();
        let mut frac = 0.025;
        for (i, code) in CountryCode::PAPER_COUNTRIES.iter().enumerate() {
            // lsw::allow(L005): PAPER_COUNTRIES holds valid static codes
            let c = CountryCode::new(code).expect("static codes are valid");
            if i == 0 {
                shares.push((c, 0.97));
            } else {
                shares.push((c, frac));
                frac *= 0.22; // ~6 decades over 10 steps
            }
        }
        Self {
            n_ases: lsw_stats::paper::NUM_CLIENT_AS,
            zipf_exponent: 1.6,
            country_shares: shares,
        }
    }
}

/// The synthetic AS registry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsRegistry {
    ases: Vec<AsInfo>,
    /// Cumulative normalized weights for sampling.
    cum: Vec<f64>,
}

impl AsRegistry {
    /// Builds a registry: rank-`k` AS gets weight `k^{-s}`, and countries
    /// are interleaved so each country's total AS weight approximates its
    /// configured share (the home country takes rank 1).
    pub fn build<R: Rng + ?Sized>(config: &AsRegistryConfig, rng: &mut R) -> Self {
        assert!(config.n_ases >= 1, "need at least one AS");
        assert!(
            !config.country_shares.is_empty(),
            "need at least one country"
        );
        let zipf = ZipfTable::new(config.n_ases as u64, config.zipf_exponent)
            // lsw::allow(L005): TopologyConfig::validate checked both params
            .expect("validated parameters");

        // Normalize country shares.
        let total_share: f64 = config.country_shares.iter().map(|&(_, s)| s).sum();
        let shares: Vec<(CountryCode, f64)> = config
            .country_shares
            .iter()
            .map(|&(c, s)| (c, s / total_share))
            .collect();

        // Assign countries to AS ranks greedily: walk ranks in weight order
        // and hand each AS to the country whose assigned weight is furthest
        // below its target share. This makes country transfer shares track
        // the configured skew while every listed country gets >= 1 AS.
        // Reserve the lowest-weight ranks so every listed country gets at
        // least one AS even when its target share is below the smallest AS
        // weight (the paper's smallest countries sit near 1e-7).
        let n_reserved = shares
            .len()
            .saturating_sub(1)
            .min(config.n_ases.saturating_sub(1));
        let reserve_from = config.n_ases - n_reserved; // ranks > this are reserved
        let mut assigned = vec![0.0f64; shares.len()];
        let mut ases = Vec::with_capacity(config.n_ases);
        for rank in 1..=config.n_ases as u64 {
            let w = zipf.pmf(rank);
            let ci = if rank as usize > reserve_from {
                // Reserved tail: country i (1-based among non-home) in order.
                rank as usize - reserve_from
            } else {
                shares
                    .iter()
                    .enumerate()
                    .map(|(i, &(_, target))| (i, target - assigned[i]))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .map_or(0, |(i, _)| i)
            };
            assigned[ci] += w;
            // Address block: each AS gets a unique /12-sized region (16
            // consecutive /16s) starting at 60.0.0.0, so even an AS holding
            // hundreds of thousands of hosts never rolls into a neighbor's
            // space. Uniqueness matters (a shared IP must identify one AS);
            // realism of the numbers does not.
            let block = (rank - 1) * 16;
            let a = (60 + block / 256) as u8;
            let b = (block % 256) as u8;
            ases.push(AsInfo {
                id: AsId((rank - 1) as u16),
                country: shares[ci].0,
                weight: w,
                prefix: (a, b),
            });
        }
        // Small random shuffle of prefixes so blocks don't correlate with
        // rank (cosmetic realism; weights stay attached to ids).
        for i in (1..ases.len()).rev() {
            let j = (u01(rng) * (i + 1) as f64) as usize;
            let (pi, pj) = (ases[i].prefix, ases[j].prefix);
            ases[i].prefix = pj;
            ases[j].prefix = pi;
        }

        let mut cum = Vec::with_capacity(ases.len());
        let mut acc = 0.0;
        for a in &ases {
            acc += a.weight;
            cum.push(acc);
        }
        let last = cum.last().copied().unwrap_or(1.0);
        for c in &mut cum {
            *c /= last;
        }
        if let Some(last) = cum.last_mut() {
            *last = 1.0;
        }
        Self { ases, cum }
    }

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.ases.len()
    }

    /// True when the registry is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.ases.is_empty()
    }

    /// All ASes, in rank (descending weight) order.
    pub fn all(&self) -> &[AsInfo] {
        &self.ases
    }

    /// Looks up an AS by id.
    pub fn get(&self, id: AsId) -> Option<&AsInfo> {
        self.ases.get(id.0 as usize)
    }

    /// Samples an AS according to popularity weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &AsInfo {
        let u = u01(rng);
        let idx = self
            .cum
            .partition_point(|&c| c < u)
            .min(self.ases.len() - 1);
        &self.ases[idx]
    }

    /// Distinct countries present.
    pub fn countries(&self) -> Vec<CountryCode> {
        let mut seen = std::collections::BTreeSet::new();
        for a in &self.ases {
            seen.insert(a.country.0);
        }
        seen.into_iter().map(CountryCode).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsw_stats::SeedStream;

    fn registry() -> AsRegistry {
        let mut rng = SeedStream::new(7).rng("asreg");
        AsRegistry::build(&AsRegistryConfig::default(), &mut rng)
    }

    #[test]
    fn default_config_matches_paper_scale() {
        let r = registry();
        assert_eq!(r.len(), 1_010);
        assert_eq!(r.countries().len(), 11);
    }

    #[test]
    fn weights_are_zipf_over_rank() {
        let r = registry();
        let w1 = r.all()[0].weight;
        let w10 = r.all()[9].weight;
        // weight(1)/weight(10) = 10^1.6.
        assert!((w1 / w10 - 10f64.powf(1.6)).abs() / 10f64.powf(1.6) < 1e-9);
    }

    #[test]
    fn home_country_dominates() {
        let r = registry();
        let br = CountryCode::new("BR").unwrap();
        let br_weight: f64 = r
            .all()
            .iter()
            .filter(|a| a.country == br)
            .map(|a| a.weight)
            .sum();
        let total: f64 = r.all().iter().map(|a| a.weight).sum();
        let share = br_weight / total;
        assert!(share > 0.9, "BR share {share}");
        // Rank-1 AS must be Brazilian.
        assert_eq!(r.all()[0].country, br);
    }

    #[test]
    fn every_country_has_an_as() {
        let r = registry();
        for code in CountryCode::PAPER_COUNTRIES {
            let c = CountryCode::new(code).unwrap();
            assert!(r.all().iter().any(|a| a.country == c), "no AS for {code}");
        }
    }

    #[test]
    fn sampling_tracks_weights() {
        let r = registry();
        let mut rng = SeedStream::new(8).rng("asreg-sample");
        const N: usize = 200_000;
        let mut counts = vec![0u64; r.len()];
        for _ in 0..N {
            counts[r.sample(&mut rng).id.0 as usize] += 1;
        }
        let total_w: f64 = r.all().iter().map(|a| a.weight).sum();
        let expected = r.all()[0].weight / total_w;
        let got = counts[0] as f64 / N as f64;
        assert!(
            (got - expected).abs() < 0.01,
            "rank-1 share {got} vs {expected}"
        );
        // Monotone-ish: rank 1 sampled more than rank 100.
        assert!(counts[0] > counts[99]);
    }

    #[test]
    fn lookup_by_id() {
        let r = registry();
        let info = r.get(AsId(5)).unwrap();
        assert_eq!(info.id, AsId(5));
        assert!(r.get(AsId(5_000)).is_none());
    }
}
