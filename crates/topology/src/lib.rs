//! # lsw-topology — synthetic client population for live streaming workloads
//!
//! The paper's client population (§3.1) spans ~692k users behind ~364k IPs,
//! mapped to 1,010 autonomous systems in 11 countries, with a Zipf-like AS
//! popularity profile (Fig 2) and 2002-era access links (Fig 20's
//! client-bound bandwidth spikes: modem tiers, ISDN, DSL, cable).
//!
//! Since the real population is proprietary, this crate builds a synthetic
//! one with the same *structure*:
//!
//! * [`access`] — access-link classes and their bandwidth caps.
//! * [`asmap`] — an AS registry with Zipf-weighted popularity and country
//!   assignment.
//! * [`client`] — the client population: per-client home AS, shared IP
//!   allocation (≈1.9 users/IP as in Table 1), and access class.

#![warn(missing_docs)]

pub mod access;
pub mod asmap;
pub mod client;

pub use access::AccessClass;
pub use asmap::{AsInfo, AsRegistry, AsRegistryConfig};
pub use client::{ClientInfo, ClientPopulation, ClientPopulationConfig};
