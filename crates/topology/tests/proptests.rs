//! Property-based tests for the client-population substrate.

use lsw_topology::access::AccessMix;
use lsw_topology::{
    AccessClass, AsRegistry, AsRegistryConfig, ClientPopulation, ClientPopulationConfig,
};
use lsw_trace::ids::Ipv4Addr;
use proptest::prelude::*;

fn registry(n_ases: usize, exponent: f64, seed: u64) -> AsRegistry {
    let config = AsRegistryConfig {
        n_ases,
        zipf_exponent: exponent,
        ..AsRegistryConfig::default()
    };
    let mut rng = lsw_stats::SeedStream::new(seed).rng("topo-prop");
    AsRegistry::build(&config, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn registry_invariants(n_ases in 11usize..2_000, exponent in 0.0..2.5f64, seed in 0u64..500) {
        let r = registry(n_ases, exponent, seed);
        prop_assert_eq!(r.len(), n_ases);
        // Weights positive and in rank order.
        let weights: Vec<f64> = r.all().iter().map(|a| a.weight).collect();
        prop_assert!(weights.iter().all(|&w| w > 0.0));
        prop_assert!(weights.windows(2).all(|w| w[0] >= w[1]));
        // Prefixes are unique: a shared IP must identify one AS.
        let mut prefixes: Vec<(u8, u8)> = r.all().iter().map(|a| a.prefix).collect();
        prefixes.sort_unstable();
        prefixes.dedup();
        prop_assert_eq!(prefixes.len(), n_ases, "prefix collision");
        // Every configured country is represented.
        prop_assert_eq!(r.countries().len(), 11);
    }

    #[test]
    fn population_invariants(
        n_clients in 50usize..20_000,
        clients_per_ip in 1.0..4.0f64,
        seed in 0u64..500,
    ) {
        let r = registry(200, 1.3, seed);
        let config = ClientPopulationConfig {
            n_clients,
            clients_per_ip,
            access_mix: AccessClass::default_mix(),
        };
        let mut rng = lsw_stats::SeedStream::new(seed).rng("pop-prop");
        let p = ClientPopulation::build(&config, &r, &mut rng);
        prop_assert_eq!(p.len(), n_clients);
        // IP accounting agrees with the records.
        let distinct: std::collections::HashSet<Ipv4Addr> =
            p.all().iter().map(|c| c.ip).collect();
        prop_assert_eq!(distinct.len(), p.n_ips());
        prop_assert!(p.n_ips() <= n_clients);
        // Shared IPs never span ASes, and countries denormalize correctly.
        let mut ip_as = std::collections::HashMap::new();
        for c in p.all() {
            let entry = ip_as.entry(c.ip).or_insert(c.as_id);
            prop_assert_eq!(*entry, c.as_id);
            prop_assert_eq!(c.country, r.get(c.as_id).unwrap().country);
        }
    }

    #[test]
    fn sharing_ratio_tracks_target(clients_per_ip in 1.0..3.5f64, seed in 0u64..100) {
        let r = registry(100, 1.0, seed);
        let config = ClientPopulationConfig {
            n_clients: 30_000,
            clients_per_ip,
            access_mix: AccessClass::default_mix(),
        };
        let mut rng = lsw_stats::SeedStream::new(seed).rng("pop-ratio");
        let p = ClientPopulation::build(&config, &r, &mut rng);
        let ratio = p.len() as f64 / p.n_ips() as f64;
        prop_assert!(
            (ratio / clients_per_ip - 1.0).abs() < 0.12,
            "ratio {} vs target {}", ratio, clients_per_ip
        );
    }

    #[test]
    fn access_mix_covers_all_weighted_classes(seed in 0u64..200) {
        let mix = AccessMix::default_2002();
        let mut rng = lsw_stats::SeedStream::new(seed).rng("mix-prop");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            seen.insert(mix.sample(&mut rng));
        }
        // All seven classes have weight >= 3%, so 5k draws see them all
        // (P[miss] < 1e-60).
        prop_assert_eq!(seen.len(), 7);
    }
}
