//! Session-layer characterization (§4 of the paper).
//!
//! Covers: the number-of-sessions-vs-`T_o` sweep (Fig 9), session ON time
//! versus starting hour (Fig 10), the session ON marginal with its
//! lognormal fit (Fig 11), the session OFF marginal with its exponential
//! fit and daily revisit ripples (Fig 12), transfers per session with the
//! Zipf fit (Fig 13), and intra-session transfer interarrivals with the
//! lognormal fit (Fig 14).

use crate::marginal::{display_transform, Marginal};
use lsw_stats::fit::{
    fit_exponential, fit_lognormal, fit_zipf_points, ExponentialFit, LogNormalFit, ZipfFit,
};
use lsw_stats::par::Parallelism;
use lsw_trace::session::{SessionConfig, Sessions};
use lsw_trace::trace::Trace;
use serde::{Deserialize, Serialize};

/// Fig 9: sessions identified per timeout value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeoutSweep {
    /// `(T_o seconds, sessions identified)`.
    pub points: Vec<(f64, usize)>,
}

impl TimeoutSweep {
    /// Relative change in session count over the last `k` sweep steps —
    /// the paper's "does not change drastically past 1,500 s" observation.
    pub fn tail_flatness(&self, k: usize) -> f64 {
        if self.points.len() < k + 1 {
            return f64::NAN;
        }
        let last = self.points[self.points.len() - 1].1 as f64;
        let earlier = self.points[self.points.len() - 1 - k].1 as f64;
        (earlier - last) / last.max(1.0)
    }
}

/// Fig 10: mean session ON time by starting hour.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnTimeByHour {
    /// `(hour 0..24, mean ON time seconds)`; NaN for empty hours.
    pub points: Vec<(f64, f64)>,
    /// Correlation coefficient between start-hour mean and the hour index
    /// magnitude — the paper reports it as weak.
    pub max_relative_deviation: f64,
}

/// The full session layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionLayer {
    /// Number of sessions at the configured `T_o`.
    pub n_sessions: usize,
    /// Fig 9.
    pub timeout_sweep: TimeoutSweep,
    /// Fig 10.
    pub on_by_hour: OnTimeByHour,
    /// Fig 11: ON-time marginal (`⌊t⌋+1` transformed).
    pub on_times: Marginal,
    /// Fig 11 fit (paper: μ = 5.2355, σ = 1.5443).
    pub on_fit: Option<LogNormalFit>,
    /// Fig 12: OFF-time marginal.
    pub off_times: Marginal,
    /// Fig 12 fit (paper: mean = 203,150 s).
    pub off_fit: Option<ExponentialFit>,
    /// OFF-time ripple lags in days: local maxima of the OFF histogram
    /// near integer days (the paper's daily-revisit ripples).
    pub off_ripple_days: Vec<f64>,
    /// Fig 13: transfers-per-session `(k, frequency)` points.
    pub transfers_per_session: Vec<(f64, f64)>,
    /// Fig 13 fit (paper: α = 2.7042).
    pub tps_fit: Option<ZipfFit>,
    /// Fig 14: intra-session interarrival marginal (`⌊t⌋+1`).
    pub intra_iat: Marginal,
    /// Fig 14 fit (paper: μ = 4.8999, σ = 1.3207).
    pub intra_iat_fit: Option<LogNormalFit>,
}

/// The sweep values used for Fig 9 (seconds).
pub const TIMEOUT_SWEEP: [f64; 14] = [
    60.0, 120.0, 240.0, 400.0, 600.0, 800.0, 1_000.0, 1_250.0, 1_500.0, 2_000.0, 2_500.0, 3_000.0,
    3_500.0, 4_000.0,
];

/// Runs the full session-layer characterization.
pub fn analyze(trace: &Trace, sessions: &Sessions) -> SessionLayer {
    let timeout_sweep = sweep_timeouts(trace, &TIMEOUT_SWEEP);
    let on_by_hour = on_time_by_hour(sessions);

    let on_raw = sessions.on_times();
    let on_disp = display_transform(&on_raw);
    let on_times = Marginal::log_binned(&on_disp, 10).unwrap_or_else(empty_marginal);
    let on_fit = fit_lognormal(&on_disp).ok();

    let off_raw = sessions.off_times();
    let off_disp = display_transform(&off_raw);
    let off_times = Marginal::log_binned(&off_disp, 10).unwrap_or_else(empty_marginal);
    let off_fit = fit_exponential(&off_raw).ok();
    let off_ripple_days = off_ripples(&off_raw);

    let tps_counts = sessions.transfers_per_session();
    let transfers_per_session = tps_frequency_points(&tps_counts);
    let tps_fit = fit_zipf_points(&transfers_per_session, Some(50.0)).ok();

    let iat_raw = sessions.intra_session_interarrivals(trace);
    let iat_disp = display_transform(&iat_raw);
    let intra_iat = Marginal::log_binned(&iat_disp, 10).unwrap_or_else(empty_marginal);
    let intra_iat_fit = fit_lognormal(&iat_disp).ok();

    SessionLayer {
        n_sessions: sessions.len(),
        timeout_sweep,
        on_by_hour,
        on_times,
        on_fit,
        off_times,
        off_fit,
        off_ripple_days,
        transfers_per_session,
        tps_fit,
        intra_iat,
        intra_iat_fit,
    }
}

/// Fig 9: re-sessionize under each timeout.
///
/// Each timeout's sessionization is independent, so the sweep fans out
/// one scoped thread per timeout; inside the sweep each `identify` runs
/// sequentially (the outer fan-out already saturates the cores).
pub fn sweep_timeouts(trace: &Trace, timeouts: &[f64]) -> TimeoutSweep {
    let points = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = timeouts
            .iter()
            .map(|&t| {
                s.spawn(move || {
                    let config = SessionConfig { timeout: t };
                    (
                        t,
                        Sessions::identify_with(trace, config, Parallelism::sequential()).len(),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(point) => point,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    TimeoutSweep { points }
}

/// Fig 10: mean ON time by session starting hour.
pub fn on_time_by_hour(sessions: &Sessions) -> OnTimeByHour {
    let mut sums = [0.0f64; 24];
    let mut counts = [0u64; 24];
    for s in sessions.all() {
        let hour = ((u64::from(s.start) % 86_400) / 3_600) as usize;
        sums[hour] += f64::from(s.on_time());
        counts[hour] += 1;
    }
    let points: Vec<(f64, f64)> = (0..24)
        .map(|h| {
            (
                h as f64,
                if counts[h] > 0 {
                    sums[h] / counts[h] as f64
                } else {
                    f64::NAN
                },
            )
        })
        .collect();
    let means: Vec<f64> = points.iter().map(|p| p.1).filter(|v| !v.is_nan()).collect();
    let max_relative_deviation = if means.len() > 1 {
        let grand = means.iter().sum::<f64>() / means.len() as f64;
        means
            .iter()
            .map(|&m| (m - grand).abs() / grand)
            .fold(0.0, f64::max)
    } else {
        f64::NAN
    };
    OnTimeByHour {
        points,
        max_relative_deviation,
    }
}

/// Fig 13's frequency points: `P[K = k]` per transfer count `k`.
fn tps_frequency_points(counts: &[u64]) -> Vec<(f64, f64)> {
    if counts.is_empty() {
        return Vec::new();
    }
    let mut hist: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for &c in counts {
        *hist.entry(c).or_insert(0) += 1;
    }
    let total = counts.len() as f64;
    hist.into_iter()
        .map(|(k, n)| (k as f64, n as f64 / total))
        .collect()
}

/// Detects the Fig 12 daily-revisit ripples: for each integer day `d`,
/// reports `d` when the OFF-time density within ±3h of `d` days exceeds
/// the density at the half-day offsets `d ± 0.5` days (where the diurnal
/// phase is opposite). Comparing against the half-day points rather than
/// the immediate flanks keeps the slowly decaying exponential body from
/// masking the ripple.
fn off_ripples(off_times: &[f64]) -> Vec<f64> {
    let day = 86_400.0;
    let window = 3.0 * 3_600.0;
    let density_near = |center: f64| {
        off_times
            .iter()
            .filter(|&&t| (t - center).abs() <= window)
            .count() as f64
    };
    let mut out = Vec::new();
    for d in 1..=7 {
        let at_day = density_near(d as f64 * day);
        let at_half =
            0.5 * (density_near((d as f64 - 0.5) * day) + density_near((d as f64 + 0.5) * day));
        if at_day > at_half && at_day > 0.0 {
            out.push(d as f64);
        }
    }
    out
}

fn empty_marginal() -> Marginal {
    Marginal {
        // lsw::allow(L005): literal one-element slice is never empty
        summary: lsw_stats::empirical::Summary::from_data(&[0.0]).expect("non-empty"),
        frequency: Vec::new(),
        cdf: Vec::new(),
        ccdf: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsw_core::config::WorkloadConfig;
    use lsw_core::generator::Generator;

    fn fixture() -> (Trace, Sessions) {
        let config = WorkloadConfig::paper().scaled(9_000, 4 * 86_400, 20_000);
        let trace = Generator::new(config, 44).unwrap().generate().render();
        let sessions = Sessions::identify(&trace, SessionConfig::default());
        (trace, sessions)
    }

    #[test]
    fn timeout_sweep_monotone_and_flattening() {
        let (trace, _) = fixture();
        let sweep = sweep_timeouts(&trace, &TIMEOUT_SWEEP);
        // Monotone non-increasing.
        assert!(sweep.points.windows(2).all(|w| w[0].1 >= w[1].1));
        // Paper's observation: past 1,500 s the count flattens — the last
        // 5 steps (1500→4000) change the count by only a few percent.
        let flat = sweep.tail_flatness(5);
        assert!(flat < 0.12, "tail still moving: {flat}");
    }

    #[test]
    fn on_times_fit_lognormal_shape() {
        let (_, sessions) = fixture();
        let layer_on: Vec<f64> = display_transform(&sessions.on_times());
        let fit = fit_lognormal(&layer_on).unwrap();
        // Emergent, not sampled: accept a generous band around the paper's
        // μ = 5.24, σ = 1.54. The shape (σ well above 1) is the claim.
        assert!(fit.sigma > 1.0, "sigma {}", fit.sigma);
        assert!((3.5..6.5).contains(&fit.mu), "mu {}", fit.mu);
    }

    #[test]
    fn off_times_fit_exponential_with_ripples() {
        let (trace, sessions) = fixture();
        let layer = analyze(&trace, &sessions);
        let off = layer.off_fit.expect("off times present");
        // Mean OFF is hours-to-days scale; at 4-day horizon the censoring
        // pulls it below the paper's 203ks, but it must be >> To.
        assert!(off.mean > 10_000.0, "off mean {}", off.mean);
        // Daily revisit ripple at 1 day must be detected.
        assert!(
            layer.off_ripple_days.contains(&1.0),
            "ripples {:?}",
            layer.off_ripple_days
        );
    }

    #[test]
    fn transfers_per_session_zipf_alpha() {
        let (trace, sessions) = fixture();
        let layer = analyze(&trace, &sessions);
        let fit = layer.tps_fit.expect("fit available");
        // The generator samples zeta(2.704); sessionization perturbs it
        // (splits/merges), so accept ±0.5.
        assert!(
            (fit.alpha - 2.704).abs() < 0.5,
            "transfers/session alpha {}",
            fit.alpha
        );
    }

    #[test]
    fn intra_session_iat_recovered() {
        let (trace, sessions) = fixture();
        let layer = analyze(&trace, &sessions);
        let fit = layer.intra_iat_fit.expect("fit available");
        // ⌊t⌋+1 and session splitting shift μ slightly; the paper's value
        // is 4.90.
        assert!((fit.mu - 4.9).abs() < 0.3, "iat mu {}", fit.mu);
        assert!((fit.sigma - 1.32).abs() < 0.3, "iat sigma {}", fit.sigma);
    }

    #[test]
    fn on_time_weakly_correlated_with_hour() {
        let (_, sessions) = fixture();
        let by_hour = on_time_by_hour(sessions_ref(&sessions));
        assert_eq!(by_hour.points.len(), 24);
        // "Fairly weak correlation": deviations from the grand mean stay
        // bounded (no hour is multiples of the mean).
        assert!(
            by_hour.max_relative_deviation < 1.0,
            "deviation {}",
            by_hour.max_relative_deviation
        );
    }

    fn sessions_ref(s: &Sessions) -> &Sessions {
        s
    }
}
