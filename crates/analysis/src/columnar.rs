//! Direct columnar analysis over `ltc` block streams.
//!
//! The batch characterizer consumes a [`Trace`] — a sorted `Vec<LogEntry>`
//! — which for a 28-day log means materializing millions of 48-byte
//! records before the first statistic is computed. The two most expensive
//! batch stages, sessionization and the concurrency sweep, only read four
//! (respectively two) of a record's fourteen fields, so an `ltc` input can
//! feed them straight from block columns:
//!
//! * sessionize — `(client, start, timestamp, stop)` columns accumulate
//!   into four flat `u32` arrays (one third of the entry-array footprint,
//!   no padding, no unused fields) and run through
//!   [`Sessions::identify_columns`];
//! * concurrency — `(start, stop)` pairs fold into a
//!   [`ConcurrencySweep`] difference array block by block; nothing is
//!   retained between blocks at all.
//!
//! Sanitization still applies entry semantics (§2.4 classification reads
//! most fields), so each record is materialized *transiently* on the stack
//! for its classify call — but never stored. The outputs are exactly the
//! batch layer's: the canonical sort inside `identify` makes
//! [`Sessions::all`] independent of record order, and the difference
//! array is order-free, so both match a `sanitize -> Trace` pipeline
//! record for record (the `ltc`-vs-`wms` differential tests pin this).
//!
//! [`Trace`]: lsw_trace::trace::Trace

use lsw_stats::par::Parallelism;
use lsw_trace::concurrency::{ConcurrencyProfile, ConcurrencySweep};
use lsw_trace::ltc::{BlockReader, BlockSource, ReadStats};
use lsw_trace::sanitize::classify;
use lsw_trace::session::{SessionConfig, Sessions, TransferColumns};
use std::io;

/// Result of one columnar pass: the session set and concurrency profile,
/// plus the ingest accounting a report would want to surface.
#[derive(Debug)]
pub struct ColumnarPass {
    /// Sessions over the kept records, identical to the batch sessionizer.
    pub sessions: Sessions,
    /// Concurrent-transfer profile over the kept records (Figs 15/16).
    pub concurrency: ConcurrencyProfile,
    /// Records that survived §2.4 classification.
    pub kept: u64,
    /// Records rejected by §2.4 classification.
    pub rejected: u64,
    /// Corrupt-block accounting from the reader.
    pub read_stats: ReadStats,
}

/// Sessionizes and concurrency-sweeps an `ltc` stream in one pass without
/// materializing a `LogEntry` array. `horizon` bounds both the §2.4
/// classification and the concurrency profile, exactly like the batch
/// `sanitize` + `ConcurrencyProfile::transfers` pipeline.
pub fn sessionize_concurrency_ltc<S: BlockSource>(
    mut reader: BlockReader<S>,
    config: SessionConfig,
    horizon: u32,
    par: Parallelism,
) -> io::Result<ColumnarPass> {
    let mut client = Vec::new();
    let mut start = Vec::new();
    let mut timestamp = Vec::new();
    let mut stop = Vec::new();
    let mut sweep = ConcurrencySweep::new(horizon);
    let mut kept = 0u64;
    let mut rejected = 0u64;
    while let Some(block) = reader.next_block()? {
        for i in 0..block.len() {
            // Transient stack materialization for the §2.4 rules only.
            let e = block.entry(i);
            if classify(&e, horizon).is_some() {
                rejected += 1;
                continue;
            }
            kept += 1;
            let e_stop = e.stop();
            client.push(e.client.0);
            start.push(e.start);
            timestamp.push(e.timestamp);
            stop.push(e_stop);
            sweep.add(e.start, e_stop);
        }
    }
    let sessions = Sessions::identify_columns(
        TransferColumns {
            client: &client,
            start: &start,
            timestamp: &timestamp,
            stop: &stop,
        },
        config,
        par,
    );
    Ok(ColumnarPass {
        sessions,
        concurrency: sweep.finish(),
        kept,
        rejected,
        read_stats: reader.stats().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsw_trace::event::LogEntryBuilder;
    use lsw_trace::ids::ClientId;
    use lsw_trace::ltc::{self, SliceSource};
    use lsw_trace::sanitize::sanitize;

    /// Deterministic fixture with clean and §2.4-rejectable records.
    fn fixture() -> Vec<lsw_trace::event::LogEntry> {
        let mut state = 0xdead_beef_cafe_f00du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut entries = Vec::new();
        for _ in 0..3_000 {
            let client = (next() % 61) as u32;
            let start = (next() % 150_000) as u32;
            let dur = (next() % 800) as u32;
            let mut e = LogEntryBuilder::new()
                .span(start, dur)
                .client(ClientId(client))
                .build();
            match next() % 10 {
                // A few §2.4 rejects: failed status, bad stats, horizon.
                0 => e.status = 404,
                1 => e.packet_loss = 1.5,
                2 => e.start = 400_000,
                _ => {}
            }
            entries.push(e);
        }
        entries
    }

    #[test]
    fn columnar_pass_matches_batch_pipeline() {
        let entries = fixture();
        let horizon = 200_000u32;
        let config = SessionConfig { timeout: 1500.0 };

        // Batch: sanitize -> Trace -> identify + transfers sweep.
        let (trace, report) = sanitize(entries.clone(), horizon);
        let batch_sessions = Sessions::identify(&trace, config);
        let batch_conc = ConcurrencyProfile::transfers(trace.entries(), horizon);

        // Columnar: encode to ltc, one block-stream pass.
        let image = ltc::encode(&entries).unwrap();
        let reader = BlockReader::open(SliceSource::new(&image)).unwrap();
        let pass =
            sessionize_concurrency_ltc(reader, config, horizon, Parallelism::fixed(3)).unwrap();

        assert_eq!(pass.kept as usize, trace.len());
        assert_eq!(pass.rejected as usize, report.rejected());
        assert_eq!(pass.read_stats.corrupt_blocks, 0);
        assert_eq!(pass.sessions.all(), batch_sessions.all());
        assert_eq!(pass.concurrency.per_second(), batch_conc.per_second());
    }
}
