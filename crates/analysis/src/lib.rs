//! # lsw-analysis — the hierarchical workload characterizer
//!
//! The measurement half of the reproduction: given a trace (real or
//! synthetic), compute every statistic the paper reports, at the paper's
//! three layers:
//!
//! * [`client_layer`] — concurrency profile `c(t)` and its marginal
//!   (Figs 3/4), autocorrelation (Fig 8), client interarrivals and the
//!   piecewise-Poisson arrival test (Figs 5/6, §3.4), the client interest
//!   profile (Fig 7), and topological/geographical diversity (Fig 2).
//! * [`session_layer`] — the `T_o` sweep (Fig 9), session ON times and
//!   their lognormal fit (Figs 10/11), session OFF times and their
//!   exponential fit with daily ripples (Fig 12), transfers per session
//!   (Fig 13), intra-session interarrivals (Fig 14).
//! * [`transfer_layer`] — concurrent transfers (Figs 15/16), transfer
//!   interarrivals with the two-regime tail (Figs 17/18), transfer lengths
//!   (Fig 19) and the bimodal bandwidth marginal (Fig 20).
//!
//! [`report::CharacterizationReport`] bundles all three layers plus the
//! Table-1 summary; it serializes to JSON and renders as text.
//! [`columnar`] feeds the two heaviest stages — sessionization and the
//! concurrency sweep — straight from `ltc` block columns, skipping the
//! `LogEntry` array entirely.
//!
//! ## Conventions
//!
//! Durations and interarrival times are transformed with the paper's
//! `⌊t⌋ + 1` convention before log-scale binning (§2.3), so zero-second
//! measurements (the artifact of 1-second log resolution) are displayable
//! and fits see the same data the paper's fits saw.

#![warn(missing_docs)]

pub mod client_layer;
pub mod columnar;
pub mod marginal;
pub mod report;
pub mod session_layer;
pub mod stream_compare;
pub mod transfer_layer;

pub use report::{characterize, characterize_with, CharacterizationReport};
