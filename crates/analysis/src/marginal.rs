//! Marginal-distribution bundles: the three-panel figure unit.
//!
//! Nearly every figure in the paper is the same triptych: a (log-binned)
//! frequency histogram, a cumulative distribution and a CCDF.
//! [`Marginal`] computes all three plus a moment summary, with plot-ready
//! `(x, y)` series decimated to a sane point count.

use lsw_stats::empirical::{Binning, Ecdf, Histogram, Summary};
use serde::{Deserialize, Serialize};

/// Maximum points kept per CDF/CCDF series (decimation preserves shape;
/// the paper's plots resolve far fewer pixels).
const MAX_POINTS: usize = 2_000;

/// A marginal distribution: the paper's frequency/CDF/CCDF triptych.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Marginal {
    /// Moment and quantile summary.
    pub summary: Summary,
    /// `(bin center, relative frequency)` — the left panel.
    pub frequency: Vec<(f64, f64)>,
    /// `(x, P[X <= x])` — the middle panel.
    pub cdf: Vec<(f64, f64)>,
    /// `(x, P[X >= x])` — the right panel.
    pub ccdf: Vec<(f64, f64)>,
}

impl Marginal {
    /// Builds a marginal with log-spaced frequency bins (for positive,
    /// spread-out data like durations and interarrivals).
    ///
    /// Returns `None` on empty input. Non-positive values are excluded
    /// from the log histogram but kept in the ECDF and summary — callers
    /// that applied `⌊t⌋+1` have none anyway.
    pub fn log_binned(data: &[f64], per_decade: usize) -> Option<Self> {
        let summary = Summary::from_data(data)?;
        let positive_min = data
            .iter()
            .copied()
            .filter(|&x| x > 0.0)
            .fold(f64::INFINITY, f64::min);
        let frequency = if positive_min.is_finite() && summary.max > positive_min {
            let hist = Histogram::from_data(
                Binning::Log {
                    lo: positive_min,
                    hi: summary.max,
                    per_decade,
                },
                data,
            );
            hist.frequency_points()
        } else {
            // Degenerate spread: one atom.
            vec![(summary.max.max(positive_min), 1.0)]
        };
        let ecdf = Ecdf::new(data.to_vec());
        Some(Self {
            summary,
            frequency,
            cdf: decimate(ecdf.points()),
            ccdf: decimate(ecdf.ccdf_points()),
        })
    }

    /// Builds a marginal with linear frequency bins (for counts like
    /// concurrency, Figs 3/15).
    pub fn linear_binned(data: &[f64], nbins: usize) -> Option<Self> {
        let summary = Summary::from_data(data)?;
        let (lo, hi) = (summary.min, summary.max);
        let frequency = if hi > lo {
            Histogram::from_data(Binning::Linear { lo, hi, nbins }, data).frequency_points()
        } else {
            vec![(lo, 1.0)]
        };
        let ecdf = Ecdf::new(data.to_vec());
        Some(Self {
            summary,
            frequency,
            cdf: decimate(ecdf.points()),
            ccdf: decimate(ecdf.ccdf_points()),
        })
    }
}

/// Applies the paper's `⌊t⌋+1` log-display transform to a series of
/// second-resolution measurements.
pub fn display_transform(data: &[f64]) -> Vec<f64> {
    data.iter()
        .map(|&t| lsw_stats::paper::log_display_time(t))
        .collect()
}

/// Decimates a sorted point series to at most [`MAX_POINTS`] entries,
/// always keeping the first and last.
fn decimate(points: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    if points.len() <= MAX_POINTS {
        return points;
    }
    let n = points.len();
    let step = n as f64 / (MAX_POINTS - 1) as f64;
    let mut out = Vec::with_capacity(MAX_POINTS);
    let mut idx = 0.0;
    while (idx as usize) < n - 1 {
        out.push(points[idx as usize]);
        idx += step;
    }
    out.push(points[n - 1]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_binned_basic() {
        let data: Vec<f64> = (1..=1_000).map(|i| i as f64).collect();
        let m = Marginal::log_binned(&data, 5).unwrap();
        assert_eq!(m.summary.n, 1_000);
        assert!(!m.frequency.is_empty());
        // Frequencies sum to ~1 (nothing excluded).
        let s: f64 = m.frequency.iter().map(|&(_, f)| f).sum();
        assert!((s - 1.0).abs() < 1e-9);
        // CDF endpoints.
        assert_eq!(m.cdf.last().unwrap().1, 1.0);
        assert_eq!(m.ccdf.first().unwrap().1, 1.0);
    }

    #[test]
    fn empty_input_returns_none() {
        assert!(Marginal::log_binned(&[], 5).is_none());
        assert!(Marginal::linear_binned(&[], 10).is_none());
    }

    #[test]
    fn degenerate_single_value() {
        let m = Marginal::log_binned(&[5.0, 5.0, 5.0], 5).unwrap();
        assert_eq!(m.frequency, vec![(5.0, 1.0)]);
        assert_eq!(m.summary.mean, 5.0);
    }

    #[test]
    fn display_transform_matches_paper() {
        assert_eq!(
            display_transform(&[0.0, 0.4, 1.0, 2.7]),
            vec![1.0, 1.0, 2.0, 3.0]
        );
    }

    #[test]
    fn decimation_bounds_points() {
        let data: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let m = Marginal::linear_binned(&data, 20).unwrap();
        assert!(m.cdf.len() <= 2_000);
        assert!(m.ccdf.len() <= 2_000);
        // First/last preserved.
        assert_eq!(m.ccdf.first().unwrap().1, 1.0);
        assert_eq!(m.cdf.last().unwrap().1, 1.0);
    }
}
