//! Client-layer characterization (§3 of the paper).
//!
//! Covers: client diversity over ASes and countries (Fig 2), the
//! concurrency profile `c(t)` and its marginal (Figs 3/4), client
//! interarrival times (Fig 5), the piecewise-stationary-Poisson arrival
//! test (Fig 6, §3.4), the client interest profile (Fig 7), and the
//! autocorrelation of `c(t)` (Fig 8).

use crate::marginal::{display_transform, Marginal};
use lsw_stats::empirical::RankFrequency;
use lsw_stats::fit::{fit_zipf_rank_frequency, ZipfFit};
use lsw_stats::hypothesis::{ks_two_sample, poisson_dispersion_test, TestResult};
use lsw_stats::process::{PiecewisePoisson, PiecewiseRate};
use lsw_stats::rng::SeedStream;
use lsw_stats::timeseries::{autocorrelation, BinnedSeries};
use lsw_trace::concurrency::ConcurrencyProfile;
use lsw_trace::ids::{AsId, Ipv4Addr};
use lsw_trace::session::{transfer_counts_per_client, Sessions};
use lsw_trace::trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Client diversity over ASes and countries (Fig 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeoAnalysis {
    /// `(rank, share of transfers)` per AS — Fig 2 left.
    pub as_by_transfers: Vec<(f64, f64)>,
    /// `(rank, share of distinct IPs)` per AS — Fig 2 center.
    pub as_by_ips: Vec<(f64, f64)>,
    /// `(country code, share of transfers)`, descending — Fig 2 right.
    pub country_transfers: Vec<(String, f64)>,
    /// Number of distinct ASes seen.
    pub n_ases: usize,
    /// Number of distinct countries seen.
    pub n_countries: usize,
}

/// The concurrency view of the client layer (Figs 3, 4, 8).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClientConcurrency {
    /// Marginal distribution of the number of active clients (Fig 3).
    pub marginal: Marginal,
    /// Mean active clients per 900-s bin over the whole trace (Fig 4 left).
    pub over_trace: BinnedSeries,
    /// Folded modulo one week (Fig 4 center).
    pub weekly: BinnedSeries,
    /// Folded modulo one day (Fig 4 right).
    pub daily: BinnedSeries,
    /// Autocorrelation of the per-minute client count (Fig 8); index = lag
    /// in minutes.
    pub acf_minutes: Vec<f64>,
    /// Lags (minutes) of ACF local maxima above 0.1 — the paper finds
    /// multiples of 1,440.
    pub acf_peaks: Vec<usize>,
    /// Peak concurrency over the trace.
    pub peak: u32,
}

/// Client arrival analysis (Figs 5/6, §3.3–3.4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArrivalAnalysis {
    /// Marginal of client interarrival times, `⌊t⌋+1` transformed (Fig 5).
    pub interarrivals: Marginal,
    /// Marginal of interarrivals from the fitted piecewise-stationary
    /// Poisson process (Fig 6).
    pub synthetic_interarrivals: Marginal,
    /// Two-sample KS comparing actual vs synthetic interarrivals — the
    /// quantitative version of the paper's "surprisingly similar".
    pub ks_actual_vs_synthetic: TestResult,
    /// Fraction of 15-minute windows whose per-minute arrival counts pass
    /// the Poisson dispersion test at 1% — §3.4's within-window claim.
    pub poisson_window_pass_fraction: f64,
    /// Number of windows tested.
    pub poisson_windows_tested: usize,
}

/// The client interest profile (Fig 7).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterestAnalysis {
    /// `(rank, relative frequency)` of transfers per client (Fig 7 left).
    pub transfers_rank: Vec<(f64, f64)>,
    /// Zipf fit of the transfer profile (paper: α = 0.7194).
    pub transfers_fit: Option<ZipfFit>,
    /// `(rank, relative frequency)` of sessions per client (Fig 7 right).
    pub sessions_rank: Vec<(f64, f64)>,
    /// Zipf fit of the session profile (paper: α = 0.4704).
    pub sessions_fit: Option<ZipfFit>,
}

/// Everything the client layer produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClientLayer {
    /// Fig 2.
    pub geo: GeoAnalysis,
    /// Figs 3, 4, 8.
    pub concurrency: ClientConcurrency,
    /// Figs 5, 6 and the §3.4 test.
    pub arrivals: ArrivalAnalysis,
    /// Fig 7.
    pub interest: InterestAnalysis,
}

/// Runs the full client-layer characterization.
pub fn analyze(trace: &Trace, sessions: &Sessions, seed: u64) -> ClientLayer {
    ClientLayer {
        geo: analyze_geo(trace),
        concurrency: analyze_concurrency(sessions, trace.horizon()),
        arrivals: analyze_arrivals(sessions, trace.horizon(), seed),
        interest: analyze_interest(trace, sessions),
    }
}

/// Fig 2: AS and country popularity.
pub fn analyze_geo(trace: &Trace) -> GeoAnalysis {
    // BTreeMaps: RankFrequency::from_counts sorts by count only, so equal
    // counts keep insertion order — iteration order must not depend on the
    // process-random hash seed.
    let mut transfers_per_as: BTreeMap<AsId, u64> = BTreeMap::new();
    let mut ips_per_as: BTreeMap<AsId, BTreeSet<Ipv4Addr>> = BTreeMap::new();
    let mut transfers_per_country: BTreeMap<[u8; 2], u64> = BTreeMap::new();
    for e in trace.entries() {
        *transfers_per_as.entry(e.as_id).or_insert(0) += 1;
        ips_per_as.entry(e.as_id).or_default().insert(e.ip);
        *transfers_per_country.entry(e.country.0).or_insert(0) += 1;
    }
    let n_ases = transfers_per_as.len();
    let as_by_transfers =
        RankFrequency::from_counts(transfers_per_as.into_values().collect()).points();
    let as_by_ips =
        RankFrequency::from_counts(ips_per_as.values().map(|s| s.len() as u64).collect()).points();
    let total: u64 = transfers_per_country.values().sum();
    let mut country_transfers: Vec<(String, f64)> = transfers_per_country
        .into_iter()
        .map(|(c, n)| {
            (
                std::str::from_utf8(&c).unwrap_or("??").to_string(),
                n as f64 / total.max(1) as f64,
            )
        })
        .collect();
    // Total order (share desc, then name) keeps the listing deterministic
    // even when two countries tie exactly.
    country_transfers.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    GeoAnalysis {
        as_by_transfers,
        as_by_ips,
        n_countries: country_transfers.len(),
        country_transfers,
        n_ases,
    }
}

/// Figs 3, 4, 8: concurrency and its temporal structure.
pub fn analyze_concurrency(sessions: &Sessions, horizon: u32) -> ClientConcurrency {
    let profile = ConcurrencyProfile::clients(sessions.all(), horizon);
    let samples = profile.samples();
    let marginal = Marginal::linear_binned(&samples, 100).unwrap_or_else(empty_marginal);
    let over_trace = profile.binned_mean(900);
    let weekly = over_trace.fold(7.0 * 86_400.0);
    let daily = over_trace.fold(86_400.0);

    // Fig 8: ACF of per-minute counts, up to 3.2 days of lag (the paper
    // plots ~4,500 minutes).
    let per_minute = profile.binned_mean(60);
    let max_lag = (per_minute.values.len().saturating_sub(1)).min(4_600);
    let acf_minutes = if per_minute.values.len() >= 2 {
        autocorrelation(&per_minute.values, max_lag)
    } else {
        vec![1.0]
    };
    // Peaks: smooth lightly to ignore minute-level jitter.
    let smoothed = lsw_stats::timeseries::moving_average(&acf_minutes, 10);
    let mut acf_peaks: Vec<usize> = lsw_stats::timeseries::find_peaks(&smoothed, 0.1);
    // Merge peaks closer than 4 hours; keep the strongest of each cluster.
    acf_peaks = merge_peaks(&smoothed, acf_peaks, 240);

    ClientConcurrency {
        marginal,
        over_trace,
        weekly,
        daily,
        acf_minutes,
        acf_peaks,
        peak: profile.peak(),
    }
}

fn merge_peaks(series: &[f64], peaks: Vec<usize>, min_gap: usize) -> Vec<usize> {
    let mut merged: Vec<usize> = Vec::new();
    for p in peaks {
        match merged.last_mut() {
            Some(last) if p - *last < min_gap => {
                if series[p] > series[*last] {
                    *last = p;
                }
            }
            _ => merged.push(p),
        }
    }
    merged
}

/// Figs 5/6 and the §3.4 Poisson-window test.
pub fn analyze_arrivals(sessions: &Sessions, horizon: u32, seed: u64) -> ArrivalAnalysis {
    let arrivals = sessions.arrival_times();
    let actual_iats = sessions.client_interarrivals();
    let interarrivals =
        Marginal::log_binned(&display_transform(&actual_iats), 10).unwrap_or_else(empty_marginal);

    // Fit 15-minute piecewise rates from the arrivals and regenerate
    // (Fig 6's experiment, §3.4).
    let window = lsw_stats::paper::PIECEWISE_WINDOW_SECS;
    let counts = lsw_stats::timeseries::bin_counts(&arrivals, window, f64::from(horizon));
    let rates: Vec<f64> = counts.iter().map(|&c| c as f64 / window).collect();
    let has_arrivals = rates.iter().any(|&r| r > 0.0);
    let synthetic_iats: Vec<f64> = match PiecewiseRate::new(rates, window, false) {
        Ok(profile) if has_arrivals => {
            let process = PiecewisePoisson::new(profile);
            let mut rng = SeedStream::new(seed).rng("fig6-synthetic");
            let synth = process.generate(&mut rng, 0.0, f64::from(horizon));
            // Quantize to whole seconds first: the actual arrivals went
            // through the server's 1-second log resolution, so the synthetic
            // process must see the same measurement pipeline to be
            // comparable.
            synth
                .windows(2)
                .map(|w| w[1].floor() - w[0].floor())
                .collect()
        }
        // Empty or all-zero windows: no synthetic sample to compare.
        _ => Vec::new(),
    };
    let synthetic_display = display_transform(&synthetic_iats);
    let synthetic_interarrivals =
        Marginal::log_binned(&synthetic_display, 10).unwrap_or_else(empty_marginal);
    // ks_two_sample reports an error on empty input; surface that as NaN
    // (the report renders it as "no comparison possible").
    let ks_actual_vs_synthetic =
        ks_two_sample(&display_transform(&actual_iats), &synthetic_display).unwrap_or(TestResult {
            statistic: f64::NAN,
            p_value: f64::NAN,
        });

    // §3.4: within each 15-minute window, are per-minute counts Poisson?
    let per_minute = lsw_stats::timeseries::bin_counts(&arrivals, 60.0, f64::from(horizon));
    let mut tested = 0usize;
    let mut passed = 0usize;
    for chunk in per_minute.chunks(15) {
        if chunk.len() < 15 {
            continue;
        }
        let mean = chunk.iter().sum::<u64>() as f64 / 15.0;
        if mean < 3.0 {
            continue; // too sparse for the chi-square approximation
        }
        if let Ok(r) = poisson_dispersion_test(chunk) {
            tested += 1;
            if r.accepts(0.01) {
                passed += 1;
            }
        }
    }
    ArrivalAnalysis {
        interarrivals,
        synthetic_interarrivals,
        ks_actual_vs_synthetic,
        poisson_window_pass_fraction: if tested > 0 {
            passed as f64 / tested as f64
        } else {
            f64::NAN
        },
        poisson_windows_tested: tested,
    }
}

/// Fig 7: the client interest profile.
pub fn analyze_interest(trace: &Trace, sessions: &Sessions) -> InterestAnalysis {
    let transfers_rf = RankFrequency::from_counts(transfer_counts_per_client(trace));
    let sessions_rf = RankFrequency::from_counts(sessions.session_counts_per_client());
    // Fit the body: ranks whose counts are large enough that Poisson noise
    // and re-sort bias do not distort the slope. The stepped tail of ties
    // at small counts (visible in Fig 7) is excluded, as the paper's
    // fitted lines visibly do.
    let body = |rf: &RankFrequency| {
        let mut k = rf.n();
        for rank in 1..=rf.n() {
            if rf.count_at(rank).unwrap_or(0) < 10 {
                k = rank.saturating_sub(1);
                break;
            }
        }
        (k.max(20) as f64).min(rf.n() as f64)
    };
    let transfers_fit = fit_zipf_rank_frequency(&transfers_rf, Some(body(&transfers_rf))).ok();
    let sessions_fit = fit_zipf_rank_frequency(&sessions_rf, Some(body(&sessions_rf))).ok();
    InterestAnalysis {
        transfers_rank: transfers_rf.points(),
        transfers_fit,
        sessions_rank: sessions_rf.points(),
        sessions_fit,
    }
}

fn empty_marginal() -> Marginal {
    Marginal {
        // lsw::allow(L005): literal one-element slice is never empty
        summary: lsw_stats::empirical::Summary::from_data(&[0.0]).expect("non-empty"),
        frequency: Vec::new(),
        cdf: Vec::new(),
        ccdf: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsw_core::config::WorkloadConfig;
    use lsw_core::generator::Generator;
    use lsw_trace::session::SessionConfig;

    fn fixture() -> (Trace, Sessions) {
        let config = WorkloadConfig::paper().scaled(20_000, 2 * 86_400, 30_000);
        let trace = Generator::new(config, 33).unwrap().generate().render();
        let sessions = Sessions::identify(&trace, SessionConfig::default());
        (trace, sessions)
    }

    #[test]
    fn geo_structure() {
        let (trace, _) = fixture();
        let geo = analyze_geo(&trace);
        assert!(geo.n_ases > 10);
        assert!(geo.n_countries >= 2);
        // Rank-frequency shares descend.
        assert!(geo.as_by_transfers.windows(2).all(|w| w[0].1 >= w[1].1));
        // Brazil dominates.
        assert_eq!(geo.country_transfers[0].0, "BR");
        assert!(geo.country_transfers[0].1 > 0.8);
        // Shares sum to 1.
        let s: f64 = geo.country_transfers.iter().map(|c| c.1).sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn concurrency_has_diurnal_structure() {
        let (trace, sessions) = fixture();
        let c = analyze_concurrency(&sessions, trace.horizon());
        assert!(c.peak > 0);
        // Daily fold: the 4-11h trough is well below the evening peak.
        let daily = &c.daily.values;
        assert_eq!(daily.len(), 96);
        let trough: f64 = daily[24..36].iter().sum::<f64>() / 12.0; // 6–9h
        let peak: f64 = daily[80..92].iter().sum::<f64>() / 12.0; // 20–23h
        assert!(peak > 3.0 * trough, "peak {peak} vs trough {trough}");
    }

    #[test]
    fn acf_shows_daily_period() {
        let (trace, sessions) = fixture();
        let c = analyze_concurrency(&sessions, trace.horizon());
        // 2 days of trace → lag 1440 exists and should be a strong peak.
        assert!(c.acf_minutes.len() > 1_440);
        assert!(
            c.acf_minutes[1_440] > 0.3,
            "acf at one day = {}",
            c.acf_minutes[1_440]
        );
        // A detected peak lies within ±60 min of the 1-day lag.
        assert!(
            c.acf_peaks.iter().any(|&p| (p as i64 - 1_440).abs() < 60),
            "peaks {:?}",
            c.acf_peaks
        );
    }

    #[test]
    fn arrivals_match_piecewise_poisson() {
        let (trace, sessions) = fixture();
        let a = analyze_arrivals(&sessions, trace.horizon(), 1);
        // The generator IS piecewise-Poisson, so the Fig 5/6 comparison
        // must come out similar (paper: "surprisingly similar").
        // D stays small but nonzero: Fig 5 uses *different-client*
        // interarrivals while Fig 6 regenerates all arrivals, and both are
        // second-quantized.
        assert!(
            a.ks_actual_vs_synthetic.statistic < 0.1,
            "KS D = {}",
            a.ks_actual_vs_synthetic.statistic
        );
        assert!(a.poisson_windows_tested > 20);
        assert!(
            a.poisson_window_pass_fraction > 0.9,
            "pass fraction {}",
            a.poisson_window_pass_fraction
        );
    }

    #[test]
    fn interest_profile_recovers_exponents() {
        let (trace, sessions) = fixture();
        let i = analyze_interest(&trace, &sessions);
        let sf = i.sessions_fit.expect("enough clients to fit");
        assert!(
            (sf.alpha - 0.4704).abs() < 0.2,
            "session interest alpha {} (fit over the low-noise body)",
            sf.alpha
        );
        let tf = i.transfers_fit.expect("enough clients to fit");
        // Transfers-per-client is interest convolved with transfers-per-
        // session: steeper than the session profile (paper: 0.72 vs 0.47).
        assert!(
            tf.alpha > sf.alpha,
            "transfer {} vs session {}",
            tf.alpha,
            sf.alpha
        );
    }
}
