//! Side-by-side comparison of the exact (batch) and streamed reports.
//!
//! The streaming engine trades the in-RAM trace for sketches with
//! published error bounds; this module renders the two reports next to
//! each other with a per-estimator relative-error column, so a reader can
//! see exactly what the bounded-memory pass gave up — and that the
//! order-exact statistics (session count, ON-time fit, transfers per
//! session) gave up nothing.

use crate::report::CharacterizationReport;
use lsw_stream::StreamReport;
use std::fmt::Write as _;

/// One compared estimator: exact value, streamed value, relative error.
#[derive(Debug, Clone)]
pub struct ComparedValue {
    /// Estimator label, e.g. `"users"` or `"ON-time mu"`.
    pub name: &'static str,
    /// The batch pipeline's exact value.
    pub exact: Option<f64>,
    /// The streaming engine's estimate.
    pub streamed: Option<f64>,
}

impl ComparedValue {
    /// `|streamed - exact| / |exact|`, when both sides exist and the
    /// exact value is non-zero.
    pub fn relative_error(&self) -> Option<f64> {
        match (self.exact, self.streamed) {
            (Some(e), Some(s)) if e != 0.0 => Some((s - e).abs() / e.abs()),
            _ => None,
        }
    }
}

/// Collects every estimator both pipelines produce.
pub fn compare(batch: &CharacterizationReport, stream: &StreamReport) -> Vec<ComparedValue> {
    let mut rows = Vec::new();
    let mut push = |name: &'static str, exact: Option<f64>, streamed: Option<f64>| {
        rows.push(ComparedValue {
            name,
            exact,
            streamed,
        });
    };

    let bs = &batch.summary;
    let ss = &stream.summary;
    push("users", Some(bs.users as f64), Some(ss.users));
    push(
        "client IPs",
        Some(bs.client_ips as f64),
        Some(ss.client_ips),
    );
    push(
        "client ASes",
        Some(bs.client_ases as f64),
        Some(ss.client_ases as f64),
    );
    push(
        "countries",
        Some(bs.countries as f64),
        Some(ss.countries as f64),
    );
    push("objects", Some(bs.objects as f64), Some(ss.objects as f64));
    push(
        "transfers",
        Some(bs.transfers as f64),
        Some(ss.transfers as f64),
    );
    push("terabytes", Some(bs.terabytes()), Some(ss.terabytes));
    push(
        "sessions",
        Some(batch.session.n_sessions as f64),
        Some(stream.n_sessions as f64),
    );
    push(
        "interest transfers alpha",
        batch.client.interest.transfers_fit.map(|f| f.alpha),
        stream.interest_transfers.map(|f| f.alpha),
    );
    push(
        "interest sessions alpha",
        batch.client.interest.sessions_fit.map(|f| f.alpha),
        stream.interest_sessions.map(|f| f.alpha),
    );
    push(
        "ON-time mu",
        batch.session.on_fit.map(|f| f.mu),
        stream.on_fit.map(|f| f.mu),
    );
    push(
        "ON-time sigma",
        batch.session.on_fit.map(|f| f.sigma),
        stream.on_fit.map(|f| f.sigma),
    );
    push(
        "OFF-time mean",
        batch.session.off_fit.map(|f| f.mean),
        stream.off_mean,
    );
    push(
        "transfers/session alpha",
        batch.session.tps_fit.map(|f| f.alpha),
        stream.tps_fit.map(|f| f.alpha),
    );
    push(
        "intra-session IAT mu",
        batch.session.intra_iat_fit.map(|f| f.mu),
        stream.intra_iat_fit.map(|f| f.mu),
    );
    push(
        "intra-session IAT sigma",
        batch.session.intra_iat_fit.map(|f| f.sigma),
        stream.intra_iat_fit.map(|f| f.sigma),
    );
    push(
        "transfer length mu",
        batch.transfer.lengths.fit.map(|f| f.mu),
        stream.transfer_length_fit.map(|f| f.mu),
    );
    push(
        "transfer length sigma",
        batch.transfer.lengths.fit.map(|f| f.sigma),
        stream.transfer_length_fit.map(|f| f.sigma),
    );
    push(
        "IAT tail alpha (short)",
        batch.transfer.arrivals.tail.map(|t| t.alpha_short),
        stream.iat_tail.map(|t| t.alpha_short),
    );
    push(
        "IAT tail alpha (long)",
        batch.transfer.arrivals.tail.map(|t| t.alpha_long),
        stream.iat_tail.map(|t| t.alpha_long),
    );
    push(
        "congestion-bound fraction",
        Some(batch.transfer.bandwidth.congestion_bound_fraction),
        Some(stream.congestion_bound_fraction),
    );
    push(
        "peak concurrent transfers",
        Some(f64::from(batch.transfer.concurrency.peak)),
        Some(f64::from(stream.concurrency.peak)),
    );
    rows
}

/// Renders the comparison as an aligned text table.
pub fn render(batch: &CharacterizationReport, stream: &StreamReport) -> String {
    let rows = compare(batch, stream);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Exact vs streamed (relative error per estimator) ==="
    );
    let _ = writeln!(
        out,
        "{:<28} {:>16} {:>16} {:>10}",
        "estimator", "exact", "streamed", "rel err"
    );
    for row in &rows {
        let fmt = |v: Option<f64>| match v {
            Some(v) if v.abs() >= 1e6 => format!("{v:.3e}"),
            Some(v) => format!("{v:.4}"),
            None => "-".to_string(),
        };
        let err = match row.relative_error() {
            Some(e) => format!("{:.3}%", 100.0 * e),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<28} {:>16} {:>16} {:>10}",
            row.name,
            fmt(row.exact),
            fmt(row.streamed),
            err
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsw_core::config::WorkloadConfig;
    use lsw_core::generator::Generator;
    use lsw_stream::{StreamAnalyzer, StreamConfig};
    use lsw_trace::wms;

    #[test]
    fn compare_covers_the_table_2_estimators() {
        let config = WorkloadConfig::paper().scaled(1_500, 86_400, 6_000);
        let trace = Generator::new(config, 91).unwrap().generate().render();
        let batch = crate::report::characterize(&trace, 1);

        let text = String::from_utf8(wms::format_log(trace.entries()).to_vec()).unwrap();
        let mut engine = StreamAnalyzer::new(StreamConfig {
            horizon: Some(trace.horizon()),
            ..StreamConfig::default()
        });
        engine.ingest_str(&text);
        let stream = engine.finalize();

        let rows = compare(&batch, &stream);
        assert!(rows.len() >= 15);
        // The exact-under-streaming estimators must agree very tightly.
        for name in ["sessions", "transfers", "ON-time mu"] {
            let row = rows.iter().find(|r| r.name == name).unwrap();
            let err = row.relative_error().unwrap();
            assert!(err < 1e-6, "{name}: relative error {err}");
        }
        let rendered = render(&batch, &stream);
        assert!(rendered.contains("rel err"));
        assert!(rendered.contains("transfer length mu"));
    }
}
