//! Transfer-layer characterization (§5 of the paper).
//!
//! Covers: concurrent transfers (Figs 15/16), transfer interarrivals and
//! their two-regime heavy tail (Fig 17), the temporal behavior of mean
//! interarrivals (Fig 18), transfer lengths with the lognormal fit and the
//! stickiness argument (Fig 19), and the bimodal bandwidth marginal
//! (Fig 20).

use crate::marginal::{display_transform, Marginal};
use lsw_stats::fit::{fit_lognormal, two_regime_tail, LogNormalFit, TwoRegimeTail};
use lsw_stats::timeseries::{bin_means, BinnedSeries};
use lsw_trace::concurrency::ConcurrencyProfile;
use lsw_trace::trace::Trace;
use serde::{Deserialize, Serialize};

/// Concurrent transfers over time (Figs 15/16).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferConcurrency {
    /// Marginal of the number of concurrent transfers (Fig 15).
    pub marginal: Marginal,
    /// Mean per 900-s bin over the trace (Fig 16 left).
    pub over_trace: BinnedSeries,
    /// Folded mod one week (Fig 16 center).
    pub weekly: BinnedSeries,
    /// Folded mod one day (Fig 16 right).
    pub daily: BinnedSeries,
    /// Peak concurrent transfers.
    pub peak: u32,
}

/// Transfer interarrival analysis (Figs 17/18).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferArrivals {
    /// Marginal of transfer interarrival times, `⌊t⌋+1` (Fig 17).
    pub interarrivals: Marginal,
    /// The Fig 17 two-regime tail fit (paper: α≈2.8 below 100 s, α≈1
    /// above).
    pub tail: Option<TwoRegimeTail>,
    /// Mean interarrival per 900-s bin over the trace (Fig 18 left).
    pub over_trace: BinnedSeries,
    /// Folded mod one week (Fig 18 center).
    pub weekly: BinnedSeries,
    /// Folded mod one day (Fig 18 right).
    pub daily: BinnedSeries,
}

/// Transfer length analysis (Fig 19 + §5.3 stickiness).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferLengths {
    /// Marginal of transfer lengths, `⌊t⌋+1` (Fig 19).
    pub marginal: Marginal,
    /// Lognormal fit (paper: μ = 4.3839, σ = 1.4272).
    pub fit: Option<LogNormalFit>,
    /// §5.3's stickiness observation quantified: the per-object spread of
    /// transfer lengths. For live content the variability lives *within*
    /// each object (client stickiness), so the ratio of within-object to
    /// total variance of log-lengths is ≈ 1; for stored content object
    /// size differences push it below 1.
    pub within_object_variance_ratio: f64,
}

/// Transfer bandwidth analysis (Fig 20).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferBandwidth {
    /// Marginal of average bandwidth in bits/s (log-binned frequency).
    pub marginal: Marginal,
    /// Fraction of transfers classified congestion-bound: below half the
    /// slowest common access speed observed in the trace's spike structure
    /// (operationalized as < 20 kbit/s; the paper reports ≈ 10%).
    pub congestion_bound_fraction: f64,
    /// Positions (bits/s) of detected spikes in the frequency histogram —
    /// the client-connection-speed modes.
    pub spike_positions: Vec<f64>,
}

/// The full transfer layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferLayer {
    /// Figs 15/16.
    pub concurrency: TransferConcurrency,
    /// Figs 17/18.
    pub arrivals: TransferArrivals,
    /// Fig 19.
    pub lengths: TransferLengths,
    /// Fig 20.
    pub bandwidth: TransferBandwidth,
}

/// Bandwidth threshold (bits/s) below which a transfer is counted as
/// congestion-bound in [`TransferBandwidth`].
pub const CONGESTION_THRESHOLD_BPS: f64 = 20_000.0;

/// Runs the full transfer-layer characterization.
pub fn analyze(trace: &Trace) -> TransferLayer {
    TransferLayer {
        concurrency: analyze_concurrency(trace),
        arrivals: analyze_arrivals(trace),
        lengths: analyze_lengths(trace),
        bandwidth: analyze_bandwidth(trace),
    }
}

/// Figs 15/16.
pub fn analyze_concurrency(trace: &Trace) -> TransferConcurrency {
    let profile = ConcurrencyProfile::transfers(trace.entries(), trace.horizon());
    let samples = profile.samples();
    let marginal = Marginal::linear_binned(&samples, 100).unwrap_or_else(empty_marginal);
    let over_trace = profile.binned_mean(900);
    let weekly = over_trace.fold(7.0 * 86_400.0);
    let daily = over_trace.fold(86_400.0);
    TransferConcurrency {
        marginal,
        over_trace,
        weekly,
        daily,
        peak: profile.peak(),
    }
}

/// Figs 17/18.
pub fn analyze_arrivals(trace: &Trace) -> TransferArrivals {
    let starts: Vec<f64> = trace.start_times().collect();
    let iats: Vec<f64> = starts.windows(2).map(|w| w[1] - w[0]).collect();
    let disp = display_transform(&iats);
    let interarrivals = Marginal::log_binned(&disp, 10).unwrap_or_else(empty_marginal);
    let tail = two_regime_tail(
        &interarrivals.ccdf,
        lsw_stats::paper::TRANSFER_IAT_REGIME_BOUNDARY,
        2.0,
    )
    .ok();

    // Fig 18: mean interarrival per 900-s bin, interarrival attributed to
    // the bin of the later arrival (rounded up to >= 1 s as in the paper).
    let events: Vec<(f64, f64)> = starts
        .windows(2)
        .map(|w| (w[1], (w[1] - w[0]).max(1.0)))
        .collect();
    let horizon = f64::from(trace.horizon());
    let means = bin_means(&events, 900.0, horizon);
    let over_trace = BinnedSeries::new(means.iter().map(|&(m, _)| m).collect(), 900.0);
    let weekly = over_trace.fold(7.0 * 86_400.0);
    let daily = over_trace.fold(86_400.0);
    TransferArrivals {
        interarrivals,
        tail,
        over_trace,
        weekly,
        daily,
    }
}

/// Fig 19 + the §5.3 stickiness ratio.
pub fn analyze_lengths(trace: &Trace) -> TransferLengths {
    let lengths: Vec<f64> = trace
        .entries()
        .iter()
        .map(|e| e.display_duration())
        .collect();
    let marginal = Marginal::log_binned(&lengths, 10).unwrap_or_else(empty_marginal);
    let fit = fit_lognormal(&lengths).ok();

    // Variance decomposition of log-lengths by object.
    // BTreeMap: the within/total variance sums below accumulate floats in
    // iteration order, which must not depend on the process hash seed.
    let mut by_object: std::collections::BTreeMap<u16, Vec<f64>> =
        std::collections::BTreeMap::new();
    for e in trace.entries() {
        by_object
            .entry(e.object.0)
            .or_default()
            .push(e.display_duration().ln());
    }
    let all: Vec<f64> = by_object.values().flatten().copied().collect();
    let within_object_variance_ratio = if all.len() > 1 {
        let grand_mean = all.iter().sum::<f64>() / all.len() as f64;
        let total_var =
            all.iter().map(|&x| (x - grand_mean).powi(2)).sum::<f64>() / all.len() as f64;
        let mut within = 0.0;
        for group in by_object.values() {
            let m = group.iter().sum::<f64>() / group.len() as f64;
            within += group.iter().map(|&x| (x - m).powi(2)).sum::<f64>();
        }
        let within_var = within / all.len() as f64;
        if total_var > 0.0 {
            within_var / total_var
        } else {
            f64::NAN
        }
    } else {
        f64::NAN
    };

    TransferLengths {
        marginal,
        fit,
        within_object_variance_ratio,
    }
}

/// Fig 20.
pub fn analyze_bandwidth(trace: &Trace) -> TransferBandwidth {
    let bws: Vec<f64> = trace
        .entries()
        .iter()
        .map(|e| f64::from(e.avg_bandwidth))
        .collect();
    let marginal = Marginal::log_binned(&bws, 20).unwrap_or_else(empty_marginal);
    let congestion_bound_fraction = if bws.is_empty() {
        f64::NAN
    } else {
        bws.iter()
            .filter(|&&b| b < CONGESTION_THRESHOLD_BPS)
            .count() as f64
            / bws.len() as f64
    };
    // Spikes: prominent local maxima of the frequency histogram. A bin is
    // a spike when it carries >= 2% of the mass and is the maximum within
    // ±2 bins (the access-class modes smear over a few log bins because
    // per-transfer efficiency varies).
    let f = &marginal.frequency;
    let mut spike_positions = Vec::new();
    for i in 0..f.len() {
        let lo = i.saturating_sub(2);
        let hi = (i + 3).min(f.len());
        let is_max = f[lo..hi].iter().all(|&(_, v)| v <= f[i].1);
        if f[i].1 >= 0.02 && is_max {
            spike_positions.push(f[i].0);
        }
    }
    TransferBandwidth {
        marginal,
        congestion_bound_fraction,
        spike_positions,
    }
}

fn empty_marginal() -> Marginal {
    Marginal {
        // lsw::allow(L005): literal one-element slice is never empty
        summary: lsw_stats::empirical::Summary::from_data(&[0.0]).expect("non-empty"),
        frequency: Vec::new(),
        cdf: Vec::new(),
        ccdf: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsw_core::config::WorkloadConfig;
    use lsw_core::generator::Generator;

    fn fixture() -> Trace {
        let config = WorkloadConfig::paper().scaled(1_500, 2 * 86_400, 15_000);
        Generator::new(config, 55).unwrap().generate().render()
    }

    #[test]
    fn concurrency_diurnal() {
        let trace = fixture();
        let c = analyze_concurrency(&trace);
        assert!(c.peak > 0);
        assert_eq!(c.daily.values.len(), 96);
        let trough: f64 = c.daily.values[24..36].iter().sum::<f64>() / 12.0;
        let peak: f64 = c.daily.values[80..92].iter().sum::<f64>() / 12.0;
        assert!(peak > 3.0 * trough, "peak {peak} vs trough {trough}");
    }

    #[test]
    fn interarrival_two_regime_tail_measured_correctly() {
        // Fig 17's two regimes are a *full-scale* emergent property (the
        // >100 s tail needs dead-of-night gaps that a small fixture never
        // produces); here we verify the measurement machinery on a trace
        // built with a known two-regime interarrival structure.
        use lsw_stats::dist::{Exponential, Pareto, Sample};
        use lsw_stats::SeedStream;
        use lsw_trace::event::LogEntryBuilder;
        use lsw_trace::ids::ClientId;
        let body = Exponential::with_mean(2.0).unwrap();
        let tail_d = Pareto::new(100.0, 1.0).unwrap();
        let mut rng = SeedStream::new(9).rng("fig17-machinery");
        let mut t = 0.0f64;
        let mut entries = Vec::new();
        for i in 0..60_000u32 {
            let gap = if i % 500 == 499 {
                tail_d.sample(&mut rng)
            } else {
                body.sample(&mut rng)
            };
            t += gap;
            entries.push(
                LogEntryBuilder::new()
                    .span(t as u32, 10)
                    .client(ClientId(i % 97))
                    .build(),
            );
        }
        let horizon = t as u32 + 100;
        let trace = Trace::from_entries(entries, horizon);
        let a = analyze_arrivals(&trace);
        let tail = a.tail.expect("tail fit available");
        assert!(
            tail.alpha_short > tail.alpha_long + 0.5,
            "short {} vs long {}",
            tail.alpha_short,
            tail.alpha_long
        );
        // The long regime is the planted Pareto(α = 1).
        assert!(
            (tail.alpha_long - 1.0).abs() < 0.4,
            "long {}",
            tail.alpha_long
        );
    }

    #[test]
    fn interarrival_diurnal_inverted() {
        // Fig 18: interarrivals are LONG in the dead hours, SHORT at peak.
        let trace = fixture();
        let a = analyze_arrivals(&trace);
        let daily = &a.daily.values;
        let morning: f64 = daily[24..36].iter().filter(|v| !v.is_nan()).sum::<f64>()
            / daily[24..36].iter().filter(|v| !v.is_nan()).count().max(1) as f64;
        let evening: f64 = daily[80..92].iter().filter(|v| !v.is_nan()).sum::<f64>()
            / daily[80..92].iter().filter(|v| !v.is_nan()).count().max(1) as f64;
        assert!(
            morning > 2.0 * evening,
            "morning mean IAT {morning} vs evening {evening}"
        );
    }

    #[test]
    fn lengths_lognormal_and_sticky() {
        let trace = fixture();
        let l = analyze_lengths(&trace);
        let fit = l.fit.expect("fit available");
        assert!((fit.mu - 4.384).abs() < 0.15, "length mu {}", fit.mu);
        assert!(
            (fit.sigma - 1.427).abs() < 0.15,
            "length sigma {}",
            fit.sigma
        );
        // Live content: nearly all length variance is within-object.
        assert!(
            l.within_object_variance_ratio > 0.98,
            "within-object ratio {}",
            l.within_object_variance_ratio
        );
    }

    #[test]
    fn bandwidth_bimodal() {
        let trace = fixture();
        let b = analyze_bandwidth(&trace);
        assert!(
            (b.congestion_bound_fraction - 0.10).abs() < 0.04,
            "congestion fraction {}",
            b.congestion_bound_fraction
        );
        // At least two client-speed spikes detected (56k dominates).
        assert!(
            !b.spike_positions.is_empty(),
            "no bandwidth spikes found; frequency = {:?}",
            b.marginal.frequency
        );
    }
}
