//! The full hierarchical characterization report.
//!
//! [`characterize`] runs all three layers over a trace and bundles the
//! results with the Table-1 summary. The report serializes to JSON (for
//! the experiment harness) and renders as text (for humans).

use crate::client_layer::{self, ClientLayer};
use crate::session_layer::{self, SessionLayer};
use crate::transfer_layer::{self, TransferLayer};
use lsw_trace::sanitize::SanitizeReport;
use lsw_trace::session::{SessionConfig, Sessions};
use lsw_trace::trace::{Trace, TraceSummary};
use serde::{Deserialize, Serialize};

/// The complete characterization of one trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CharacterizationReport {
    /// Table 1.
    pub summary: TraceSummary,
    /// Session timeout used.
    pub session_timeout: f64,
    /// §2.4 ingest accounting (discarded pathologies + overload audit),
    /// when the caller sanitized a raw log. Present so batch and streamed
    /// reports account for their input identically.
    pub ingest: Option<SanitizeReport>,
    /// §3.
    pub client: ClientLayer,
    /// §4.
    pub session: SessionLayer,
    /// §5.
    pub transfer: TransferLayer,
}

impl CharacterizationReport {
    /// Serializes to pretty JSON.
    ///
    /// Note: `NaN` values (empty temporal bins, undefined ratios) become
    /// JSON `null`; the report is therefore not round-trippable into the
    /// typed struct, only into a generic JSON value.
    pub fn to_json(&self) -> String {
        // lsw::allow(L005): plain struct of numbers/strings always serializes
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Attaches the §2.4 sanitization accounting to the report.
    pub fn with_ingest(mut self, ingest: SanitizeReport) -> Self {
        self.ingest = Some(ingest);
        self
    }

    /// Renders the headline numbers as text (Table 2 style).
    pub fn headline(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if let Some(ingest) = &self.ingest {
            let _ = writeln!(out, "=== Ingest accounting (2.4) ===");
            let _ = writeln!(
                out,
                "Entries examined        {}  (kept {}, rejected {})",
                ingest.examined,
                ingest.kept,
                ingest.rejected()
            );
            for (reason, n) in &ingest.rejects {
                let _ = writeln!(out, "  discarded {n:>8}  {reason:?}");
            }
            let _ = writeln!(
                out,
                "Server underload        {:.4} of time, {:.4} of transfers  (paper > 0.9999)",
                ingest.underload_time_fraction, ingest.underload_transfer_fraction
            );
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "=== Trace summary (Table 1) ===");
        let _ = writeln!(out, "{}", self.summary);
        let _ = writeln!(out, "Total # of sessions     {}", self.session.n_sessions);
        let _ = writeln!(out);
        let _ = writeln!(out, "=== Fitted model (Table 2) ===");
        if let Some(f) = &self.client.interest.sessions_fit {
            let _ = writeln!(
                out,
                "Client interest (sessions)     Zipf alpha = {:.4}  (paper 0.4704)",
                f.alpha
            );
        }
        if let Some(f) = &self.client.interest.transfers_fit {
            let _ = writeln!(
                out,
                "Client interest (transfers)    Zipf alpha = {:.4}  (paper 0.7194)",
                f.alpha
            );
        }
        if let Some(f) = &self.session.tps_fit {
            let _ = writeln!(
                out,
                "Transfers per session          Zipf alpha = {:.4}  (paper 2.7042)",
                f.alpha
            );
        }
        if let Some(f) = &self.session.intra_iat_fit {
            let _ = writeln!(
                out,
                "Intra-session interarrival     Lognormal mu = {:.3}, sigma = {:.3}  (paper 4.900, 1.321)",
                f.mu, f.sigma
            );
        }
        if let Some(f) = &self.transfer.lengths.fit {
            let _ = writeln!(
                out,
                "Transfer length                Lognormal mu = {:.3}, sigma = {:.3}  (paper 4.384, 1.427)",
                f.mu, f.sigma
            );
        }
        if let Some(f) = &self.session.on_fit {
            let _ = writeln!(
                out,
                "Session ON time                Lognormal mu = {:.3}, sigma = {:.3}  (paper 5.236, 1.544)",
                f.mu, f.sigma
            );
        }
        if let Some(f) = &self.session.off_fit {
            let _ = writeln!(
                out,
                "Session OFF time               Exponential mean = {:.0} s  (paper 203,150)",
                f.mean
            );
        }
        if let Some(t) = &self.transfer.arrivals.tail {
            let _ = writeln!(
                out,
                "Transfer IAT tail              alpha = {:.2} (<=100 s), {:.2} (>100 s)  (paper 2.8, 1.0)",
                t.alpha_short, t.alpha_long
            );
        }
        let _ = writeln!(
            out,
            "Congestion-bound transfers     {:.1}%  (paper ~10%)",
            100.0 * self.transfer.bandwidth.congestion_bound_fraction
        );
        out
    }
}

/// Joins a layer thread, re-raising any panic with its original payload
/// rather than wrapping it in a second panic site here.
fn join_layer<T>(handle: std::thread::ScopedJoinHandle<'_, T>) -> T {
    match handle.join() {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Runs the full hierarchical characterization with the paper's default
/// session timeout. `seed` feeds only the Fig 6 synthetic regeneration.
pub fn characterize(trace: &Trace, seed: u64) -> CharacterizationReport {
    characterize_with(trace, SessionConfig::default(), seed)
}

/// Runs the characterization with an explicit session configuration.
///
/// The three layers are independent given the trace and the sessionization,
/// so they run concurrently on scoped threads; each layer parallelizes
/// further internally. Results are identical to running them sequentially.
pub fn characterize_with(
    trace: &Trace,
    config: SessionConfig,
    seed: u64,
) -> CharacterizationReport {
    let sessions = Sessions::identify(trace, config);
    let (client, session, transfer) = crossbeam::thread::scope(|s| {
        let client = s.spawn(|| client_layer::analyze(trace, &sessions, seed));
        let session = s.spawn(|| session_layer::analyze(trace, &sessions));
        let transfer = s.spawn(|| transfer_layer::analyze(trace));
        (
            join_layer(client),
            join_layer(session),
            join_layer(transfer),
        )
    });
    CharacterizationReport {
        summary: trace.summary(),
        session_timeout: config.timeout,
        ingest: None,
        client,
        session,
        transfer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsw_core::config::WorkloadConfig;
    use lsw_core::generator::Generator;

    fn report() -> CharacterizationReport {
        let config = WorkloadConfig::paper().scaled(1_000, 86_400, 8_000);
        let trace = Generator::new(config, 66).unwrap().generate().render();
        characterize(&trace, 1)
    }

    #[test]
    fn report_is_complete_and_serializable() {
        let r = report();
        assert!(r.summary.transfers > 1_000);
        assert!(r.session.n_sessions > 1_000);
        let json = r.to_json();
        assert!(json.len() > 10_000);
        // NaN fields serialize as null, so parse generically and spot-check.
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(
            v["summary"]["transfers"].as_u64().unwrap() as usize,
            r.summary.transfers
        );
        assert!(v["session"]["n_sessions"].as_u64().unwrap() > 0);
    }

    #[test]
    fn headline_mentions_every_fit() {
        let r = report();
        let text = r.headline();
        for needle in [
            "Client interest (sessions)",
            "Transfers per session",
            "Intra-session interarrival",
            "Transfer length",
            "Session ON time",
            "Congestion-bound",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn custom_timeout_respected() {
        let config = WorkloadConfig::paper().scaled(500, 43_200, 2_000);
        let trace = Generator::new(config, 67).unwrap().generate().render();
        let strict = characterize_with(&trace, SessionConfig { timeout: 60.0 }, 1);
        let loose = characterize_with(&trace, SessionConfig { timeout: 4_000.0 }, 1);
        assert!(strict.session.n_sessions >= loose.session.n_sessions);
        assert_eq!(strict.session_timeout, 60.0);
    }
}
