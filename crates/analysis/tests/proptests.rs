//! Property-based tests for the characterizer: any trace the pipeline can
//! produce must yield a structurally sound report.

use lsw_analysis::marginal::{display_transform, Marginal};
use lsw_analysis::{characterize_with, session_layer};
use lsw_core::config::WorkloadConfig;
use lsw_core::generator::Generator;
use lsw_trace::session::{SessionConfig, Sessions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn report_structurally_sound(
        n_clients in 300usize..3_000,
        sessions in 500usize..4_000,
        seed in 0u64..500,
        timeout in 300.0..3_000.0f64,
    ) {
        let config = WorkloadConfig::paper().scaled(n_clients, 86_400, sessions);
        let trace = Generator::new(config, seed).unwrap().generate().render();
        let report = characterize_with(&trace, SessionConfig { timeout }, seed);

        // Table 1 consistency.
        prop_assert_eq!(report.summary.transfers, trace.len());
        prop_assert!(report.summary.users <= n_clients);
        prop_assert!(report.session.n_sessions >= 1);
        prop_assert!(report.session.n_sessions <= trace.len());

        // Marginals: CDF endpoints and frequency normalization.
        for m in [
            &report.session.on_times,
            &report.session.intra_iat,
            &report.transfer.lengths.marginal,
            &report.client.arrivals.interarrivals,
        ] {
            if m.summary.n > 1 {
                let last = m.cdf.last().map(|&(_, p)| p).unwrap_or(1.0);
                prop_assert!((last - 1.0).abs() < 1e-9, "CDF must end at 1");
                let first_ccdf = m.ccdf.first().map(|&(_, p)| p).unwrap_or(1.0);
                prop_assert!((first_ccdf - 1.0).abs() < 1e-9, "CCDF must start at 1");
                let mass: f64 = m.frequency.iter().map(|&(_, f)| f).sum();
                prop_assert!(mass <= 1.0 + 1e-9);
            }
        }

        // Concurrency: peak consistent between layers; daily fold has
        // exactly 96 bins for a 1-day trace.
        prop_assert_eq!(report.client.concurrency.daily.values.len(), 96);
        prop_assert!(report.transfer.concurrency.peak as usize <= trace.len());

        // Timeout sweep monotone.
        let sweep = &report.session.timeout_sweep;
        prop_assert!(sweep.points.windows(2).all(|w| w[0].1 >= w[1].1));

        // Geo shares normalized.
        let share: f64 = report.client.geo.country_transfers.iter().map(|c| c.1).sum();
        prop_assert!((share - 1.0).abs() < 1e-9);

        // Headline renders without panicking and mentions the trace size.
        let text = report.headline();
        prop_assert!(text.contains("Table 1"));
    }

    #[test]
    fn display_transform_is_monotone_and_positive(
        data in prop::collection::vec(0.0..1e6f64, 1..200),
    ) {
        let out = display_transform(&data);
        prop_assert!(out.iter().all(|&x| x >= 1.0));
        for (a, b) in data.iter().zip(&out) {
            prop_assert!(b >= a, "transform must not shrink values");
            prop_assert!(*b <= a + 1.0 + 1e-9);
        }
    }

    #[test]
    fn marginal_handles_any_positive_data(
        data in prop::collection::vec(0.001..1e9f64, 1..500),
        per_decade in 1usize..20,
    ) {
        let m = Marginal::log_binned(&data, per_decade).unwrap();
        prop_assert_eq!(m.summary.n, data.len());
        // All frequencies positive, mass conserved.
        prop_assert!(m.frequency.iter().all(|&(_, f)| f > 0.0));
        let mass: f64 = m.frequency.iter().map(|&(_, f)| f).sum();
        prop_assert!((mass - 1.0).abs() < 1e-6, "mass {}", mass);
    }

    #[test]
    fn timeout_sweep_matches_direct_sessionization(
        seed in 0u64..200,
    ) {
        let config = WorkloadConfig::paper().scaled(800, 43_200, 1_500);
        let trace = Generator::new(config, seed).unwrap().generate().render();
        let sweep = session_layer::sweep_timeouts(&trace, &[600.0, 1_500.0]);
        for &(t, n) in &sweep.points {
            let direct = Sessions::identify(&trace, SessionConfig { timeout: t }).len();
            prop_assert_eq!(n, direct);
        }
    }
}
