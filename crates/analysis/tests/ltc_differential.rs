//! Differential test: characterizing a log through the `ltc` binary path
//! must produce the byte-identical report the `wms` text path produces.
//!
//! The fixture trace goes through the text format once first, so both
//! pipelines see the same text-rounded float values — the comparison then
//! isolates the container, not the text formatter's precision.

use lsw_analysis::characterize_with;
use lsw_core::config::WorkloadConfig;
use lsw_core::generator::Generator;
use lsw_trace::ltc;
use lsw_trace::sanitize::sanitize;
use lsw_trace::session::SessionConfig;
use lsw_trace::trace::Trace;
use lsw_trace::wms;

fn characterize_json(trace: &Trace) -> String {
    characterize_with(trace, SessionConfig { timeout: 1_500.0 }, 7).to_json()
}

#[test]
fn ltc_and_wms_paths_agree_report_for_report() {
    let config = WorkloadConfig::paper().scaled(900, 40_000, 1_400);
    let rendered = Generator::new(config, 11).unwrap().generate().render();

    // Canonical entries: through the text format once (float rounding).
    let text = wms::format_log(rendered.entries());
    let entries = wms::parse_log(std::str::from_utf8(&text).unwrap()).unwrap();
    let horizon = entries.iter().map(|e| e.stop()).max().unwrap() + 1;

    // wms path: parse -> sanitize -> characterize.
    let (trace_wms, report_wms) = sanitize(entries.clone(), horizon);

    // ltc path: encode -> decode -> sanitize -> characterize.
    let image = ltc::encode(&entries).unwrap();
    let (decoded, stats) = ltc::BlockReader::open(ltc::SliceSource::new(&image))
        .unwrap()
        .read_all()
        .unwrap();
    assert_eq!(stats.corrupt_blocks, 0);
    let (trace_ltc, report_ltc) = sanitize(decoded, horizon);

    assert_eq!(report_ltc.rejected(), report_wms.rejected());
    assert_eq!(trace_ltc.entries(), trace_wms.entries());
    assert_eq!(characterize_json(&trace_ltc), characterize_json(&trace_wms));
}
