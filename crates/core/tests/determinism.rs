//! The tentpole guarantee: generation is bit-identical at every thread
//! count. One worker, two workers, eight workers — same sessions, same
//! transfers, same rendered log bytes.

use lsw_core::config::WorkloadConfig;
use lsw_core::generator::Generator;
use lsw_stats::dist::SamplerBackend;
use lsw_stats::par::Parallelism;
use lsw_trace::wms;

fn config() -> WorkloadConfig {
    WorkloadConfig::paper().scaled(3_000, 86_400, 9_000)
}

#[test]
fn workload_identical_across_thread_counts() {
    let base = Generator::new(config(), 5)
        .unwrap()
        .with_parallelism(Parallelism::fixed(1))
        .generate();
    assert!(base.len() > 5_000, "fixture too small to exercise chunking");
    for threads in [2, 3, 8] {
        let w = Generator::new(config(), 5)
            .unwrap()
            .with_parallelism(Parallelism::fixed(threads))
            .generate();
        assert_eq!(
            base.sessions(),
            w.sessions(),
            "sessions differ at {threads} threads"
        );
        assert_eq!(
            base.transfers(),
            w.transfers(),
            "transfers differ at {threads} threads"
        );
    }
}

#[test]
fn rendered_log_bytes_identical_across_thread_counts() {
    let render = |threads: usize| {
        let w = Generator::new(config(), 17)
            .unwrap()
            .with_parallelism(Parallelism::fixed(threads))
            .generate();
        wms::format_log(w.render().entries())
    };
    let base = render(1);
    assert_eq!(base, render(2));
    assert_eq!(base, render(8));
}

#[test]
fn alias_backend_identical_across_thread_counts() {
    // The O(1) alias sampler must uphold the same guarantee: for a fixed
    // backend, thread count never changes a byte.
    let gen = |threads: usize| {
        Generator::new(config(), 5)
            .unwrap()
            .with_sampler_backend(SamplerBackend::Alias)
            .unwrap()
            .with_parallelism(Parallelism::fixed(threads))
            .generate()
    };
    let base = gen(1);
    assert!(base.len() > 5_000, "fixture too small to exercise chunking");
    for threads in [2, 8] {
        let w = gen(threads);
        assert_eq!(
            base.sessions(),
            w.sessions(),
            "sessions differ at {threads} threads"
        );
        assert_eq!(
            base.transfers(),
            w.transfers(),
            "transfers differ at {threads} threads"
        );
    }
}

#[test]
fn backends_produce_distinct_but_equally_sized_workloads() {
    // Alias consumes two uniforms per interest draw, inverse-CDF one: the
    // same seed must therefore yield *different* concrete workloads (the
    // backend is part of the determinism contract, not a transparent
    // optimization) while preserving the arrival process, which is drawn
    // from an independent substream.
    let cdf = Generator::new(config(), 5).unwrap().generate();
    let alias = Generator::new(config(), 5)
        .unwrap()
        .with_sampler_backend(SamplerBackend::Alias)
        .unwrap()
        .generate();
    assert_eq!(cdf.sessions().len(), alias.sessions().len());
    assert_ne!(cdf.transfers(), alias.transfers());
}

#[test]
fn more_workers_than_arrivals_is_fine() {
    // Degenerate chunking: far more workers than sessions.
    let config = WorkloadConfig::paper().scaled(50, 3_600, 20);
    let seq = Generator::new(config.clone(), 3)
        .unwrap()
        .with_parallelism(Parallelism::fixed(1))
        .generate();
    let wide = Generator::new(config, 3)
        .unwrap()
        .with_parallelism(Parallelism::fixed(64))
        .generate();
    assert_eq!(seq.transfers(), wide.transfers());
    assert_eq!(seq.sessions(), wide.sessions());
}
