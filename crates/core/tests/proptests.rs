//! Property-based tests for the GISMO-Live generator: structural
//! invariants that must hold for any configuration and seed.

use lsw_core::config::{TransfersPerSession, WorkloadConfig};
use lsw_core::diurnal::DiurnalProfile;
use lsw_core::generator::Generator;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = WorkloadConfig> {
    (
        50usize..2_000,    // clients
        3_600u32..172_800, // horizon
        100usize..3_000,   // sessions
        0.0..1.2f64,       // interest alpha
        prop_oneof![
            (1.5..4.0f64).prop_map(|alpha| TransfersPerSession::Zipf { alpha }),
            (1.0..8.0f64).prop_map(|mean| TransfersPerSession::Geometric { mean }),
            (1.5..4.0f64, 0.0..1.0f64, 1.0..8.0f64).prop_map(|(alpha, p_tail, body_mean)| {
                TransfersPerSession::Hybrid {
                    alpha,
                    p_tail,
                    body_mean,
                }
            }),
        ],
    )
        .prop_map(|(n_clients, horizon, sessions, alpha, tps)| {
            let mut c = WorkloadConfig::paper().scaled(n_clients, horizon, sessions);
            c.interest_alpha = alpha;
            c.transfers_per_session = tps;
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn workload_structural_invariants(config in arb_config(), seed in 0u64..10_000) {
        let horizon = f64::from(config.horizon_secs);
        let n_clients = config.n_clients;
        let w = Generator::new(config, seed).unwrap().generate();

        // Transfers sorted, in-horizon, owned by valid clients/sessions.
        let mut prev = 0.0;
        for t in w.transfers() {
            prop_assert!(t.start >= prev);
            prop_assert!(t.start >= 0.0 && t.start < horizon);
            prop_assert!(t.duration >= 0.0);
            prop_assert!(t.start + t.duration <= horizon + 1e-9);
            prop_assert!((t.client.0 as usize) < n_clients);
            prop_assert!((t.session as usize) < w.sessions().len());
            prev = t.start;
        }
        // Per-session transfer counts agree with ground truth.
        let mut counts = vec![0u32; w.sessions().len()];
        for t in w.transfers() {
            counts[t.session as usize] += 1;
        }
        for (c, s) in counts.iter().zip(w.sessions()) {
            prop_assert_eq!(*c, s.n_transfers);
            prop_assert!(s.n_transfers >= 1);
            prop_assert!(s.start >= 0.0 && s.start < horizon);
        }
    }

    #[test]
    fn render_conserves_and_quantizes(config in arb_config(), seed in 0u64..10_000) {
        let horizon = config.horizon_secs;
        let w = Generator::new(config, seed).unwrap().generate();
        let trace = w.render();
        prop_assert_eq!(trace.len(), w.len());
        for e in trace.entries() {
            prop_assert!(e.validate().is_ok());
            prop_assert!(e.stop() <= horizon);
        }
        // Rendered summary sees at most the configured population.
        let s = trace.summary();
        prop_assert!(s.users <= w.population().len());
        prop_assert!(s.objects <= 2);
    }

    #[test]
    fn seed_determinism(config in arb_config(), seed in 0u64..10_000) {
        let a = Generator::new(config.clone(), seed).unwrap().generate();
        let b = Generator::new(config, seed).unwrap().generate();
        prop_assert_eq!(a.transfers(), b.transfers());
    }

    #[test]
    fn flat_profile_generates(seed in 0u64..1_000) {
        let config = WorkloadConfig::paper().scaled(100, 7_200, 300);
        let g = Generator::with_profile(config, seed, DiurnalProfile::flat()).unwrap();
        let w = g.generate();
        prop_assert!(!w.is_empty());
    }
}
