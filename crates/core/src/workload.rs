//! The generated workload and its rendering into a trace.
//!
//! A [`Workload`] is the generator's output before log quantization:
//! scheduled sessions and transfers with full `f64` timing. [`render`]
//! turns it into an `lsw-trace` [`Trace`] the way a Windows Media Server
//! would have recorded it: 1-second timestamps, per-transfer bandwidth
//! from the bimodal model, bytes, packet loss, and a CPU reading derived
//! from actual transfer concurrency.
//!
//! [`render`]: Workload::render

use crate::bandwidth::BandwidthModel;
use crate::config::WorkloadConfig;
use lsw_stats::par::Parallelism;
use lsw_stats::rng::SeedStream;
use lsw_topology::ClientPopulation;
use lsw_trace::concurrency::ConcurrencyProfile;
use lsw_trace::event::LogEntry;
use lsw_trace::ids::{ClientId, ObjectId};
use lsw_trace::trace::Trace;
use serde::{Deserialize, Serialize};

/// One scheduled transfer (pre-quantization).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledTransfer {
    /// Index of the owning session in [`Workload::sessions`].
    pub session: u32,
    /// Owning client.
    pub client: ClientId,
    /// The feed joined.
    pub object: ObjectId,
    /// Camera the feed was showing at the start.
    pub camera: u8,
    /// Start time, seconds (fractional).
    pub start: f64,
    /// Duration, seconds (fractional).
    pub duration: f64,
}

/// One generated session (the generator's ground truth — what the
/// sessionizer should approximately recover).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratedSession {
    /// Owning client.
    pub client: ClientId,
    /// Arrival time, seconds.
    pub start: f64,
    /// Number of transfers generated within the session.
    pub n_transfers: u32,
}

/// Number of concurrent transfers that drives the server CPU to 100% in
/// the rendered logs. Chosen so the paper's observed peaks (~6,000
/// concurrent transfers) sit below 10% utilization, matching §2.4.
pub const CPU_CAPACITY_TRANSFERS: f64 = 75_000.0;

/// A generated live-media workload.
#[derive(Debug, Clone)]
pub struct Workload {
    config: WorkloadConfig,
    seeds: SeedStream,
    population: ClientPopulation,
    sessions: Vec<GeneratedSession>,
    transfers: Vec<ScheduledTransfer>,
}

impl Workload {
    /// Assembles a workload (used by [`crate::generator::Generator`]).
    pub(crate) fn new(
        config: WorkloadConfig,
        seeds: SeedStream,
        population: ClientPopulation,
        sessions: Vec<GeneratedSession>,
        transfers: Vec<ScheduledTransfer>,
    ) -> Self {
        Self {
            config,
            seeds,
            population,
            sessions,
            transfers,
        }
    }

    /// The configuration that produced this workload.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The client population behind the workload.
    pub fn population(&self) -> &ClientPopulation {
        &self.population
    }

    /// Ground-truth sessions, in arrival order.
    pub fn sessions(&self) -> &[GeneratedSession] {
        &self.sessions
    }

    /// Scheduled transfers, in start order.
    pub fn transfers(&self) -> &[ScheduledTransfer] {
        &self.transfers
    }

    /// Number of scheduled transfers.
    pub fn len(&self) -> usize {
        self.transfers.len()
    }

    /// True when no transfers were generated.
    pub fn is_empty(&self) -> bool {
        self.transfers.is_empty()
    }

    /// Renders the workload as a server log trace.
    ///
    /// Times are floored to whole seconds (the WMS resolution); each
    /// transfer gets a bandwidth/loss draw from the bimodal model and a
    /// CPU reading computed from the true transfer concurrency at its stop
    /// second (scaled by [`CPU_CAPACITY_TRANSFERS`]).
    pub fn render(&self) -> Trace {
        let model = BandwidthModel::new(self.config.bandwidth)
            // lsw::allow(L005): Generator::new validated the bandwidth config
            .expect("config validated at generation time");
        let mut rng = self.seeds.rng("render-bandwidth");
        let horizon = self.config.horizon_secs;

        // First pass: quantize times.
        let mut spans: Vec<(u32, u32)> = Vec::with_capacity(self.transfers.len());
        for t in &self.transfers {
            let start = (t.start.max(0.0) as u32).min(horizon.saturating_sub(1));
            let stop_f = (t.start + t.duration).min(f64::from(horizon));
            let stop = (stop_f as u32).max(start);
            spans.push((start, stop - start));
        }

        // Transfer concurrency drives the logged CPU utilization.
        let intervals: Vec<(u32, u32)> = spans.iter().map(|&(s, d)| (s, s + d)).collect();
        let concurrency =
            ConcurrencyProfile::from_intervals_par(&intervals, horizon, Parallelism::auto());

        let mut entries = Vec::with_capacity(self.transfers.len());
        for (t, &(start, duration)) in self.transfers.iter().zip(&spans) {
            let info = self.population.get(t.client);
            let draw = model.sample(&mut rng, info.access);
            let bytes = (t.duration.max(0.0) * f64::from(draw.bps) / 8.0) as u64;
            let stop = start + duration;
            let cpu = (f64::from(concurrency.at(stop)) / CPU_CAPACITY_TRANSFERS).min(1.0);
            entries.push(LogEntry {
                timestamp: stop,
                start,
                duration,
                client: t.client,
                ip: info.ip,
                as_id: info.as_id,
                country: info.country,
                object: t.object,
                camera: t.camera,
                bytes,
                avg_bandwidth: draw.bps,
                packet_loss: draw.packet_loss,
                cpu_util: cpu as f32,
                status: 200,
            });
        }
        Trace::from_entries(entries, horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Generator;

    fn small_workload() -> Workload {
        let config = WorkloadConfig::paper().scaled(500, 43_200, 1_500);
        Generator::new(config, 7).unwrap().generate()
    }

    #[test]
    fn render_preserves_transfer_count() {
        let w = small_workload();
        let trace = w.render();
        assert_eq!(trace.len(), w.len());
        assert!(!trace.is_empty());
    }

    #[test]
    fn rendered_entries_are_valid_and_bounded() {
        let w = small_workload();
        let trace = w.render();
        for e in trace.entries() {
            assert!(e.validate().is_ok(), "{:?}", e.validate());
            assert!(e.start < w.config().horizon_secs);
            assert!(e.stop() <= w.config().horizon_secs);
            assert!(e.avg_bandwidth > 0);
        }
    }

    #[test]
    fn rendered_cpu_stays_low_at_small_scale() {
        // §2.4: the server is far from overload; at test scale even more so.
        let w = small_workload();
        let trace = w.render();
        assert!(trace.entries().iter().all(|e| e.cpu_util < 0.10));
    }

    #[test]
    fn render_is_deterministic() {
        let w = small_workload();
        let a = w.render();
        let b = w.render();
        assert_eq!(a.entries(), b.entries());
    }

    #[test]
    fn bytes_consistent_with_bandwidth_and_duration() {
        let w = small_workload();
        let trace = w.render();
        for e in trace.entries().iter().take(500) {
            // bytes ≈ duration × bw/8, using the *fractional* duration, so
            // allow the quantization slack of one second of bandwidth.
            let upper = (f64::from(e.duration) + 1.5) * f64::from(e.avg_bandwidth) / 8.0;
            assert!(
                (e.bytes as f64) <= upper + 1.0,
                "bytes {} vs upper {upper}",
                e.bytes
            );
        }
    }
}
