//! Self-validation: does a generated workload match its own targets?
//!
//! The generator's contract is distributional; [`validate_workload`]
//! checks it by fitting the generated marginals and comparing against the
//! configuration. This is the fast, trace-free half of the closed loop
//! (the full loop — through log rendering, sanitization and the
//! characterizer — lives in `lsw-figures`).

use crate::config::{TransfersPerSession, WorkloadConfig};
use crate::workload::Workload;
use lsw_stats::dist::{Continuous, LogNormal};
use lsw_stats::empirical::RankFrequency;
use lsw_stats::fit::{fit_lognormal, fit_zipf_rank_frequency};
use lsw_stats::hypothesis::ks_test;
use serde::{Deserialize, Serialize};

/// One checked quantity: target, recovered value, and pass/fail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Check {
    /// What was checked.
    pub name: String,
    /// Configured target value.
    pub target: f64,
    /// Value recovered from the generated workload.
    pub recovered: f64,
    /// Tolerance used (absolute).
    pub tolerance: f64,
}

impl Check {
    /// Whether the recovered value is within tolerance.
    pub fn passed(&self) -> bool {
        (self.recovered - self.target).abs() <= self.tolerance
    }
}

/// A validation report over all checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Individual checks.
    pub checks: Vec<Check>,
    /// KS p-value of transfer lengths against the configured lognormal.
    pub transfer_length_ks_p: f64,
}

impl ValidationReport {
    /// True when every check passed.
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(Check::passed)
    }

    /// Names of failed checks.
    pub fn failures(&self) -> Vec<&str> {
        self.checks
            .iter()
            .filter(|c| !c.passed())
            .map(|c| c.name.as_str())
            .collect()
    }
}

/// Validates a workload against its configuration.
///
/// Horizon-clipped transfers are excluded from length fits (clipping is a
/// deliberate departure from the ideal distribution at the trace edge).
pub fn validate_workload(w: &Workload) -> ValidationReport {
    let cfg: &WorkloadConfig = w.config();
    let horizon = f64::from(cfg.horizon_secs);
    let mut checks = Vec::new();

    // Session count vs target (Poisson tolerance: 5 sigma).
    let n_sessions = w.sessions().len() as f64;
    checks.push(Check {
        name: "session count".into(),
        target: cfg.target_sessions as f64,
        recovered: n_sessions,
        tolerance: 5.0 * (cfg.target_sessions as f64).sqrt().max(1.0),
    });

    // Transfer lengths: lognormal parameter recovery + KS.
    let lengths: Vec<f64> = w
        .transfers()
        .iter()
        .filter(|t| t.start + t.duration < horizon - 1.0 && t.duration > 0.0)
        .map(|t| t.duration)
        .collect();
    let mut ks_p = f64::NAN;
    if lengths.len() > 100 {
        if let Ok(f) = fit_lognormal(&lengths) {
            checks.push(Check {
                name: "transfer length mu".into(),
                target: cfg.transfer_length.mu,
                recovered: f.mu,
                tolerance: 0.1,
            });
            checks.push(Check {
                name: "transfer length sigma".into(),
                target: cfg.transfer_length.sigma,
                recovered: f.sigma,
                tolerance: 0.1,
            });
        }
        let d = LogNormal::new(cfg.transfer_length.mu, cfg.transfer_length.sigma)
            // lsw::allow(L005): Generator::new validated mu/sigma
            .expect("validated config");
        // KS on a subsample: at full scale the test is hypersensitive to
        // the horizon clipping, which is expected, not an error.
        let sample: Vec<f64> = lengths
            .iter()
            .step_by((lengths.len() / 2_000).max(1))
            .copied()
            .collect();
        ks_p = ks_test(&sample, |x| d.cdf(x)).map_or(f64::NAN, |r| r.p_value);
    }

    // Intra-session interarrivals, grouped by ground-truth session index.
    let mut iats = Vec::new();
    {
        // BTreeMap: the per-session gaps feed fit_lognormal's float sums in
        // iteration order, which must not depend on the process hash seed.
        let mut by_session: std::collections::BTreeMap<u32, Vec<f64>> =
            std::collections::BTreeMap::new();
        for t in w.transfers() {
            by_session.entry(t.session).or_default().push(t.start);
        }
        for starts in by_session.values_mut() {
            starts.sort_unstable_by(f64::total_cmp);
            for w2 in starts.windows(2) {
                let gap = w2[1] - w2[0];
                if gap > 0.0 {
                    iats.push(gap);
                }
            }
        }
    }
    if iats.len() > 200 {
        if let Ok(f) = fit_lognormal(&iats) {
            checks.push(Check {
                name: "intra-session interarrival mu".into(),
                target: cfg.intra_session_iat.mu,
                recovered: f.mu,
                tolerance: 0.15,
            });
        }
    }

    // Client interest exponent.
    let mut counts = vec![0u64; cfg.n_clients];
    for s in w.sessions() {
        counts[s.client.0 as usize] += 1;
    }
    let rf = RankFrequency::from_counts(counts);
    if rf.n() > 20 {
        let max_rank = (rf.n() as f64 / 10.0).max(20.0);
        if let Ok(f) = fit_zipf_rank_frequency(&rf, Some(max_rank)) {
            checks.push(Check {
                name: "client interest alpha".into(),
                target: cfg.interest_alpha,
                recovered: f.alpha,
                tolerance: 0.15,
            });
        }
    }

    // Transfers per session (only for the pure-Zipf model; the hybrid's
    // mean is a design choice, not a recovery target).
    if let TransfersPerSession::Zipf { alpha } = cfg.transfers_per_session {
        let counts: Vec<u64> = w
            .sessions()
            .iter()
            .map(|s| u64::from(s.n_transfers))
            .collect();
        // Fit the pmf over k via rank-frequency of counts-of-counts.
        let max = counts.iter().copied().max().unwrap_or(1) as usize;
        let mut hist = vec![0u64; max + 1];
        for &c in &counts {
            hist[c as usize] += 1;
        }
        let total: u64 = hist.iter().sum();
        let pts: Vec<(f64, f64)> = hist
            .iter()
            .enumerate()
            .skip(1)
            .filter(|&(_, &c)| c > 0)
            .map(|(k, &c)| (k as f64, c as f64 / total as f64))
            .collect();
        if pts.len() >= 3 {
            if let Ok(f) = lsw_stats::fit::fit_zipf_points(&pts, Some(30.0)) {
                checks.push(Check {
                    name: "transfers-per-session alpha".into(),
                    target: alpha,
                    recovered: f.alpha,
                    tolerance: 0.3,
                });
            }
        }
    }

    ValidationReport {
        checks,
        transfer_length_ks_p: ks_p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Generator;

    #[test]
    fn paper_scaled_workload_validates() {
        let config = WorkloadConfig::paper().scaled(3_000, 2 * 86_400, 20_000);
        let w = Generator::new(config, 21).unwrap().generate();
        let report = validate_workload(&w);
        assert!(
            report.all_passed(),
            "failed checks: {:?}\n{:#?}",
            report.failures(),
            report.checks
        );
    }

    #[test]
    fn check_passed_logic() {
        let c = Check {
            name: "x".into(),
            target: 1.0,
            recovered: 1.05,
            tolerance: 0.1,
        };
        assert!(c.passed());
        let c = Check {
            name: "x".into(),
            target: 1.0,
            recovered: 1.2,
            tolerance: 0.1,
        };
        assert!(!c.passed());
    }
}
