//! Workload configuration: every knob of the generative model.
//!
//! [`WorkloadConfig::paper`] instantiates Table 2 of Veloso et al. exactly;
//! [`WorkloadConfig::scaled`] shrinks the population/horizon for tests and
//! examples while preserving every distributional parameter.

use lsw_stats::paper;
use serde::{Deserialize, Serialize};

/// How many transfers a session contains.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TransfersPerSession {
    /// The paper's model: unbounded Zipf (zeta) with exponent `alpha`
    /// (Fig 13, Table 2: α = 2.70417). Mean ≈ 1.6 for the paper's α.
    Zipf {
        /// Tail exponent (> 1).
        alpha: f64,
    },
    /// Light-tailed alternative for ablations: geometric with given mean.
    Geometric {
        /// Mean transfers per session (>= 1).
        mean: f64,
    },
    /// Body/tail hybrid: geometric body with probability `1 − p_tail`,
    /// zeta tail with probability `p_tail`. Matches both the trace's
    /// empirical mean (≈ 3.7, from Table 1's 5.5M transfers / 1.5M
    /// sessions) and the Fig 13 tail exponent.
    Hybrid {
        /// Zeta tail exponent (> 1).
        alpha: f64,
        /// Probability a session is tail-distributed.
        p_tail: f64,
        /// Mean of the geometric body (>= 1).
        body_mean: f64,
    },
}

/// A lognormal parameter pair as quoted in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormalParams {
    /// Log-location μ.
    pub mu: f64,
    /// Log-scale σ.
    pub sigma: f64,
}

/// Bandwidth model parameters (Fig 20).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthConfig {
    /// Fraction of transfers that are congestion-bound (paper: ≈ 10%).
    pub congestion_fraction: f64,
    /// Median of the congestion-bound lognormal mode, bits/s.
    pub congestion_median_bps: f64,
    /// Log-scale of the congestion-bound mode.
    pub congestion_sigma: f64,
    /// Client-bound transfers achieve `[efficiency_lo, efficiency_hi]` of
    /// their access-link capacity (protocol overhead, line quality).
    pub efficiency_lo: f64,
    /// Upper efficiency bound.
    pub efficiency_hi: f64,
}

impl Default for BandwidthConfig {
    fn default() -> Self {
        Self {
            congestion_fraction: paper::CONGESTION_BOUND_FRACTION,
            congestion_median_bps: 8_000.0,
            congestion_sigma: 1.1,
            efficiency_lo: 0.72,
            efficiency_hi: 0.98,
        }
    }
}

/// Live-object model parameters (§2.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectConfig {
    /// Number of live feeds (paper: 2).
    pub n_objects: usize,
    /// Relative popularity of each feed (len == n_objects; normalized).
    pub feed_weights: Vec<f64>,
    /// Number of cameras feeding the objects (paper: 48).
    pub n_cameras: usize,
    /// Mean camera hold time in seconds before the feed switches views.
    pub camera_hold_secs: f64,
}

impl Default for ObjectConfig {
    fn default() -> Self {
        Self {
            n_objects: paper::NUM_LIVE_OBJECTS,
            feed_weights: vec![0.7, 0.3],
            n_cameras: paper::NUM_CAMERAS,
            camera_hold_secs: 45.0,
        }
    }
}

/// The complete generative-model configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of clients in the population.
    pub n_clients: usize,
    /// Trace horizon in seconds.
    pub horizon_secs: u32,
    /// Target number of sessions over the horizon (sets the arrival-rate
    /// scale; the realized count is Poisson around this).
    pub target_sessions: usize,
    /// Zipf exponent of the client interest profile (sessions → clients;
    /// Fig 7 right, Table 2: α = 0.4704).
    pub interest_alpha: f64,
    /// Transfers-per-session model.
    pub transfers_per_session: TransfersPerSession,
    /// Intra-session transfer interarrival lognormal (Fig 14).
    pub intra_session_iat: LogNormalParams,
    /// Transfer length lognormal (Fig 19).
    pub transfer_length: LogNormalParams,
    /// Weekday multipliers (Sun..Sat) on the diurnal shape; the paper's
    /// weekends run slightly higher than weekdays (§3.2).
    pub weekday_weights: [f64; 7],
    /// Piecewise window for the arrival-rate profile, seconds (paper: 900).
    pub rate_window_secs: f64,
    /// Live-object model.
    pub objects: ObjectConfig,
    /// Bandwidth model.
    pub bandwidth: BandwidthConfig,
    /// Day-of-week of the trace's first day (0 = Sunday); the paper's
    /// Fig 4 x-axis starts on a Sunday.
    pub start_weekday: u8,
    /// Per-day audience envelope (Fig 4 left: the show ramps up over its
    /// first days). Empty = flat. Scaled-down runs usually leave this
    /// empty; the full paper configuration uses
    /// [`crate::diurnal::DiurnalProfile::paper_day_envelope`].
    pub day_envelope: Vec<f64>,
}

impl WorkloadConfig {
    /// The paper's full-scale configuration (Table 1 scale + Table 2
    /// parameters): 28 days, ~692k clients, ~1.5M sessions.
    pub fn paper() -> Self {
        Self {
            // The client *universe*: Table 1's 691,889 users are the
            // players observed in the trace; with ~2.2 sessions per
            // observed client under Zipf(0.47) interest, ~18% of the
            // universe never appears, so the universe must be larger for
            // the observed count to land on Table 1.
            n_clients: 900_000,
            horizon_secs: paper::TRACE_SECS as u32,
            target_sessions: 1_550_000,
            interest_alpha: paper::INTEREST_SESSIONS_ALPHA,
            transfers_per_session: TransfersPerSession::Zipf {
                alpha: paper::TRANSFERS_PER_SESSION_ALPHA,
            },
            intra_session_iat: LogNormalParams {
                mu: paper::INTRA_SESSION_IAT_MU,
                sigma: paper::INTRA_SESSION_IAT_SIGMA,
            },
            transfer_length: LogNormalParams {
                mu: paper::TRANSFER_LENGTH_MU,
                sigma: paper::TRANSFER_LENGTH_SIGMA,
            },
            weekday_weights: [1.08, 0.97, 0.96, 0.97, 0.98, 1.0, 1.04],
            rate_window_secs: paper::PIECEWISE_WINDOW_SECS,
            objects: ObjectConfig::default(),
            bandwidth: BandwidthConfig::default(),
            start_weekday: 0,
            day_envelope: crate::diurnal::DiurnalProfile::paper_day_envelope(),
        }
    }

    /// The paper configuration with the transfers-per-session hybrid that
    /// also matches Table 1's empirical mean (5.5M transfers from 1.5M
    /// sessions ≈ 3.7/session), not just the Fig 13 tail exponent.
    pub fn paper_scale_matched() -> Self {
        Self {
            transfers_per_session: TransfersPerSession::Hybrid {
                alpha: paper::TRANSFERS_PER_SESSION_ALPHA,
                p_tail: 0.35,
                body_mean: 4.8,
            },
            ..Self::paper()
        }
    }

    /// Shrinks population, horizon and session count for fast runs while
    /// keeping all distributional parameters.
    pub fn scaled(mut self, n_clients: usize, horizon_secs: u32, target_sessions: usize) -> Self {
        self.n_clients = n_clients;
        self.horizon_secs = horizon_secs;
        self.target_sessions = target_sessions;
        // Scaled runs cover a fraction of the show: drop the ramp-up
        // envelope (tests and examples want stationary-per-day behavior).
        self.day_envelope = Vec::new();
        self
    }

    /// Validates structural constraints; returns the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_clients == 0 {
            return Err("n_clients must be >= 1".into());
        }
        if self.horizon_secs == 0 {
            return Err("horizon_secs must be >= 1".into());
        }
        if self.target_sessions == 0 {
            return Err("target_sessions must be >= 1".into());
        }
        if !(self.interest_alpha >= 0.0) {
            return Err(format!(
                "interest_alpha must be >= 0, got {}",
                self.interest_alpha
            ));
        }
        match self.transfers_per_session {
            TransfersPerSession::Zipf { alpha } if !(alpha > 1.0) => {
                return Err(format!(
                    "Zipf transfers-per-session needs alpha > 1, got {alpha}"
                ));
            }
            TransfersPerSession::Geometric { mean } if !(mean >= 1.0) => {
                return Err(format!(
                    "Geometric transfers-per-session needs mean >= 1, got {mean}"
                ));
            }
            TransfersPerSession::Hybrid {
                alpha,
                p_tail,
                body_mean,
            } if !(alpha > 1.0) || !(0.0..=1.0).contains(&p_tail) || !(body_mean >= 1.0) => {
                return Err("invalid Hybrid transfers-per-session parameters".into());
            }
            _ => {}
        }
        if !(self.intra_session_iat.sigma > 0.0) || !(self.transfer_length.sigma > 0.0) {
            return Err("lognormal sigmas must be positive".into());
        }
        if self.objects.n_objects == 0 || self.objects.feed_weights.len() != self.objects.n_objects
        {
            return Err("feed_weights must have one weight per object".into());
        }
        if self.objects.feed_weights.iter().any(|&w| !(w > 0.0)) {
            return Err("feed weights must be positive".into());
        }
        if self.objects.n_cameras == 0 || self.objects.n_cameras > 256 {
            return Err("n_cameras must be in 1..=256".into());
        }
        if !(self.objects.camera_hold_secs > 0.0) {
            return Err("camera_hold_secs must be positive".into());
        }
        let b = &self.bandwidth;
        let efficiency_ok =
            0.0 < b.efficiency_lo && b.efficiency_lo <= b.efficiency_hi && b.efficiency_hi <= 1.0;
        if !(0.0..=1.0).contains(&b.congestion_fraction)
            || !(b.congestion_median_bps > 0.0)
            || !(b.congestion_sigma > 0.0)
            || !efficiency_ok
        {
            return Err("invalid bandwidth configuration".into());
        }
        if self.weekday_weights.iter().any(|&w| !(w > 0.0)) {
            return Err("weekday weights must be positive".into());
        }
        if !(self.rate_window_secs > 0.0) {
            return Err("rate_window_secs must be positive".into());
        }
        if self.start_weekday > 6 {
            return Err("start_weekday must be 0..=6".into());
        }
        if self.day_envelope.iter().any(|&v| !(v > 0.0)) {
            return Err("day envelope values must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid_and_full_scale() {
        let c = WorkloadConfig::paper();
        assert!(c.validate().is_ok());
        assert_eq!(c.n_clients, 900_000);
        assert_eq!(c.horizon_secs, 2_419_200);
        assert_eq!(c.objects.n_objects, 2);
        assert_eq!(c.objects.n_cameras, 48);
    }

    #[test]
    fn scaled_keeps_distribution_params() {
        let c = WorkloadConfig::paper().scaled(1_000, 86_400, 2_000);
        assert!(c.validate().is_ok());
        assert_eq!(c.n_clients, 1_000);
        assert_eq!(c.interest_alpha, WorkloadConfig::paper().interest_alpha);
        assert_eq!(c.transfer_length, WorkloadConfig::paper().transfer_length);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let good = WorkloadConfig::paper();
        let mut c = good.clone();
        c.n_clients = 0;
        assert!(c.validate().is_err());

        let mut c = good.clone();
        c.transfers_per_session = TransfersPerSession::Zipf { alpha: 1.0 };
        assert!(c.validate().is_err());

        let mut c = good.clone();
        c.objects.feed_weights = vec![1.0]; // wrong arity
        assert!(c.validate().is_err());

        let mut c = good.clone();
        c.bandwidth.efficiency_lo = 1.5;
        assert!(c.validate().is_err());

        let mut c = good.clone();
        c.start_weekday = 9;
        assert!(c.validate().is_err());

        let mut c = good.clone();
        c.transfers_per_session = TransfersPerSession::Hybrid {
            alpha: 2.7,
            p_tail: 1.5,
            body_mean: 4.0,
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let c = WorkloadConfig::paper_scale_matched();
        let json = serde_json::to_string(&c).unwrap();
        let back: WorkloadConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
