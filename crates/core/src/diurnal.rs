//! Programmable diurnal/weekly arrival-rate profiles.
//!
//! §3.2/§3.4: the client arrival rate is non-stationary with a dominant
//! 24-hour period (trough from 4am to 11am, evening peak) modulated by a
//! weaker weekly pattern (weekends slightly higher). GISMO's extension for
//! live media makes this profile *programmable* — any 15-minute shape can
//! be supplied — and [`DiurnalProfile::paper`] ships the shape read off
//! Fig 4 (right).

use lsw_stats::process::{PiecewisePoisson, PiecewiseRate};
use serde::{Deserialize, Serialize};

/// Number of 15-minute bins in a day.
pub const BINS_PER_DAY: usize = 96;

/// Relative audience level at the instant the service launched (used when
/// a day envelope is present): effectively a handful of early viewers.
pub const LAUNCH_LEVEL: f64 = 0.003;

/// A daily shape (96 × 15-minute relative weights) with per-weekday
/// multipliers, convertible into an absolute arrival-rate profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalProfile {
    /// Relative arrival intensity per 15-minute bin of the day (len 96).
    /// Only ratios matter; the absolute scale comes from a session target.
    pub shape: Vec<f64>,
    /// Multiplier per weekday, Sunday = 0.
    pub weekday_weights: [f64; 7],
    /// Day-of-week of t = 0.
    pub start_weekday: u8,
    /// Optional per-day audience envelope (index = day since trace start;
    /// days beyond the end reuse the last value). Models the show's
    /// ramp-up/decay visible in Fig 4 (left): the first days draw a far
    /// smaller audience than mid-run. Empty = flat envelope.
    pub day_envelope: Vec<f64>,
}

impl DiurnalProfile {
    /// Builds a profile; `shape` must have 96 positive entries.
    pub fn new(
        shape: Vec<f64>,
        weekday_weights: [f64; 7],
        start_weekday: u8,
    ) -> Result<Self, String> {
        if shape.len() != BINS_PER_DAY {
            return Err(format!(
                "shape must have {BINS_PER_DAY} bins, got {}",
                shape.len()
            ));
        }
        if shape.iter().any(|&v| !(v >= 0.0) || !v.is_finite()) {
            return Err("shape values must be finite and >= 0".into());
        }
        if shape.iter().sum::<f64>() <= 0.0 {
            return Err("shape must have positive total mass".into());
        }
        if weekday_weights.iter().any(|&w| !(w > 0.0)) {
            return Err("weekday weights must be positive".into());
        }
        if start_weekday > 6 {
            return Err("start_weekday must be 0..=6".into());
        }
        Ok(Self {
            shape,
            weekday_weights,
            start_weekday,
            day_envelope: Vec::new(),
        })
    }

    /// Attaches a per-day audience envelope (see [`DiurnalProfile::day_envelope`]).
    pub fn with_day_envelope(mut self, envelope: Vec<f64>) -> Result<Self, String> {
        if envelope.iter().any(|&v| !(v > 0.0) || !v.is_finite()) {
            return Err("day envelope values must be positive and finite".into());
        }
        self.day_envelope = envelope;
        Ok(self)
    }

    /// The paper's Fig 4 (left) inter-day envelope: a ramp over the first
    /// week-and-a-half of the show, a mid-run plateau, and a gentle decay.
    pub fn paper_day_envelope() -> Vec<f64> {
        // Day 0 starts near-dead: Fig 18 (left) shows mean interarrivals
        // spiking toward ~1,000 s in the opening hours, before word of the
        // webcast spread.
        vec![
            0.04, 0.12, 0.22, 0.35, 0.50, 0.62, 0.75, 0.85, 0.95, 1.00, 1.00, 0.95, 0.90, 0.92,
            0.88, 0.85, 0.90, 0.85, 0.80, 0.85, 0.80, 0.75, 0.80, 0.78, 0.75, 0.72, 0.70, 0.68,
        ]
    }

    /// The paper's Fig 4 (right) shape: near-dead 4am–11am, climbing
    /// through the afternoon, peaking 20:00–23:00, easing overnight.
    ///
    /// Values are relative concurrent-client levels read off the figure at
    /// 15-minute resolution (piecewise-linear between the listed anchor
    /// hours).
    pub fn paper_shape() -> Vec<f64> {
        // (hour, relative level) anchors from Fig 4 (right).
        const ANCHORS: [(f64, f64); 13] = [
            (0.0, 700.0),
            (2.0, 450.0),
            (4.0, 150.0),
            (6.0, 80.0),
            (9.0, 120.0),
            (11.0, 400.0),
            (13.0, 700.0),
            (15.0, 800.0),
            (17.0, 900.0),
            (19.0, 1_100.0),
            (21.0, 1_400.0),
            (22.5, 1_500.0),
            (24.0, 700.0),
        ];
        let mut shape = Vec::with_capacity(BINS_PER_DAY);
        for bin in 0..BINS_PER_DAY {
            let h = (bin as f64 + 0.5) * 24.0 / BINS_PER_DAY as f64;
            // Linear interpolation between anchors.
            let mut v = ANCHORS[ANCHORS.len() - 1].1;
            for w in ANCHORS.windows(2) {
                let (h0, v0) = w[0];
                let (h1, v1) = w[1];
                if h >= h0 && h <= h1 {
                    v = v0 + (v1 - v0) * (h - h0) / (h1 - h0);
                    break;
                }
            }
            shape.push(v);
        }
        shape
    }

    /// The paper profile with the given weekday modulation.
    pub fn paper(weekday_weights: [f64; 7], start_weekday: u8) -> Self {
        Self::new(Self::paper_shape(), weekday_weights, start_weekday)
            .expect("static shape is valid") // lsw::allow(L005): fixed valid table
    }

    /// A flat (stationary) profile — the §3.4 null model and the classic
    /// stored-media GISMO default.
    pub fn flat() -> Self {
        // lsw::allow(L005): a constant positive shape is always valid
        Self::new(vec![1.0; BINS_PER_DAY], [1.0; 7], 0).expect("static shape is valid")
    }

    /// Relative intensity at time `t` seconds (period: one week).
    pub fn relative_rate(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        let day = (t / 86_400.0) as u64;
        let weekday = ((self.start_weekday as u64) + day) % 7;
        let sec_of_day = t - (day as f64) * 86_400.0;
        let bin = ((sec_of_day / 900.0) as usize).min(BINS_PER_DAY - 1);
        self.shape[bin] * self.weekday_weights[weekday as usize] * self.envelope_at(t)
    }

    /// The audience envelope at time `t`: day values interpolated
    /// linearly between day midpoints, starting from [`LAUNCH_LEVEL`] at
    /// t = 0 (the service had essentially no audience the moment it went
    /// live — Fig 18 left shows interarrivals near 1,000 s at the start).
    fn envelope_at(&self, t: f64) -> f64 {
        if self.day_envelope.is_empty() {
            return 1.0;
        }
        let day_f = t / 86_400.0;
        let n = self.day_envelope.len();
        // Envelope defined at day midpoints d + 0.5.
        if day_f <= 0.5 {
            // Launch ramp: from LAUNCH_LEVEL at t=0 to the day-0 value.
            let frac = (day_f / 0.5).clamp(0.0, 1.0);
            return LAUNCH_LEVEL + (self.day_envelope[0] - LAUNCH_LEVEL) * frac;
        }
        let pos = day_f - 0.5;
        let i = pos as usize;
        if i + 1 >= n {
            return self.day_envelope[n - 1];
        }
        let frac = pos - i as f64;
        self.day_envelope[i] + (self.day_envelope[i + 1] - self.day_envelope[i]) * frac
    }

    /// Integral of the relative rate over `[0, horizon)` seconds.
    pub fn relative_mass(&self, horizon: f64) -> f64 {
        // Sum whole 15-minute bins; the tail partial bin is pro-rated.
        let mut mass = 0.0;
        let mut t = 0.0;
        while t < horizon {
            let step = 900f64.min(horizon - t);
            mass += self.relative_rate(t + 0.5 * step.min(900.0)) * step;
            t += step;
        }
        mass
    }

    /// Converts to an absolute [`PiecewisePoisson`] arrival process whose
    /// expected arrival count over `[0, horizon)` equals `target_arrivals`.
    ///
    /// The profile is laid out as explicit 15-minute windows over the whole
    /// horizon (non-periodic), so weekly modulation is baked in.
    pub fn to_process(&self, horizon_secs: u32, target_arrivals: usize) -> PiecewisePoisson {
        let horizon = f64::from(horizon_secs);
        let mass = self.relative_mass(horizon);
        assert!(mass > 0.0, "profile has zero mass over the horizon");
        let scale = target_arrivals as f64 / mass;
        let nbins = (horizon / 900.0).ceil() as usize;
        let rates: Vec<f64> = (0..nbins)
            .map(|i| self.relative_rate((i as f64 + 0.5) * 900.0) * scale)
            .collect();
        // lsw::allow(L005): rates are finite non-negative by construction
        let profile = PiecewiseRate::new(rates, 900.0, false).expect("validated rates");
        PiecewisePoisson::new(profile)
    }

    /// Hour-of-day (0..24) with the lowest shape value — the diurnal trough.
    pub fn trough_hour(&self) -> f64 {
        let (bin, _) = self
            .shape
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map_or((0, &0.0), |x| x);
        bin as f64 * 24.0 / BINS_PER_DAY as f64
    }

    /// Hour-of-day with the highest shape value — the diurnal peak.
    pub fn peak_hour(&self) -> f64 {
        let (bin, _) = self
            .shape
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or((0, &0.0), |x| x);
        bin as f64 * 24.0 / BINS_PER_DAY as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsw_stats::SeedStream;

    #[test]
    fn paper_shape_has_expected_structure() {
        let p = DiurnalProfile::paper([1.0; 7], 0);
        // Trough in the paper's dead zone (4am–11am), peak in the evening.
        let trough = p.trough_hour();
        assert!((4.0..11.0).contains(&trough), "trough at {trough}");
        let peak = p.peak_hour();
        assert!((19.0..24.0).contains(&peak), "peak at {peak}");
        // Peak-to-trough dynamic range is large (Fig 4 right: ~80 → ~1500).
        let max = p.shape.iter().cloned().fold(0.0, f64::max);
        let min = p.shape.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 10.0, "dynamic range {}", max / min);
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert!(DiurnalProfile::new(vec![1.0; 95], [1.0; 7], 0).is_err());
        assert!(DiurnalProfile::new(vec![0.0; 96], [1.0; 7], 0).is_err());
        assert!(DiurnalProfile::new(vec![-1.0; 96], [1.0; 7], 0).is_err());
        assert!(DiurnalProfile::new(vec![1.0; 96], [0.0; 7], 0).is_err());
        assert!(DiurnalProfile::new(vec![1.0; 96], [1.0; 7], 7).is_err());
    }

    #[test]
    fn weekday_modulation_wraps() {
        let mut ww = [1.0; 7];
        ww[0] = 2.0; // Sunday
        let p = DiurnalProfile::new(vec![1.0; 96], ww, 6).unwrap(); // starts Saturday
                                                                    // Day 0 is Saturday (weight 1), day 1 is Sunday (weight 2).
        assert_eq!(p.relative_rate(3_600.0), 1.0);
        assert_eq!(p.relative_rate(86_400.0 + 3_600.0), 2.0);
        // Week wraps: day 8 is Sunday again.
        assert_eq!(p.relative_rate(8.0 * 86_400.0 + 60.0), 2.0);
    }

    #[test]
    fn flat_profile_is_uniform() {
        let p = DiurnalProfile::flat();
        assert_eq!(p.relative_rate(0.0), p.relative_rate(55_123.0));
        assert!((p.relative_mass(86_400.0) - 86_400.0).abs() < 1e-6);
    }

    #[test]
    fn to_process_hits_target_count() {
        let p = DiurnalProfile::paper([1.08, 0.97, 0.96, 0.97, 0.98, 1.0, 1.04], 0);
        let proc_ = p.to_process(7 * 86_400, 50_000);
        // Expected count equals the target by construction.
        let expected = proc_.expected_count(0.0, 7.0 * 86_400.0);
        assert!((expected - 50_000.0).abs() < 1.0, "expected {expected}");
        // The realized draw is Poisson around it.
        let mut rng = SeedStream::new(31).rng("diurnal");
        let arrivals = proc_.generate(&mut rng, 0.0, 7.0 * 86_400.0);
        let n = arrivals.len() as f64;
        assert!((n - 50_000.0).abs() < 4.0 * 50_000f64.sqrt(), "n = {n}");
    }

    #[test]
    fn generated_arrivals_follow_diurnal_shape() {
        let p = DiurnalProfile::paper([1.0; 7], 0);
        let proc_ = p.to_process(86_400, 100_000);
        let mut rng = SeedStream::new(32).rng("diurnal2");
        let arrivals = proc_.generate(&mut rng, 0.0, 86_400.0);
        // Count arrivals in the trough (5–9h) vs the peak (20–23h).
        let trough = arrivals
            .iter()
            .filter(|&&t| (5.0 * 3_600.0..9.0 * 3_600.0).contains(&t))
            .count();
        let peak = arrivals
            .iter()
            .filter(|&&t| (20.0 * 3_600.0..23.0 * 3_600.0).contains(&t))
            .count();
        assert!(
            peak as f64 > 5.0 * trough as f64,
            "peak {peak} vs trough {trough}: diurnal shape lost"
        );
    }

    #[test]
    fn relative_mass_scales_with_horizon() {
        let p = DiurnalProfile::paper([1.0; 7], 0);
        let one_day = p.relative_mass(86_400.0);
        let two_days = p.relative_mass(2.0 * 86_400.0);
        assert!((two_days - 2.0 * one_day).abs() < 1e-6 * one_day);
    }
}
