//! The stored-media baseline: classic (pre-live) GISMO.
//!
//! The paper's central thesis is a *duality*: stored-media access is user
//! driven (objects have Zipf popularity; transfer lengths derive from
//! object sizes), live access is object driven (clients have Zipf
//! interest; transfer lengths derive from stickiness). To make that
//! contrast executable we ship the stored-media generator the original
//! GISMO paper \[19\] describes: a library of pre-recorded objects with
//! Zipf-like popularity and heavy-tailed sizes, stationary Poisson request
//! arrivals, uniform client identity, and partial playback (early stop) as
//! observed by Acharya & Smith \[2\].

use crate::workload::CPU_CAPACITY_TRANSFERS;
use lsw_stats::dist::{Discrete, LogNormal, Sample, ZipfTable};
use lsw_stats::process::PoissonProcess;
use lsw_stats::rng::{u01, SeedStream};
use lsw_topology::{AsRegistry, AsRegistryConfig, ClientPopulation, ClientPopulationConfig};
use lsw_trace::concurrency::ConcurrencyProfile;
use lsw_trace::event::LogEntry;
use lsw_trace::ids::{ClientId, ObjectId};
use lsw_trace::trace::Trace;
use serde::{Deserialize, Serialize};

/// Configuration of the stored-media baseline workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredConfig {
    /// Clients in the population (chosen uniformly per request — user
    /// driven access has no per-client skew in the baseline).
    pub n_clients: usize,
    /// Number of stored objects in the library.
    pub n_objects: usize,
    /// Zipf exponent of object popularity (web-like: ~0.73 \[9\]).
    pub object_popularity_alpha: f64,
    /// Lognormal of object durations in seconds (clip lengths).
    pub object_duration_mu: f64,
    /// Log-scale of object durations.
    pub object_duration_sigma: f64,
    /// Fraction of requests stopped before the end (Acharya & Smith
    /// report nearly half).
    pub early_stop_fraction: f64,
    /// Trace horizon, seconds.
    pub horizon_secs: u32,
    /// Target number of requests over the horizon.
    pub target_requests: usize,
}

impl Default for StoredConfig {
    fn default() -> Self {
        Self {
            n_clients: 10_000,
            n_objects: 500,
            object_popularity_alpha: 0.73,
            object_duration_mu: 5.3, // median ≈ 200 s clips
            object_duration_sigma: 0.8,
            early_stop_fraction: 0.45,
            horizon_secs: 86_400,
            target_requests: 50_000,
        }
    }
}

impl StoredConfig {
    /// Validates structural constraints.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_clients == 0 || self.n_objects == 0 || self.target_requests == 0 {
            return Err("population, library and request target must be >= 1".into());
        }
        if !(self.object_popularity_alpha >= 0.0) {
            return Err("object_popularity_alpha must be >= 0".into());
        }
        if !(self.object_duration_sigma > 0.0) {
            return Err("object_duration_sigma must be > 0".into());
        }
        if !(0.0..=1.0).contains(&self.early_stop_fraction) {
            return Err("early_stop_fraction must be in [0,1]".into());
        }
        if self.horizon_secs == 0 {
            return Err("horizon_secs must be >= 1".into());
        }
        Ok(())
    }
}

/// The stored-media (user-driven) workload generator.
pub struct StoredGenerator {
    config: StoredConfig,
    seeds: SeedStream,
    popularity: ZipfTable,
    /// Fixed per-object durations (an object's size is a property of the
    /// object, not of the viewing — the heart of the duality).
    object_durations: Vec<f64>,
}

impl StoredGenerator {
    /// Builds the generator; object durations are fixed once per library.
    pub fn new(config: StoredConfig, seed: u64) -> Result<Self, String> {
        config.validate()?;
        let seeds = SeedStream::new(seed);
        let popularity = ZipfTable::new(config.n_objects as u64, config.object_popularity_alpha)
            .map_err(|e| e.to_string())?;
        let dur = LogNormal::new(config.object_duration_mu, config.object_duration_sigma)
            .map_err(|e| e.to_string())?;
        let mut lib_rng = seeds.rng("library");
        let object_durations = dur.sample_n(&mut lib_rng, config.n_objects);
        Ok(Self {
            config,
            seeds,
            popularity,
            object_durations,
        })
    }

    /// The fixed duration of an object in the library.
    pub fn object_duration(&self, object: ObjectId) -> f64 {
        self.object_durations[object.0 as usize]
    }

    /// Generates a stored-media trace.
    ///
    /// Requests arrive as a *stationary* Poisson process (user-driven
    /// workloads lack the synchronizing live schedule; prior work \[3\]
    /// found short-range Poisson behavior); each request picks an object
    /// by popularity and a client uniformly; the transfer length is the
    /// object's duration, truncated uniformly for early-stopped requests.
    pub fn generate(&self) -> Trace {
        let horizon = f64::from(self.config.horizon_secs);
        let rate = self.config.target_requests as f64 / horizon;
        // lsw::allow(L005): config validation rejects zero-request/zero-horizon setups
        let process = PoissonProcess::new(rate).expect("positive rate");
        let mut arrivals_rng = self.seeds.rng("stored-arrivals");
        let arrivals = process.generate(&mut arrivals_rng, 0.0, horizon);

        // Population (reuse the topology substrate so the log schema is
        // identical to the live trace's).
        let mut topo_rng = self.seeds.rng("stored-topology");
        let registry = AsRegistry::build(&AsRegistryConfig::default(), &mut topo_rng);
        let pop_config = ClientPopulationConfig {
            n_clients: self.config.n_clients,
            ..ClientPopulationConfig::default()
        };
        let population = ClientPopulation::build(&pop_config, &registry, &mut topo_rng);

        let mut rng = self.seeds.rng("stored-requests");
        let mut spans = Vec::with_capacity(arrivals.len());
        let mut picks = Vec::with_capacity(arrivals.len());
        for &t0 in &arrivals {
            let object = ObjectId((self.popularity.sample_k(&mut rng) - 1) as u16);
            let client = ClientId((u01(&mut rng) * self.config.n_clients as f64) as u32);
            let full = self.object_durations[object.0 as usize];
            let watched = if u01(&mut rng) < self.config.early_stop_fraction {
                full * u01(&mut rng)
            } else {
                full
            };
            let duration = watched.min(horizon - t0);
            let start = (t0 as u32).min(self.config.horizon_secs - 1);
            let stop = ((t0 + duration) as u32)
                .max(start)
                .min(self.config.horizon_secs);
            spans.push((start, stop - start));
            picks.push((object, client));
        }

        let concurrency = ConcurrencyProfile::from_intervals(
            spans.iter().map(|&(s, d)| (s, s + d)),
            self.config.horizon_secs,
        );

        let mut entries = Vec::with_capacity(arrivals.len());
        for (&(start, duration), &(object, client)) in spans.iter().zip(&picks) {
            let info = population.get(client);
            let bps = f64::from(info.access.capacity_bps()) * 0.85;
            let stop = start + duration;
            entries.push(LogEntry {
                timestamp: stop,
                start,
                duration,
                client,
                ip: info.ip,
                as_id: info.as_id,
                country: info.country,
                object,
                camera: 0, // stored clips have no camera schedule
                bytes: (f64::from(duration) * bps / 8.0) as u64,
                avg_bandwidth: bps as u32,
                packet_loss: 0.0,
                cpu_util: (f64::from(concurrency.at(stop)) / CPU_CAPACITY_TRANSFERS).min(1.0)
                    as f32,
                status: 200,
            });
        }
        Trace::from_entries(entries, self.config.horizon_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsw_stats::empirical::RankFrequency;
    use lsw_stats::fit::fit_zipf_rank_frequency;

    fn small() -> (StoredGenerator, Trace) {
        let config = StoredConfig {
            target_requests: 20_000,
            ..StoredConfig::default()
        };
        let g = StoredGenerator::new(config, 3).unwrap();
        let t = g.generate();
        (g, t)
    }

    #[test]
    fn rejects_bad_config() {
        let c = StoredConfig {
            n_objects: 0,
            ..Default::default()
        };
        assert!(StoredGenerator::new(c, 1).is_err());
        let c = StoredConfig {
            early_stop_fraction: 2.0,
            ..Default::default()
        };
        assert!(StoredGenerator::new(c, 1).is_err());
    }

    #[test]
    fn request_count_near_target() {
        let (_, t) = small();
        let n = t.len() as f64;
        assert!(
            (n - 20_000.0).abs() < 5.0 * 20_000f64.sqrt(),
            "requests {n}"
        );
    }

    #[test]
    fn object_popularity_is_zipf() {
        // The duality's stored side: *objects* carry the skew.
        let (_, t) = small();
        let mut counts = std::collections::HashMap::new();
        for e in t.entries() {
            *counts.entry(e.object).or_insert(0u64) += 1;
        }
        let rf = RankFrequency::from_counts(counts.into_values().collect());
        let fit = fit_zipf_rank_frequency(&rf, Some(100.0)).unwrap();
        assert!(
            (fit.alpha - 0.73).abs() < 0.12,
            "object alpha {}",
            fit.alpha
        );
    }

    #[test]
    fn transfer_lengths_bounded_by_object_durations() {
        let (g, t) = small();
        for e in t.entries().iter().take(2_000) {
            let full = g.object_duration(e.object);
            assert!(
                f64::from(e.duration) <= full + 1.0,
                "duration {} exceeds object length {full}",
                e.duration
            );
        }
    }

    #[test]
    fn early_stops_present() {
        // Roughly the configured fraction of requests is shorter than 95%
        // of the object duration.
        let (g, t) = small();
        let stopped = t
            .entries()
            .iter()
            .filter(|e| f64::from(e.duration) < 0.95 * g.object_duration(e.object))
            .count() as f64
            / t.len() as f64;
        assert!(
            (stopped - 0.45).abs() < 0.1,
            "early-stop fraction {stopped}"
        );
    }

    #[test]
    fn deterministic() {
        let (_, a) = small();
        let (_, b) = small();
        assert_eq!(a.entries(), b.entries());
    }
}
