//! The bimodal transfer-bandwidth model (Fig 20).
//!
//! §5.4: the bandwidth marginal has two modes — spikes at client
//! connection speeds (the right-hand side, ~90% of transfers) and a
//! congestion-bound low mode (~10%) "resulting from extremely limited
//! network resources". The model draws accordingly: a client-bound
//! transfer achieves a high fraction of its access-link capacity; a
//! congestion-bound one draws from a low lognormal, capped by the link.

use crate::config::BandwidthConfig;
use lsw_stats::dist::{LogNormal, Sample};
use lsw_stats::rng::u01;
use lsw_topology::AccessClass;
use rand::Rng;

/// One sampled transfer bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthDraw {
    /// Average bandwidth over the transfer, bits per second.
    pub bps: u32,
    /// Whether the transfer was congestion-bound (the Fig 20 left mode).
    pub congestion_bound: bool,
    /// Packet loss rate experienced, fraction.
    pub packet_loss: f32,
}

/// Samples per-transfer bandwidth from the bimodal model.
#[derive(Debug, Clone)]
pub struct BandwidthModel {
    cfg: BandwidthConfig,
    congestion: LogNormal,
}

impl BandwidthModel {
    /// Builds the model from its configuration.
    pub fn new(cfg: BandwidthConfig) -> Result<Self, String> {
        if !(0.0..=1.0).contains(&cfg.congestion_fraction) {
            return Err("congestion_fraction must be in [0,1]".into());
        }
        let congestion = LogNormal::new(cfg.congestion_median_bps.ln(), cfg.congestion_sigma)
            .map_err(|e| e.to_string())?;
        Ok(Self { cfg, congestion })
    }

    /// The configuration in force.
    pub fn config(&self) -> &BandwidthConfig {
        &self.cfg
    }

    /// Samples a transfer's bandwidth given the client's access link.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, access: AccessClass) -> BandwidthDraw {
        let cap = f64::from(access.capacity_bps());
        if u01(rng) < self.cfg.congestion_fraction {
            // Congestion-bound: low lognormal, never above what the link
            // could carry anyway.
            let raw = self.congestion.sample(rng);
            let bps = raw.min(cap * self.cfg.efficiency_lo).max(1.0);
            // Congested paths lose packets: 2–20%.
            let packet_loss = (0.02 + u01(rng) * 0.18) as f32;
            BandwidthDraw {
                bps: bps as u32,
                congestion_bound: true,
                packet_loss,
            }
        } else {
            // Client-bound: a high fraction of link capacity.
            let eff = self.cfg.efficiency_lo
                + u01(rng) * (self.cfg.efficiency_hi - self.cfg.efficiency_lo);
            let bps = cap * eff;
            // Healthy paths: under 1% loss.
            let packet_loss = (u01(rng) * 0.01) as f32;
            BandwidthDraw {
                bps: bps as u32,
                congestion_bound: false,
                packet_loss,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsw_stats::SeedStream;

    fn model() -> BandwidthModel {
        BandwidthModel::new(BandwidthConfig::default()).unwrap()
    }

    #[test]
    fn rejects_bad_config() {
        let cfg = BandwidthConfig {
            congestion_fraction: 1.5,
            ..Default::default()
        };
        assert!(BandwidthModel::new(cfg).is_err());
    }

    #[test]
    fn congestion_fraction_matches_config() {
        let m = model();
        let mut rng = SeedStream::new(61).rng("bw");
        const N: usize = 100_000;
        let congested = (0..N)
            .filter(|_| m.sample(&mut rng, AccessClass::Modem56).congestion_bound)
            .count() as f64
            / N as f64;
        assert!((congested - 0.10).abs() < 0.005, "congested {congested}");
    }

    #[test]
    fn client_bound_near_capacity() {
        let m = model();
        let mut rng = SeedStream::new(62).rng("bw2");
        for _ in 0..5_000 {
            let d = m.sample(&mut rng, AccessClass::Dsl);
            if !d.congestion_bound {
                let frac = f64::from(d.bps) / 256_000.0;
                assert!((0.72..=0.98).contains(&frac), "efficiency {frac}");
                assert!(d.packet_loss < 0.011);
            }
        }
    }

    #[test]
    fn congestion_bound_is_low_and_lossy() {
        let m = model();
        let mut rng = SeedStream::new(63).rng("bw3");
        let mut saw_congested = false;
        for _ in 0..5_000 {
            let d = m.sample(&mut rng, AccessClass::Lan);
            if d.congestion_bound {
                saw_congested = true;
                assert!(d.bps <= (1_500_000.0 * 0.72) as u32);
                assert!(d.packet_loss >= 0.02 && d.packet_loss <= 0.2);
            }
        }
        assert!(saw_congested);
    }

    #[test]
    fn bimodality_visible() {
        // The medians of the two modes must be far apart for a 56k modem.
        let m = model();
        let mut rng = SeedStream::new(64).rng("bw4");
        let mut low = Vec::new();
        let mut high = Vec::new();
        for _ in 0..20_000 {
            let d = m.sample(&mut rng, AccessClass::Modem56);
            if d.congestion_bound {
                low.push(f64::from(d.bps));
            } else {
                high.push(f64::from(d.bps));
            }
        }
        let med = |v: &mut Vec<f64>| {
            v.sort_unstable_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let (ml, mh) = (med(&mut low), med(&mut high));
        assert!(mh / ml > 3.0, "modes too close: {ml} vs {mh}");
    }
}
