//! Self-similar variable-bit-rate (VBR) content encoding.
//!
//! GISMO \[19\] generates media objects with "self-similar variable
//! bit-rate" content — the paper's §6.2 notes those characteristics stay
//! applicable to live media. This module produces a per-second bitrate
//! series for each live feed using the Crovella–Bestavros mechanism the
//! paper's lineage rests on: a superposition of heavy-tailed (Pareto)
//! ON/OFF sources, which yields long-range-dependent rate processes with
//! Hurst exponent `H = (3 − α) / 2` for ON/OFF tail index `α ∈ (1, 2)`.
//!
//! The encoder is *deterministic per (seed, feed)* and streamable: the
//! rate at any second is computable without materializing the whole
//! series, so byte accounting over a transfer's span costs O(span).

use lsw_stats::dist::{Pareto, Sample};
use lsw_stats::rng::SeedStream;
use lsw_trace::ids::ObjectId;
use serde::{Deserialize, Serialize};

/// VBR model configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VbrConfig {
    /// Nominal mean bitrate of the encoded feed, bits per second
    /// (2002-era live video: ~250 kbit/s source feed).
    pub mean_bps: f64,
    /// Number of superposed ON/OFF sources (more ⇒ smoother marginal,
    /// same long-range dependence).
    pub n_sources: usize,
    /// Pareto tail index of ON/OFF durations, in (1, 2):
    /// `H = (3 − alpha) / 2`.
    pub alpha: f64,
    /// Mean ON/OFF duration scale in seconds.
    pub period_scale: f64,
}

impl Default for VbrConfig {
    fn default() -> Self {
        Self {
            mean_bps: 250_000.0,
            n_sources: 24,
            alpha: 1.4,
            period_scale: 2.0,
        }
    }
}

impl VbrConfig {
    /// The theoretical Hurst exponent of the generated rate process.
    pub fn theoretical_hurst(&self) -> f64 {
        (3.0 - self.alpha) / 2.0
    }

    /// Validates structural constraints.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.mean_bps > 0.0) {
            return Err("mean_bps must be positive".into());
        }
        if self.n_sources == 0 {
            return Err("need at least one ON/OFF source".into());
        }
        if !(self.alpha > 1.0 && self.alpha < 2.0) {
            return Err(format!(
                "alpha must be in (1, 2) for LRD, got {}",
                self.alpha
            ));
        }
        if !(self.period_scale > 0.0) {
            return Err("period_scale must be positive".into());
        }
        Ok(())
    }
}

/// A deterministic VBR encoder for one or more live feeds.
#[derive(Debug, Clone)]
pub struct VbrEncoder {
    config: VbrConfig,
    seeds: SeedStream,
}

impl VbrEncoder {
    /// Creates an encoder; all feeds derive from `seed` deterministically.
    pub fn new(config: VbrConfig, seed: u64) -> Result<Self, String> {
        config.validate()?;
        Ok(Self {
            config,
            seeds: SeedStream::new(seed).child("vbr"),
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &VbrConfig {
        &self.config
    }

    /// The per-second bitrate series of a feed over `[start, start + len)`
    /// seconds.
    ///
    /// Each superposed source contributes `mean_bps / (n · E[on fraction])`
    /// while ON. Sources are simulated independently from the feed seed;
    /// the cost is proportional to `len + warmup`, not to `start`, because
    /// each source's renewal process is regenerated from its own stream
    /// with a deterministic skip to the window.
    pub fn bitrate_series(&self, feed: ObjectId, start: u64, len: usize) -> Vec<f64> {
        let cfg = &self.config;
        // E[on fraction] = 1/2 by symmetry (same ON and OFF law).
        let per_source = cfg.mean_bps / (cfg.n_sources as f64 * 0.5);
        // lsw::allow(L005): VbrConfig::validate checked scale and alpha
        let on_off = Pareto::new(cfg.period_scale, cfg.alpha).expect("validated");
        let end = start + len as u64;
        let mut series = vec![0.0f64; len];
        for src in 0..cfg.n_sources {
            let mut rng = self
                .seeds
                .rng_indexed("source", (u64::from(feed.0) << 32) | src as u64);
            // Walk the renewal process from t = 0; durations are >= the
            // period scale so this is O(end / period_scale) draws.
            let mut t = 0.0f64;
            let mut on = src % 2 == 0; // stagger initial phases
            while t < end as f64 {
                let dur = on_off.sample(&mut rng);
                let seg_end = t + dur;
                if on && seg_end > start as f64 {
                    let lo = t.max(start as f64) as u64;
                    let hi = (seg_end.min(end as f64)).ceil() as u64;
                    for s in lo..hi.min(end) {
                        // Pro-rate partial coverage of the boundary seconds.
                        let sec_start = s as f64;
                        let sec_end = sec_start + 1.0;
                        let overlap = (seg_end.min(sec_end) - t.max(sec_start)).clamp(0.0, 1.0);
                        series[(s - start) as usize] += per_source * overlap;
                    }
                }
                t = seg_end;
                on = !on;
            }
        }
        series
    }

    /// Bytes delivered by a transfer of `duration` seconds starting at
    /// `start` on `feed`, if the client keeps up with the encoded rate.
    pub fn bytes_over(&self, feed: ObjectId, start: u64, duration: u32) -> u64 {
        if duration == 0 {
            return 0;
        }
        let series = self.bitrate_series(feed, start, duration as usize);
        (series.iter().sum::<f64>() / 8.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsw_stats::selfsim::hurst_variance_time;

    fn encoder() -> VbrEncoder {
        VbrEncoder::new(VbrConfig::default(), 77).unwrap()
    }

    #[test]
    fn rejects_bad_config() {
        let cfg = VbrConfig {
            alpha: 2.5,
            ..Default::default()
        };
        assert!(VbrEncoder::new(cfg, 1).is_err());
        let cfg = VbrConfig {
            n_sources: 0,
            ..Default::default()
        };
        assert!(VbrEncoder::new(cfg, 1).is_err());
    }

    #[test]
    fn mean_rate_near_nominal() {
        let e = encoder();
        let series = e.bitrate_series(ObjectId(0), 0, 8_192);
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        // ON fraction of a symmetric Pareto renewal is 1/2 in expectation,
        // but finite-horizon bias is real; accept ±35%.
        assert!(
            (mean / 250_000.0 - 1.0).abs() < 0.35,
            "mean rate {mean} vs nominal 250k"
        );
    }

    #[test]
    fn rate_is_variable_and_nonnegative() {
        let e = encoder();
        let series = e.bitrate_series(ObjectId(0), 100, 2_048);
        assert!(series.iter().all(|&r| r >= 0.0));
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        let var = series.iter().map(|&r| (r - mean).powi(2)).sum::<f64>() / series.len() as f64;
        assert!(
            var.sqrt() / mean > 0.05,
            "CV too small: {}",
            var.sqrt() / mean
        );
    }

    #[test]
    fn encoded_rate_is_self_similar() {
        // The headline property: H ≈ (3 − 1.4)/2 = 0.8.
        let e = encoder();
        let series = e.bitrate_series(ObjectId(0), 0, 16_384);
        let h = hurst_variance_time(&series, 4).unwrap();
        assert!(h.h > 0.65, "Hurst {} (theory 0.8)", h.h);
        assert!(h.h < 1.0);
    }

    #[test]
    fn deterministic_and_feed_independent() {
        let e = encoder();
        let a = e.bitrate_series(ObjectId(0), 500, 256);
        let b = e.bitrate_series(ObjectId(0), 500, 256);
        assert_eq!(a, b, "same feed/window must reproduce");
        let c = e.bitrate_series(ObjectId(1), 500, 256);
        assert_ne!(a, c, "feeds must differ");
    }

    #[test]
    fn windows_are_consistent() {
        // A sub-window read must agree with the same seconds read as part
        // of a larger window.
        let e = encoder();
        let big = e.bitrate_series(ObjectId(0), 1_000, 512);
        let small = e.bitrate_series(ObjectId(0), 1_100, 128);
        for (i, &v) in small.iter().enumerate() {
            assert!((v - big[100 + i]).abs() < 1e-9, "window mismatch at {i}");
        }
    }

    #[test]
    fn bytes_over_matches_series_sum() {
        let e = encoder();
        let series = e.bitrate_series(ObjectId(0), 42, 100);
        let expected = (series.iter().sum::<f64>() / 8.0) as u64;
        assert_eq!(e.bytes_over(ObjectId(0), 42, 100), expected);
        assert_eq!(e.bytes_over(ObjectId(0), 42, 0), 0);
    }
}
