//! The live-object model: feeds, cameras, and the join/leave semantics.
//!
//! §2.1: two live objects (feeds), each showing one of 48 cameras at any
//! moment. Clients cannot choose *content* — only which feed to join and
//! when to leave (the paper's "object-driven" access). The camera schedule
//! is a property of the *object*, shared by every viewer: all transfers of
//! a feed at time `t` see the same camera, which is exactly the
//! synchronizing effect the paper attributes live content's temporal
//! correlations to.

use lsw_stats::rng::u01;
use lsw_trace::ids::ObjectId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The live feeds and their shared camera schedules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveObjects {
    /// Normalized cumulative feed weights for join sampling.
    cum_weights: Vec<f64>,
    n_cameras: u16,
    camera_hold_secs: f64,
    /// Per-feed schedule seed, so feeds switch independently.
    schedule_seed: u64,
}

impl LiveObjects {
    /// Creates the model; `feed_weights` must be non-empty and positive,
    /// `n_cameras` in 1..=256.
    pub fn new(
        feed_weights: &[f64],
        n_cameras: usize,
        camera_hold_secs: f64,
        schedule_seed: u64,
    ) -> Result<Self, String> {
        if feed_weights.is_empty() {
            return Err("need at least one feed".into());
        }
        if feed_weights.iter().any(|&w| !(w > 0.0)) {
            return Err("feed weights must be positive".into());
        }
        if n_cameras == 0 || n_cameras > 256 {
            return Err("n_cameras must be in 1..=256".into());
        }
        if !(camera_hold_secs > 0.0) {
            return Err("camera_hold_secs must be positive".into());
        }
        let total: f64 = feed_weights.iter().sum();
        let mut cum = Vec::with_capacity(feed_weights.len());
        let mut acc = 0.0;
        for &w in feed_weights {
            acc += w / total;
            cum.push(acc);
        }
        if let Some(last) = cum.last_mut() {
            *last = 1.0;
        }
        Ok(Self {
            cum_weights: cum,
            n_cameras: n_cameras as u16,
            camera_hold_secs,
            schedule_seed,
        })
    }

    /// Number of feeds.
    pub fn n_objects(&self) -> usize {
        self.cum_weights.len()
    }

    /// Number of cameras.
    pub fn n_cameras(&self) -> usize {
        self.n_cameras as usize
    }

    /// Samples which feed a joining client taps into.
    pub fn sample_feed<R: Rng + ?Sized>(&self, rng: &mut R) -> ObjectId {
        let u = u01(rng);
        let idx = self
            .cum_weights
            .partition_point(|&c| c < u)
            .min(self.cum_weights.len() - 1);
        ObjectId(idx as u16)
    }

    /// The camera feed `object` is showing at time `t` — deterministic and
    /// shared by all viewers (the live-content synchronization property).
    ///
    /// The schedule is a hash-driven piecewise-constant process: the feed
    /// holds a camera for `camera_hold_secs`-long slots; each slot's camera
    /// is a stable hash of (seed, feed, slot).
    pub fn camera_at(&self, object: ObjectId, t: f64) -> u8 {
        let slot = if t <= 0.0 {
            0
        } else {
            (t / self.camera_hold_secs) as u64
        };
        let mut z = self
            .schedule_seed
            .wrapping_add(u64::from(object.0).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(slot.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z % u64::from(self.n_cameras)) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsw_stats::SeedStream;

    fn objects() -> LiveObjects {
        LiveObjects::new(&[0.7, 0.3], 48, 45.0, 99).unwrap()
    }

    #[test]
    fn rejects_bad_params() {
        assert!(LiveObjects::new(&[], 48, 45.0, 0).is_err());
        assert!(LiveObjects::new(&[1.0, 0.0], 48, 45.0, 0).is_err());
        assert!(LiveObjects::new(&[1.0], 0, 45.0, 0).is_err());
        assert!(LiveObjects::new(&[1.0], 300, 45.0, 0).is_err());
        assert!(LiveObjects::new(&[1.0], 48, 0.0, 0).is_err());
    }

    #[test]
    fn feed_sampling_tracks_weights() {
        let o = objects();
        let mut rng = SeedStream::new(51).rng("objects");
        const N: usize = 100_000;
        let feed0 = (0..N).filter(|_| o.sample_feed(&mut rng).0 == 0).count() as f64 / N as f64;
        assert!((feed0 - 0.7).abs() < 0.01, "feed 0 share {feed0}");
    }

    #[test]
    fn camera_schedule_is_shared_and_stable() {
        let o = objects();
        // Every viewer at the same (feed, time) sees the same camera.
        assert_eq!(
            o.camera_at(ObjectId(0), 100.0),
            o.camera_at(ObjectId(0), 100.0)
        );
        // Within one hold slot the camera stays put.
        assert_eq!(
            o.camera_at(ObjectId(0), 100.0),
            o.camera_at(ObjectId(0), 130.0)
        );
        // Feeds switch independently: schedules differ somewhere.
        let differs = (0..200).any(|i| {
            o.camera_at(ObjectId(0), i as f64 * 50.0) != o.camera_at(ObjectId(1), i as f64 * 50.0)
        });
        assert!(differs, "feed schedules identical");
    }

    #[test]
    fn cameras_cover_the_fleet() {
        // Over many slots all 48 cameras should appear.
        let o = objects();
        let mut seen = std::collections::HashSet::new();
        for i in 0..5_000 {
            seen.insert(o.camera_at(ObjectId(0), i as f64 * 45.0));
        }
        assert_eq!(seen.len(), 48, "only {} cameras seen", seen.len());
        assert!(seen.iter().all(|&c| c < 48));
    }

    #[test]
    fn camera_switches_at_hold_boundaries() {
        let o = LiveObjects::new(&[1.0], 48, 10.0, 7).unwrap();
        // Count switches over 1,000 slots: should be close to slot count
        // (hash collisions allow occasional holds across a boundary).
        let mut switches = 0;
        let mut prev = o.camera_at(ObjectId(0), 0.0);
        for slot in 1..1_000 {
            let cam = o.camera_at(ObjectId(0), slot as f64 * 10.0 + 0.5);
            if cam != prev {
                switches += 1;
            }
            prev = cam;
        }
        assert!(switches > 900, "only {switches} switches in 999 slots");
    }

    #[test]
    fn negative_time_safe() {
        let o = objects();
        // Clamped to slot 0; must not panic.
        let _ = o.camera_at(ObjectId(0), -5.0);
    }
}
