//! # lsw-core — GISMO-Live: a generative model for live streaming workloads
//!
//! This crate is the reproduction's *primary contribution*: the generative
//! model of §6 / Table 2 of Veloso et al. (IMC 2002), realized as a
//! workload generator in the spirit of GISMO \[19\] extended for live media.
//!
//! The model, layer by layer (matching the paper's hierarchy):
//!
//! * **Client arrivals** — a piecewise-stationary Poisson process whose
//!   mean rate follows a programmable diurnal/weekly profile ([`diurnal`]),
//!   as established in §3.4 (Figs 4–6).
//! * **Client identity** — which client owns an arriving session is drawn
//!   from the Zipf *client interest profile* ([`interest`]), α = 0.4704
//!   (Fig 7 right). This is the paper's role-reversal: clients, not
//!   objects, are the popularity-skewed entity.
//! * **Session composition** — the number of transfers in a session is
//!   Zipf(α = 2.7042) (Fig 13); transfer starts within a session follow
//!   lognormal(μ = 4.900, σ = 1.321) interarrivals (Fig 14).
//! * **Transfers** — lengths are lognormal(μ = 4.384, σ = 1.427),
//!   reflecting client *stickiness* rather than object size (Fig 19, §5.3);
//!   the object (feed) and camera come from the live-object model
//!   ([`objects`]); bandwidth is bimodal, client-bound with a ~10%
//!   congestion-bound mode ([`bandwidth`], Fig 20).
//!
//! [`vbr`] adds GISMO's self-similar variable-bit-rate content encoding
//! (superposed heavy-tailed ON/OFF sources, Hurst `H = (3−α)/2`), and
//! [`generator::Generator`] assembles these into a [`workload::Workload`]
//! and renders it to an `lsw-trace` trace. [`stored`] provides the classic
//! stored-media (user-driven, object-popularity) GISMO baseline so the
//! paper's live-vs-stored duality can be exercised side by side.
//!
//! ## Quickstart
//!
//! ```
//! use lsw_core::config::WorkloadConfig;
//! use lsw_core::generator::Generator;
//!
//! // A 1-day, 2,000-client scaled-down version of the paper's workload.
//! let config = WorkloadConfig::paper().scaled(2_000, 86_400, 4_000);
//! let generator = Generator::new(config, 42).unwrap();
//! let workload = generator.generate();
//! let trace = workload.render();
//! assert!(!trace.is_empty());
//! ```

#![warn(missing_docs)]
// `!(x > 0.0)` in parameter validation is deliberate: unlike `x <= 0.0` it
// also rejects NaN, which is exactly the point of those guards.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod bandwidth;
pub mod config;
pub mod diurnal;
pub mod generator;
pub mod interest;
pub mod objects;
pub mod stored;
pub mod validate;
pub mod vbr;
pub mod workload;

pub use config::WorkloadConfig;
pub use generator::Generator;
pub use workload::Workload;
