//! The client interest profile: which client owns each arriving session.
//!
//! §3.5 of the paper introduces the *interest profile*: ranking clients by
//! how many sessions they open yields a Zipf-like law with α = 0.4704
//! (Fig 7 right). GISMO's live extension therefore treats clients as an
//! enumerable population and assigns each generated session to a client
//! drawn from a bounded Zipf over that population — the mirror image of
//! stored-media object popularity.

use lsw_stats::dist::{Discrete, ParamError, SamplerBackend, ZipfTable};
use lsw_trace::ids::ClientId;
use rand::Rng;

/// Assigns sessions to clients with Zipf-skewed frequency.
#[derive(Debug, Clone)]
pub struct InterestProfile {
    zipf: ZipfTable,
}

impl InterestProfile {
    /// Creates a profile over `n_clients` with interest exponent `alpha`
    /// (paper: 0.4704). `alpha = 0` degenerates to uniform interest.
    pub fn new(n_clients: usize, alpha: f64) -> Result<Self, ParamError> {
        Self::with_backend(n_clients, alpha, SamplerBackend::InverseCdf)
    }

    /// Creates a profile with an explicit rank-sampling backend.
    ///
    /// [`SamplerBackend::Alias`] makes every draw O(1) (the inverse-CDF
    /// default is O(log n)) at the cost of consuming two uniforms per draw
    /// instead of one, so the two backends yield different — identically
    /// distributed — client sequences from the same seed. Fixtures pin one.
    pub fn with_backend(
        n_clients: usize,
        alpha: f64,
        backend: SamplerBackend,
    ) -> Result<Self, ParamError> {
        Ok(Self {
            zipf: ZipfTable::with_backend(n_clients as u64, alpha, backend)?,
        })
    }

    /// The rank-sampling backend in force.
    pub fn backend(&self) -> SamplerBackend {
        self.zipf.backend()
    }

    /// Number of clients.
    pub fn n_clients(&self) -> usize {
        self.zipf.n() as usize
    }

    /// Interest exponent.
    pub fn alpha(&self) -> f64 {
        self.zipf.s()
    }

    /// Samples the client for a new session. Client ids are assigned in
    /// interest-rank order (client 0 is the most interested), which costs
    /// no generality: ids are opaque labels.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> ClientId {
        ClientId((self.zipf.sample_k(rng) - 1) as u32)
    }

    /// The expected fraction of sessions owned by the rank-`k` client
    /// (`k` is 1-based) — Fig 7's fitted curve.
    pub fn expected_share(&self, k: u64) -> f64 {
        self.zipf.pmf(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsw_stats::empirical::RankFrequency;
    use lsw_stats::fit::fit_zipf_rank_frequency;
    use lsw_stats::SeedStream;

    #[test]
    fn rejects_bad_params() {
        assert!(InterestProfile::new(0, 0.5).is_err());
        assert!(InterestProfile::new(100, -1.0).is_err());
    }

    #[test]
    fn sample_ids_in_population() {
        let p = InterestProfile::new(50, 0.4704).unwrap();
        let mut rng = SeedStream::new(41).rng("interest");
        for _ in 0..5_000 {
            let c = p.sample(&mut rng);
            assert!(c.0 < 50);
        }
    }

    #[test]
    fn rank_one_dominates() {
        let p = InterestProfile::new(1_000, 0.7).unwrap();
        let mut rng = SeedStream::new(42).rng("interest2");
        let mut counts = vec![0u64; 1_000];
        for _ in 0..200_000 {
            counts[p.sample(&mut rng).0 as usize] += 1;
        }
        assert!(
            counts[0] > counts[99],
            "rank 1 {} vs rank 100 {}",
            counts[0],
            counts[99]
        );
        let emp = counts[0] as f64 / 200_000.0;
        assert!((emp - p.expected_share(1)).abs() < 0.005);
    }

    #[test]
    fn recovered_exponent_matches_configured() {
        // The paper's closed loop in miniature: generate session counts,
        // rank clients, fit the Zipf — α must come back.
        let alpha = 0.4704;
        let p = InterestProfile::new(3_000, alpha).unwrap();
        let mut rng = SeedStream::new(43).rng("interest3");
        let mut counts = vec![0u64; 3_000];
        for _ in 0..500_000 {
            counts[p.sample(&mut rng).0 as usize] += 1;
        }
        let rf = RankFrequency::from_counts(counts);
        let fit = fit_zipf_rank_frequency(&rf, Some(300.0)).unwrap();
        assert!(
            (fit.alpha - alpha).abs() < 0.06,
            "recovered {} vs configured {alpha}",
            fit.alpha
        );
    }

    #[test]
    fn uniform_interest_special_case() {
        let p = InterestProfile::new(100, 0.0).unwrap();
        assert!((p.expected_share(1) - 0.01).abs() < 1e-12);
        assert!((p.expected_share(100) - 0.01).abs() < 1e-12);
    }
}
