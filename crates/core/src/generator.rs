//! The GISMO-Live generator: Table 2 assembled into a pipeline.
//!
//! Generation follows the paper's §6 generative model verbatim:
//!
//! 1. **Client arrivals** — session start times from a piecewise-stationary
//!    Poisson process keyed to the diurnal profile (Fig 4).
//! 2. **Client identity** — each session is assigned to a client from the
//!    Zipf interest profile (Fig 7 right).
//! 3. **Session length** — the number of transfers from the Fig 13 Zipf.
//! 4. **Transfers** — the first transfer starts with the session; later
//!    ones follow lognormal intra-session interarrivals (Fig 14); each
//!    length is lognormal (Fig 19), clipped to the live event's horizon.
//!
//! Everything else the paper measured (session ON/OFF times, concurrency,
//! client interarrivals, the transfer-interarrival tail) is *emergent* —
//! exactly as in the paper, where those variables are redundant given the
//! retained set.

use crate::config::{TransfersPerSession, WorkloadConfig};
use crate::diurnal::DiurnalProfile;
use crate::interest::InterestProfile;
use crate::objects::LiveObjects;
use crate::workload::{GeneratedSession, ScheduledTransfer, Workload};
use lsw_stats::dist::{Discrete, Geometric, LogNormal, Sample, SamplerBackend, Zeta};
use lsw_stats::par::{merge_sorted_runs, F64Key, Parallelism};
use lsw_stats::rng::{u01, SeedStream};
use lsw_topology::{AsRegistry, AsRegistryConfig, ClientPopulation, ClientPopulationConfig};
use rand::Rng;

/// The transfers-per-session sampler compiled from configuration.
enum TpsSampler {
    Zeta(Zeta),
    Geometric(Geometric),
    Hybrid {
        tail: Zeta,
        body: Geometric,
        p_tail: f64,
    },
}

impl TpsSampler {
    fn from_config(cfg: &TransfersPerSession) -> Result<Self, String> {
        Ok(match *cfg {
            TransfersPerSession::Zipf { alpha } => {
                TpsSampler::Zeta(Zeta::new(alpha).map_err(|e| e.to_string())?)
            }
            TransfersPerSession::Geometric { mean } => {
                TpsSampler::Geometric(Geometric::with_mean(mean).map_err(|e| e.to_string())?)
            }
            TransfersPerSession::Hybrid {
                alpha,
                p_tail,
                body_mean,
            } => TpsSampler::Hybrid {
                tail: Zeta::new(alpha).map_err(|e| e.to_string())?,
                body: Geometric::with_mean(body_mean).map_err(|e| e.to_string())?,
                p_tail,
            },
        })
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self {
            TpsSampler::Zeta(z) => z.sample_k(rng),
            TpsSampler::Geometric(g) => g.sample_k(rng),
            TpsSampler::Hybrid { tail, body, p_tail } => {
                if u01(rng) < *p_tail {
                    tail.sample_k(rng)
                } else {
                    body.sample_k(rng)
                }
            }
        }
    }
}

/// The assembled generator.
pub struct Generator {
    config: WorkloadConfig,
    seeds: SeedStream,
    profile: DiurnalProfile,
    interest: InterestProfile,
    objects: LiveObjects,
    tps: TpsSampler,
    iat: LogNormal,
    length: LogNormal,
    population: ClientPopulation,
    par: Parallelism,
}

impl Generator {
    /// Builds a generator from a validated configuration and a master seed.
    pub fn new(config: WorkloadConfig, seed: u64) -> Result<Self, String> {
        config.validate()?;
        let seeds = SeedStream::new(seed);
        let profile = DiurnalProfile::paper(config.weekday_weights, config.start_weekday)
            .with_day_envelope(config.day_envelope.clone())?;
        let interest = InterestProfile::new(config.n_clients, config.interest_alpha)
            .map_err(|e| e.to_string())?;
        let objects = LiveObjects::new(
            &config.objects.feed_weights,
            config.objects.n_cameras,
            config.objects.camera_hold_secs,
            seeds.seed("camera-schedule"),
        )?;
        let tps = TpsSampler::from_config(&config.transfers_per_session)?;
        let iat = LogNormal::new(config.intra_session_iat.mu, config.intra_session_iat.sigma)
            .map_err(|e| e.to_string())?;
        let length = LogNormal::new(config.transfer_length.mu, config.transfer_length.sigma)
            .map_err(|e| e.to_string())?;
        // Client population (topology substrate). Depends only on config
        // and seed, so it is built once here; generate() reuses it.
        let mut topo_rng = seeds.rng("topology");
        let registry = AsRegistry::build(&AsRegistryConfig::default(), &mut topo_rng);
        let pop_config = ClientPopulationConfig {
            n_clients: config.n_clients,
            ..ClientPopulationConfig::default()
        };
        let population = ClientPopulation::build(&pop_config, &registry, &mut topo_rng);
        Ok(Self {
            config,
            seeds,
            profile,
            interest,
            objects,
            tps,
            iat,
            length,
            population,
            par: Parallelism::auto(),
        })
    }

    /// Builds a generator with a custom diurnal profile (GISMO's
    /// programmable-arrival extension, §6.2).
    pub fn with_profile(
        config: WorkloadConfig,
        seed: u64,
        profile: DiurnalProfile,
    ) -> Result<Self, String> {
        let mut g = Self::new(config, seed)?;
        g.profile = profile;
        Ok(g)
    }

    /// The diurnal profile in force.
    pub fn profile(&self) -> &DiurnalProfile {
        &self.profile
    }

    /// Sets the worker count for [`generate`](Self::generate). The output
    /// is bit-identical for every setting; this only changes wall-clock
    /// time.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// Selects the discrete-sampling backend for the client interest
    /// profile. A builder rather than a config field: backend choice
    /// changes how the RNG stream is consumed (one uniform per draw vs
    /// two), so switching it produces a different — identically
    /// distributed — workload from the same seed. It is an execution
    /// concern like [`with_parallelism`](Self::with_parallelism), except
    /// that unlike thread count it IS part of the determinism contract,
    /// which is why fixtures select it explicitly instead of inheriting a
    /// silent default. Output remains bit-identical across thread counts
    /// for either backend.
    pub fn with_sampler_backend(mut self, backend: SamplerBackend) -> Result<Self, String> {
        self.interest = InterestProfile::with_backend(
            self.config.n_clients,
            self.config.interest_alpha,
            backend,
        )
        .map_err(|e| e.to_string())?;
        Ok(self)
    }

    /// The interest-profile sampling backend in force.
    pub fn sampler_backend(&self) -> SamplerBackend {
        self.interest.backend()
    }

    /// Generates the full workload.
    ///
    /// Each session's randomness comes from its own counter-derived
    /// substream (`seeds.rng_indexed("session", i)` for the `i`-th
    /// arrival), so sessions can be generated in any order — and therefore
    /// on any number of worker threads — without changing a single draw.
    /// Workers take contiguous arrival chunks, emit locally sorted
    /// transfer runs, and the runs are k-way merged; the result is
    /// bit-identical at every thread count.
    pub fn generate(&self) -> Workload {
        // 1. Session arrivals (sequential: one inherently ordered stream).
        let process = self
            .profile
            .to_process(self.config.horizon_secs, self.config.target_sessions);
        let mut arrivals_rng = self.seeds.rng("arrivals");
        let arrivals =
            process.generate(&mut arrivals_rng, 0.0, f64::from(self.config.horizon_secs));

        // 2–4. Sessions and transfers, in parallel over arrival chunks.
        let ranges = self.par.chunk_ranges(arrivals.len());
        let chunks: Vec<ChunkOutput> = if ranges.len() == 1 {
            vec![self.generate_chunk(&arrivals, 0)]
        } else {
            crossbeam::thread::scope(|s| {
                let handles: Vec<_> = ranges
                    .iter()
                    .map(|r| {
                        let slice = &arrivals[r.clone()];
                        let base = r.start;
                        s.spawn(move || self.generate_chunk(slice, base))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(chunk) => chunk,
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            })
        };

        // Stitch chunk outputs back together. Sessions concatenate in
        // chunk (= arrival) order; each chunk's local session ids shift by
        // the number of sessions emitted before it (a prefix sum); the
        // locally sorted transfer runs merge into global start order.
        let mut sessions = Vec::with_capacity(arrivals.len());
        let mut runs = Vec::with_capacity(chunks.len());
        let mut offset = 0u32;
        for mut chunk in chunks {
            for t in &mut chunk.transfers {
                t.session += offset;
            }
            offset += chunk.sessions.len() as u32;
            sessions.append(&mut chunk.sessions);
            runs.push(chunk.transfers);
        }
        let transfers = merge_sorted_runs(runs, |t: &ScheduledTransfer| F64Key(t.start));

        Workload::new(
            self.config.clone(),
            self.seeds,
            self.population.clone(),
            sessions,
            transfers,
        )
    }

    /// Generates the sessions for one contiguous slice of the arrival
    /// vector. `base` is the slice's offset into the full vector: session
    /// `base + i` draws from the `base + i`-indexed substream regardless
    /// of chunking. Transfer session ids are chunk-local (the caller
    /// shifts them); the returned transfers are stably sorted by start.
    fn generate_chunk(&self, arrivals: &[f64], base: usize) -> ChunkOutput {
        let horizon = f64::from(self.config.horizon_secs);
        let mut sessions = Vec::with_capacity(arrivals.len());
        let mut transfers = Vec::with_capacity(arrivals.len() * 2);
        for (i, &t0) in arrivals.iter().enumerate() {
            let mut rng = self.seeds.rng_indexed("session", (base + i) as u64);
            let session = sessions.len() as u32;
            let client = self.interest.sample(&mut rng);
            let n = self.tps.sample(&mut rng);
            let mut start = t0;
            let mut emitted = 0u32;
            for k in 0..n {
                if k > 0 {
                    start += self.iat.sample(&mut rng);
                }
                if start >= horizon {
                    break;
                }
                // Live content exists only while the event runs: clip.
                let duration = self.length.sample(&mut rng).min(horizon - start);
                let object = self.objects.sample_feed(&mut rng);
                let camera = self.objects.camera_at(object, start);
                transfers.push(ScheduledTransfer {
                    session,
                    client,
                    object,
                    camera,
                    start,
                    duration,
                });
                emitted += 1;
            }
            if emitted > 0 {
                sessions.push(GeneratedSession {
                    client,
                    start: t0,
                    n_transfers: emitted,
                });
            }
        }
        // Stable, total-order sort: ties must resolve by emission order so
        // the downstream k-way merge equals a global stable sort at any
        // chunking.
        transfers.sort_by(|a, b| a.start.total_cmp(&b.start));
        ChunkOutput {
            sessions,
            transfers,
        }
    }
}

/// One worker's share of the workload: sessions in arrival order,
/// transfers stably sorted by start with chunk-local session ids.
struct ChunkOutput {
    sessions: Vec<GeneratedSession>,
    transfers: Vec<ScheduledTransfer>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsw_stats::empirical::RankFrequency;
    use lsw_stats::fit::{fit_lognormal, fit_zipf_rank_frequency};

    fn generate_small(seed: u64) -> Workload {
        let config = WorkloadConfig::paper().scaled(2_000, 86_400, 6_000);
        Generator::new(config, seed).unwrap().generate()
    }

    #[test]
    fn rejects_invalid_config() {
        let mut config = WorkloadConfig::paper();
        config.n_clients = 0;
        assert!(Generator::new(config, 1).is_err());
    }

    #[test]
    fn session_count_near_target() {
        let w = generate_small(11);
        let n = w.sessions().len() as f64;
        assert!((n - 6_000.0).abs() < 5.0 * 6_000f64.sqrt(), "sessions {n}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate_small(5);
        let b = generate_small(5);
        assert_eq!(a.transfers(), b.transfers());
        assert_eq!(a.sessions(), b.sessions());
        let c = generate_small(6);
        assert_ne!(a.transfers().len(), 0);
        assert_ne!(a.transfers(), c.transfers());
    }

    #[test]
    fn transfers_sorted_and_within_horizon() {
        let w = generate_small(12);
        let mut prev = 0.0;
        for t in w.transfers() {
            assert!(t.start >= prev, "not sorted");
            assert!(t.start < 86_400.0);
            assert!(
                t.start + t.duration <= 86_400.0 + 1e-9,
                "transfer escapes horizon"
            );
            assert!(t.duration >= 0.0);
            assert!(t.camera < 48);
            assert!(t.object.0 < 2);
            prev = t.start;
        }
    }

    #[test]
    fn transfer_lengths_recover_lognormal_params() {
        let w = generate_small(13);
        // Exclude horizon-clipped transfers from the fit.
        let lengths: Vec<f64> = w
            .transfers()
            .iter()
            .filter(|t| t.start + t.duration < 86_399.0)
            .map(|t| t.duration)
            .collect();
        let f = fit_lognormal(&lengths).unwrap();
        assert!((f.mu - 4.383921).abs() < 0.1, "mu {}", f.mu);
        assert!((f.sigma - 1.427247).abs() < 0.1, "sigma {}", f.sigma);
    }

    #[test]
    fn client_interest_zipf_emerges() {
        let w = generate_small(14);
        let mut counts = vec![0u64; 2_000];
        for s in w.sessions() {
            counts[s.client.0 as usize] += 1;
        }
        let rf = RankFrequency::from_counts(counts);
        let fit = fit_zipf_rank_frequency(&rf, Some(100.0)).unwrap();
        assert!(
            (fit.alpha - 0.4704).abs() < 0.15,
            "interest alpha {} (target 0.4704)",
            fit.alpha
        );
    }

    #[test]
    fn diurnal_pattern_in_arrivals() {
        let w = generate_small(15);
        let trough = w
            .sessions()
            .iter()
            .filter(|s| (5.0 * 3_600.0..9.0 * 3_600.0).contains(&s.start))
            .count();
        let peak = w
            .sessions()
            .iter()
            .filter(|s| (20.0 * 3_600.0..=23.9 * 3_600.0).contains(&s.start))
            .count();
        assert!(peak > 4 * trough, "peak {peak} vs trough {trough}");
    }

    #[test]
    fn custom_profile_respected() {
        // A flat profile kills the diurnal skew.
        let config = WorkloadConfig::paper().scaled(1_000, 86_400, 5_000);
        let g = Generator::with_profile(config, 16, DiurnalProfile::flat()).unwrap();
        let w = g.generate();
        let morning = w
            .sessions()
            .iter()
            .filter(|s| (5.0 * 3_600.0..9.0 * 3_600.0).contains(&s.start))
            .count() as f64;
        let evening = w
            .sessions()
            .iter()
            .filter(|s| (20.0 * 3_600.0..24.0 * 3_600.0).contains(&s.start))
            .count() as f64;
        // Same window length: counts should be comparable.
        assert!(
            (morning / evening - 1.0).abs() < 0.35,
            "{morning} vs {evening}"
        );
    }

    #[test]
    fn hybrid_tps_raises_mean() {
        let base = WorkloadConfig::paper().scaled(1_000, 86_400, 4_000);
        let zipf = Generator::new(base.clone(), 17).unwrap().generate();
        let hybrid_cfg = WorkloadConfig {
            transfers_per_session: crate::config::TransfersPerSession::Hybrid {
                alpha: 2.70417,
                p_tail: 0.35,
                body_mean: 4.8,
            },
            ..base
        };
        let hybrid = Generator::new(hybrid_cfg, 17).unwrap().generate();
        let mean = |w: &Workload| w.len() as f64 / w.sessions().len() as f64;
        assert!(
            mean(&hybrid) > mean(&zipf) + 0.8,
            "{} vs {}",
            mean(&hybrid),
            mean(&zipf)
        );
    }
}
