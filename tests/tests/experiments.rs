//! The experiment harness, exercised end to end at small scale: every
//! registered experiment must run, produce series and comparisons, and
//! hold all its criteria.

use lsw::figures::ascii::{scatter, AxisScale};
use lsw::figures::context::{ReproContext, Scale};
use lsw::figures::experiments;

fn ctx() -> ReproContext {
    ReproContext::build(Scale::Small, 42)
}

#[test]
fn every_experiment_holds_at_small_scale() {
    let ctx = ctx();
    let mut failures = Vec::new();
    for (id, run) in experiments::all() {
        let result = run(&ctx);
        assert_eq!(result.id, id, "experiment id mismatch");
        assert!(
            !result.comparisons.is_empty(),
            "{id} produced no comparisons"
        );
        if !result.all_hold() {
            failures.push(format!("{id}: {}", result.render_text()));
        }
    }
    assert!(
        failures.is_empty(),
        "failed experiments:\n{}",
        failures.join("\n")
    );
}

#[test]
fn extension_experiments_hold_at_small_scale() {
    let ctx = ctx();
    for (id, run) in experiments::extensions() {
        let result = run(&ctx);
        assert_eq!(result.id, id);
        assert!(
            result.all_hold(),
            "extension {id} failed:
{}",
            result.render_text()
        );
    }
}

#[test]
fn experiment_results_serialize() {
    let ctx = ctx();
    let (_, run) = experiments::by_id("fig07").expect("registered");
    let result = run(&ctx);
    let json = serde_json::to_string(&result).expect("serializes");
    let back: lsw::figures::FigureResult = serde_json::from_str(&json).expect("parses");
    assert_eq!(back.id, "fig07");
    assert_eq!(back.comparisons.len(), result.comparisons.len());
}

#[test]
fn figure_series_are_plottable() {
    let ctx = ctx();
    for (id, run) in experiments::all() {
        let result = run(&ctx);
        for series in &result.series {
            // Every series point must be finite on at least one axis and
            // the ASCII renderer must not panic on it.
            let rendered = scatter(&series.points, 48, 10, AxisScale::Log, AxisScale::Log);
            assert!(!rendered.is_empty(), "{id}/{}", series.name);
        }
    }
}

#[test]
fn rerun_with_same_context_is_stable() {
    // Experiments are pure functions of the context.
    let ctx = ctx();
    let (_, run) = experiments::by_id("table2").expect("registered");
    let a = run(&ctx);
    let b = run(&ctx);
    assert_eq!(a, b);
}

#[test]
fn seeds_change_measurements_but_not_conclusions() {
    let a = ReproContext::build(Scale::Small, 1);
    let b = ReproContext::build(Scale::Small, 2);
    let (_, run) = experiments::by_id("fig19").expect("registered");
    let ra = run(&a);
    let rb = run(&b);
    // Different noise...
    assert_ne!(
        ra.comparisons[0].measured, rb.comparisons[0].measured,
        "different seeds must differ"
    );
    // ...same verdicts.
    assert!(ra.all_hold(), "{}", ra.render_text());
    assert!(rb.all_hold(), "{}", rb.render_text());
}
