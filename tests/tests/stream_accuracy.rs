//! Accuracy validation of the streaming engine against the exact batch
//! pipeline on a full 28-day generated workload.
//!
//! Each estimator is held to its published bound:
//! - HyperLogLog distinct counts: ≤ 2% at 2^14 registers,
//! - log-bucket quantiles: ≤ 1% relative value error (7 subbucket bits),
//! - Zipf slopes: within 0.05 of the batch fit,
//! - order-exact statistics (session count, ON-time fit, transfers per
//!   session, intra-session interarrivals): equal to round-off,
//!
//! and the sketch memory must stay flat as the trace grows.

use lsw_analysis::characterize;
use lsw_core::config::WorkloadConfig;
use lsw_core::generator::Generator;
use lsw_stream::{StreamAnalyzer, StreamConfig, StreamReport};
use lsw_trace::trace::Trace;
use lsw_trace::wms;

const DAY: u32 = 86_400;

fn generate(days: u32, clients: usize, sessions: usize, seed: u64) -> Trace {
    let config = WorkloadConfig::paper().scaled(clients, days * DAY, sessions);
    Generator::new(config, seed)
        .expect("valid config")
        .generate()
        .render()
}

fn stream(trace: &Trace, cfg: StreamConfig) -> StreamReport {
    let text = String::from_utf8(wms::format_log(trace.entries()).to_vec()).expect("ASCII log");
    let mut engine = StreamAnalyzer::new(cfg);
    engine.ingest_str(&text);
    engine.finalize()
}

fn rel_err(stream: f64, exact: f64) -> f64 {
    (stream - exact).abs() / exact.abs().max(f64::MIN_POSITIVE)
}

#[test]
fn stream_matches_batch_on_28_day_workload() {
    let trace = generate(28, 15_000, 40_000, 401);
    let batch = characterize(&trace, 1);
    let report = stream(
        &trace,
        StreamConfig {
            horizon: Some(trace.horizon()),
            ..StreamConfig::default()
        },
    );

    // Ingest accounting: everything the generator wrote must be kept.
    assert_eq!(report.accounting.kept, trace.len() as u64);
    assert_eq!(report.accounting.rejected(), 0);
    assert_eq!(report.accounting.malformed_lines, 0);
    assert_eq!(report.accounting.late_entries, 0);

    // Exact counters.
    assert_eq!(report.n_sessions, batch.session.n_sessions as u64);
    assert_eq!(report.summary.transfers, batch.summary.transfers as u64);
    assert_eq!(report.summary.client_ases, batch.summary.client_ases as u64);
    assert_eq!(report.summary.countries, batch.summary.countries as u64);
    assert_eq!(report.summary.objects, batch.summary.objects as u64);
    assert!(rel_err(report.summary.terabytes, batch.summary.terabytes()) < 1e-12);

    // HyperLogLog bounds: ≤ 2% at precision 14.
    assert!(
        rel_err(report.summary.users, batch.summary.users as f64) < 0.02,
        "users: HLL {} vs exact {}",
        report.summary.users,
        batch.summary.users
    );
    assert!(
        rel_err(report.summary.client_ips, batch.summary.client_ips as f64) < 0.02,
        "IPs: HLL {} vs exact {}",
        report.summary.client_ips,
        batch.summary.client_ips
    );

    // Zipf slopes within 0.05 of the batch fits.
    let zipf_pairs = [
        (
            "interest transfers",
            report.interest_transfers,
            batch.client.interest.transfers_fit,
        ),
        (
            "interest sessions",
            report.interest_sessions,
            batch.client.interest.sessions_fit,
        ),
        ("transfers/session", report.tps_fit, batch.session.tps_fit),
    ];
    for (name, streamed, exact) in zipf_pairs {
        let (s, e) = (streamed.expect(name), exact.expect(name));
        assert!(
            (s.alpha - e.alpha).abs() < 0.05,
            "{name}: stream alpha {} vs batch {}",
            s.alpha,
            e.alpha
        );
    }

    // Order-exact lognormal fits: identical multisets, so equality to
    // round-off (fixed-point quantum 2^-32 per observation).
    let on = report.on_fit.expect("ON fit");
    let on_batch = batch.session.on_fit.expect("batch ON fit");
    assert!(
        (on.mu - on_batch.mu).abs() < 1e-6,
        "{} vs {}",
        on.mu,
        on_batch.mu
    );
    assert!((on.sigma - on_batch.sigma).abs() < 1e-6);
    let intra = report.intra_iat_fit.expect("intra fit");
    let intra_batch = batch.session.intra_iat_fit.expect("batch intra fit");
    assert!((intra.mu - intra_batch.mu).abs() < 1e-6);
    assert!((intra.sigma - intra_batch.sigma).abs() < 1e-6);
    let len = report.transfer_length_fit.expect("length fit");
    let len_batch = batch.transfer.lengths.fit.expect("batch length fit");
    assert!((len.mu - len_batch.mu).abs() < 1e-6);
    assert!((len.sigma - len_batch.sigma).abs() < 1e-6);

    // Quantile sketch: ≤ 1% relative value error against the exact
    // empirical quantiles of the same display-transformed data.
    let mut lengths: Vec<f64> = trace
        .entries()
        .iter()
        .map(|e| e.display_duration())
        .collect();
    lengths.sort_by(f64::total_cmp);
    let exact_q = |q: f64| lengths[(q * (lengths.len() - 1) as f64).floor() as usize];
    let sq = report.transfer_length_quantiles.expect("length quantiles");
    for (q, est) in [
        (0.25, sq.p25),
        (0.50, sq.p50),
        (0.75, sq.p75),
        (0.95, sq.p95),
        (0.99, sq.p99),
    ] {
        let exact = exact_q(q);
        assert!(
            rel_err(est, exact) < 0.01,
            "p{}: sketch {est} vs exact {exact}",
            (q * 100.0) as u32
        );
    }

    // Sampled OFF-time mean: unbiased but sampled, loose bound.
    let off = report.off_mean.expect("OFF mean");
    let off_batch = batch.session.off_fit.expect("batch OFF fit").mean;
    assert!(
        rel_err(off, off_batch) < 0.20,
        "OFF mean: stream {off} vs batch {off_batch}"
    );

    // Two-regime IAT tail on the quantized CCDF: same regimes, looser
    // tolerance (bucket quantization moves individual points).
    let tail = report.iat_tail.expect("IAT tail");
    let tail_batch = batch.transfer.arrivals.tail.expect("batch tail");
    assert!((tail.alpha_short - tail_batch.alpha_short).abs() < 0.5);
    assert!((tail.alpha_long - tail_batch.alpha_long).abs() < 0.5);

    // Congestion fraction: same predicate over the same entries.
    assert!(
        (report.congestion_bound_fraction - batch.transfer.bandwidth.congestion_bound_fraction)
            .abs()
            < 1e-12
    );

    // Concurrency: the online sweep equals the batch difference-array peak.
    assert_eq!(report.concurrency.peak, batch.transfer.concurrency.peak);
}

#[test]
fn sketch_memory_stays_flat_as_trace_grows() {
    // 4x the trace days at the same rate: the sketch footprint must stay
    // (nearly) flat — that is the whole point of the streaming engine.
    let short = stream(&generate(2, 6_000, 8_000, 77), StreamConfig::default());
    let long = stream(&generate(8, 6_000, 32_000, 77), StreamConfig::default());
    assert!(
        long.summary.transfers > 3 * short.summary.transfers,
        "long trace should have ~4x the transfers ({} vs {})",
        long.summary.transfers,
        short.summary.transfers
    );
    let (a, b) = (
        short.memory.sketch_bytes as f64,
        long.memory.sketch_bytes as f64,
    );
    assert!(
        b < 1.5 * a,
        "sketch bytes grew with trace length: {a} -> {b}"
    );
    // Absolute sanity: well under the in-RAM size of the long trace.
    assert!(long.memory.sketch_bytes < 64 << 20);
}

#[test]
fn memory_budget_shrinks_sketches() {
    let trace = generate(1, 4_000, 6_000, 5);
    let unbounded = stream(&trace, StreamConfig::default());
    // 64 KB: tight enough that both the client sample (k clamps to its
    // 1024 floor, below this trace's 4 000 distinct clients) and the HLL
    // precision actually shrink.
    let bounded = stream(&trace, StreamConfig::default().with_memory_budget(64 << 10));
    assert!(bounded.memory.sketch_bytes < unbounded.memory.sketch_bytes);
    assert!(bounded.memory.sketch_bytes < 1 << 20);
    // The budgeted engine still gets the headline counts right.
    assert_eq!(bounded.summary.transfers, unbounded.summary.transfers);
    assert_eq!(bounded.n_sessions, unbounded.n_sessions);
    assert!(rel_err(bounded.summary.users, unbounded.summary.users) < 0.05);
}

#[test]
fn realistic_workload_is_shard_count_invariant() {
    let trace = generate(1, 5_000, 9_000, 13);
    let mut reports = Vec::new();
    for shards in [1usize, 2, 8] {
        let mut r = stream(
            &trace,
            StreamConfig {
                shards,
                ..StreamConfig::default()
            },
        );
        r.shards = 0;
        reports.push(r.to_json());
    }
    assert_eq!(reports[0], reports[1], "1 vs 2 shards");
    assert_eq!(reports[0], reports[2], "1 vs 8 shards");
}
