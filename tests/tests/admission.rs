//! Admission control and provisioning invariants across generator +
//! simulator (the §1 capacity-planning argument).

use lsw::core::config::WorkloadConfig;
use lsw::core::generator::Generator;
use lsw::core::Workload;
use lsw::sim::{AdmissionPolicy, NetworkConfig, ServerConfig, SimConfig, Simulator};

fn workload() -> Workload {
    let config = WorkloadConfig::paper().scaled(10_000, 86_400, 25_000);
    Generator::new(config, 31).expect("valid config").generate()
}

fn with_cap(cap: u64) -> SimConfig {
    SimConfig {
        server: ServerConfig {
            admission: AdmissionPolicy::RejectAbove {
                max_concurrent: cap,
            },
            ..ServerConfig::default()
        },
        ..SimConfig::default()
    }
}

#[test]
fn accounting_is_conserved_under_any_cap() {
    let w = workload();
    for cap in [5, 50, 500, 5_000] {
        let out = Simulator::new(with_cap(cap)).run(&w, 1);
        let s = &out.server_stats;
        assert_eq!(
            (s.accepted + s.rejected) as usize,
            w.len(),
            "cap {cap}: every request must be accepted or rejected"
        );
        assert_eq!(
            s.accepted as usize,
            out.trace.len(),
            "cap {cap}: accepted == logged"
        );
        assert!(
            s.peak_concurrent <= cap,
            "cap {cap} violated: {}",
            s.peak_concurrent
        );
    }
}

#[test]
fn denied_viewer_time_monotone_in_shrinking_cap() {
    let w = workload();
    let mut prev_denied = -1.0;
    // Sweep caps downward: denied viewer-seconds must not decrease.
    for cap in [2_000u64, 500, 100, 20] {
        let out = Simulator::new(with_cap(cap)).run(&w, 1);
        assert!(
            out.server_stats.denied_viewer_seconds >= prev_denied,
            "cap {cap}: denied time decreased"
        );
        prev_denied = out.server_stats.denied_viewer_seconds;
    }
    assert!(prev_denied > 0.0, "tightest cap produced no denials");
}

#[test]
fn uncapped_peak_bounds_all_capped_runs() {
    let w = workload();
    let base = Simulator::new(SimConfig::default()).run(&w, 1);
    let peak = base.server_stats.peak_concurrent;
    assert_eq!(base.server_stats.rejected, 0);
    // A cap at the uncapped peak rejects nothing.
    let out = Simulator::new(with_cap(peak)).run(&w, 1);
    assert_eq!(
        out.server_stats.rejected, 0,
        "cap at peak must admit everything"
    );
    // A cap below it rejects something.
    let out = Simulator::new(with_cap(peak / 2)).run(&w, 1);
    assert!(
        out.server_stats.rejected > 0,
        "cap at half peak must reject"
    );
}

#[test]
fn uplink_conservation_and_monotonicity() {
    let w = workload();
    let mut prev_bytes = 0u64;
    for uplink in [1e6, 4e6, 16e6, 64e6] {
        let out = Simulator::new(SimConfig {
            network: NetworkConfig { uplink_bps: uplink },
            path_congestion_rate: 0.0,
            ..SimConfig::default()
        })
        .run(&w, 1);
        // Physical bound: bytes <= uplink capacity × horizon.
        let bound = uplink / 8.0 * 86_400.0;
        assert!(
            (out.bytes_delivered as f64) <= bound * 1.001,
            "uplink {uplink}: {} bytes exceeds {bound}",
            out.bytes_delivered
        );
        // More capacity ⇒ at least as many bytes.
        assert!(
            out.bytes_delivered >= prev_bytes,
            "uplink {uplink}: throughput decreased"
        );
        prev_bytes = out.bytes_delivered;
    }
}

#[test]
fn rejections_shrink_observed_audience() {
    let w = workload();
    let open = Simulator::new(SimConfig::default()).run(&w, 1);
    let capped = Simulator::new(with_cap(50)).run(&w, 1);
    let users_open = open.trace.summary().users;
    let users_capped = capped.trace.summary().users;
    assert!(
        users_capped < users_open,
        "capping at 50 must lose viewers: {users_capped} vs {users_open}"
    );
}
