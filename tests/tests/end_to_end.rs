//! The full closed loop, end to end across every crate:
//! generate → simulate → serialize to WMS text → parse back → sanitize →
//! sessionize → characterize → recover the Table 2 parameters.

use lsw::analysis::characterize;
use lsw::core::config::WorkloadConfig;
use lsw::core::generator::Generator;
use lsw::sim::{SimConfig, Simulator};
use lsw::trace::sanitize::sanitize;
use lsw::trace::session::{SessionConfig, Sessions};
use lsw::trace::trace::Trace;
use lsw::trace::wms;

const HORIZON: u32 = 2 * 86_400;

fn pipeline(seed: u64) -> (Trace, lsw::trace::sanitize::SanitizeReport) {
    let config = WorkloadConfig::paper().scaled(12_000, HORIZON, 35_000);
    let workload = Generator::new(config, seed)
        .expect("valid config")
        .generate();
    let sim = Simulator::new(SimConfig {
        harvest_anomaly_rate: 5e-4,
        ..SimConfig::default()
    });
    let out = sim.run(&workload, seed);

    // Round-trip the log through the on-disk text format.
    let text = wms::format_log(out.trace.entries());
    let parsed =
        wms::parse_log(std::str::from_utf8(&text).expect("UTF-8 log")).expect("own log parses");
    assert_eq!(
        parsed.len(),
        out.trace.len(),
        "wire format must be lossless in count"
    );

    sanitize(parsed, HORIZON)
}

#[test]
fn closed_loop_recovers_table2_parameters() {
    let (trace, report) = pipeline(101);
    assert!(report.kept > 30_000, "kept {}", report.kept);

    let rep = characterize(&trace, 0);

    // Transfer length (Fig 19 / Table 2).
    let f = rep.transfer.lengths.fit.expect("length fit");
    assert!((f.mu - 4.383921).abs() < 0.15, "length mu {}", f.mu);
    assert!(
        (f.sigma - 1.427247).abs() < 0.10,
        "length sigma {}",
        f.sigma
    );

    // Intra-session interarrival (Fig 14 / Table 2).
    let f = rep.session.intra_iat_fit.expect("iat fit");
    assert!((f.mu - 4.89991).abs() < 0.30, "iat mu {}", f.mu);
    assert!((f.sigma - 1.32074).abs() < 0.25, "iat sigma {}", f.sigma);

    // Transfers per session (Fig 13 / Table 2).
    let f = rep.session.tps_fit.expect("tps fit");
    assert!((f.alpha - 2.70417).abs() < 0.55, "tps alpha {}", f.alpha);

    // Bandwidth bimodality (Fig 20).
    let b = &rep.transfer.bandwidth;
    assert!(
        (b.congestion_bound_fraction - 0.10).abs() < 0.05,
        "congestion fraction {}",
        b.congestion_bound_fraction
    );
}

#[test]
fn sanitizer_removes_exactly_the_injected_anomalies() {
    let (trace, report) = pipeline(102);
    // Everything surviving sanitization is within the horizon and valid.
    for e in trace.entries() {
        assert!(e.duration <= HORIZON);
        assert!(e.validate().is_ok());
    }
    // Whatever was rejected was rejected for the harvest-span reason or
    // not at all (the pipeline injects no other defect).
    for (reason, n) in &report.rejects {
        assert!(
            matches!(reason, lsw::trace::sanitize::RejectReason::SpansTracePeriod),
            "unexpected reject {reason:?} x{n}"
        );
    }
}

#[test]
fn pipeline_is_deterministic_per_seed() {
    let (a, _) = pipeline(103);
    let (b, _) = pipeline(103);
    assert_eq!(a.entries(), b.entries());
    let (c, _) = pipeline(104);
    assert_ne!(a.entries(), c.entries());
}

#[test]
fn session_off_anomaly_region_exists() {
    // The paper's Fig 12 anomaly: OFF times between To and 2·To come from
    // intra-session gaps misclassified as session boundaries. Since our
    // intra-session IAT has P[gap > 1500] ≈ 3%, the region must be
    // populated.
    let (trace, _) = pipeline(105);
    let sessions = Sessions::identify(&trace, SessionConfig::default());
    let in_region = sessions
        .off_times()
        .iter()
        .filter(|&&t| (1_500.0..3_000.0).contains(&t))
        .count();
    assert!(
        in_region > 50,
        "only {in_region} OFF times in the anomaly region"
    );
}

#[test]
fn cpu_audit_matches_paper_claim() {
    let (_, report) = pipeline(106);
    // §2.4: overloads extremely rare. At test scale the server is nearly
    // idle, so the claim holds with room to spare.
    assert!(report.overload_is_rare(0.999));
}
