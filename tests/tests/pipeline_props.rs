//! Property-based integration tests: random scaled configurations through
//! the whole generate → simulate → sessionize pipeline.

use lsw::core::config::WorkloadConfig;
use lsw::core::generator::Generator;
use lsw::sim::{SimConfig, Simulator};
use lsw::trace::session::{SessionConfig, Sessions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pipeline_invariants(
        n_clients in 200usize..3_000,
        horizon in 14_400u32..100_000,
        sessions in 300usize..3_000,
        seed in 0u64..1_000,
        timeout in 100.0..4_000.0f64,
    ) {
        let config = WorkloadConfig::paper().scaled(n_clients, horizon, sessions);
        let workload = Generator::new(config, seed).unwrap().generate();
        let out = Simulator::new(SimConfig::default()).run(&workload, seed);

        // Simulator conserves transfers under AcceptAll.
        prop_assert_eq!(out.trace.len(), workload.len());
        prop_assert_eq!(out.server_stats.rejected, 0);

        // Every logged entry is schema-valid and in-horizon.
        for e in out.trace.entries() {
            prop_assert!(e.validate().is_ok());
            prop_assert!(e.stop() <= horizon);
            prop_assert!(e.avg_bandwidth >= 1);
            prop_assert!((e.client.0 as usize) < n_clients);
        }

        // Sessionization partitions the transfers for any timeout.
        let s = Sessions::identify(&out.trace, SessionConfig { timeout });
        let total: u64 = s.transfers_per_session().iter().sum();
        prop_assert_eq!(total as usize, out.trace.len());

        // The sessionizer can only merge or split relative to the ground
        // truth, never invent clients.
        let truth_clients: std::collections::HashSet<u32> =
            workload.sessions().iter().map(|g| g.client.0).collect();
        for sess in s.all() {
            prop_assert!(truth_clients.contains(&sess.client.0));
        }

        // Byte accounting: logged bytes equal what the network delivered
        // (sum within rounding slack of 1 byte per transfer).
        let logged: u64 = out.trace.entries().iter().map(|e| e.bytes).sum();
        let slack = out.trace.len() as u64;
        prop_assert!(
            logged <= out.bytes_delivered + slack
                && out.bytes_delivered <= logged + slack,
            "logged {} vs delivered {}", logged, out.bytes_delivered
        );
    }

    #[test]
    fn ground_truth_sessions_approximately_recovered(
        seed in 0u64..200,
    ) {
        // With the paper's timeout, sessionized counts land near the
        // generated ground truth (splits from >To intra-session gaps are
        // a few percent; merges depend on per-client density).
        let config = WorkloadConfig::paper().scaled(6_000, 86_400, 8_000);
        let workload = Generator::new(config, seed).unwrap().generate();
        let trace = workload.render();
        let s = Sessions::identify(&trace, SessionConfig::default());
        let truth = workload.sessions().len() as f64;
        let found = s.len() as f64;
        prop_assert!(
            (found / truth - 1.0).abs() < 0.15,
            "sessionizer found {} vs ground truth {}", found, truth
        );
    }
}
