//! The live-vs-stored duality (§3.5 / §5.3 / §8), verified across crates:
//! the same measurement machinery applied to both workload kinds must
//! report mirror-image skew.

use lsw::analysis::transfer_layer;
use lsw::core::config::WorkloadConfig;
use lsw::core::generator::Generator;
use lsw::core::stored::{StoredConfig, StoredGenerator};
use lsw::stats::empirical::RankFrequency;
use lsw::stats::fit::fit_zipf_rank_frequency;
use lsw::trace::session::transfer_counts_per_client;
use lsw::trace::trace::Trace;

const HORIZON: u32 = 2 * 86_400;

fn live_trace() -> Trace {
    let config = WorkloadConfig::paper().scaled(25_000, HORIZON, 60_000);
    Generator::new(config, 55)
        .expect("valid config")
        .generate()
        .render()
}

fn stored_trace() -> Trace {
    let config = StoredConfig {
        n_clients: 25_000,
        n_objects: 500,
        horizon_secs: HORIZON,
        target_requests: 60_000,
        ..StoredConfig::default()
    };
    StoredGenerator::new(config, 55)
        .expect("valid config")
        .generate()
}

fn object_alpha(trace: &Trace) -> f64 {
    let mut counts = std::collections::HashMap::new();
    for e in trace.entries() {
        *counts.entry(e.object).or_insert(0u64) += 1;
    }
    let rf = RankFrequency::from_counts(counts.into_values().collect());
    fit_zipf_rank_frequency(&rf, Some(100.0))
        .map(|f| f.alpha)
        .unwrap_or(f64::NAN)
}

fn client_alpha(trace: &Trace) -> f64 {
    let rf = RankFrequency::from_counts(transfer_counts_per_client(trace));
    let mut body = rf.n();
    for rank in 1..=rf.n() {
        if rf.count_at(rank).unwrap_or(0) < 10 {
            body = rank.saturating_sub(1);
            break;
        }
    }
    fit_zipf_rank_frequency(&rf, Some(body.max(20) as f64))
        .map(|f| f.alpha)
        .unwrap_or(f64::NAN)
}

#[test]
fn stored_objects_are_zipf_but_clients_are_not() {
    let t = stored_trace();
    let obj = object_alpha(&t);
    let cli = client_alpha(&t);
    assert!((obj - 0.73).abs() < 0.15, "stored object alpha {obj}");
    assert!(
        cli < 0.3,
        "stored client alpha should be near-uniform, got {cli}"
    );
}

#[test]
fn live_clients_are_zipf_but_objects_are_degenerate() {
    let t = live_trace();
    let cli = client_alpha(&t);
    assert!(cli > 0.3, "live client interest alpha {cli}");
    // Only 2 live objects exist — "object popularity" has 2 points.
    assert_eq!(t.summary().objects, 2);
}

#[test]
fn length_variance_lives_in_opposite_places() {
    let live = transfer_layer::analyze_lengths(&live_trace());
    let stored = transfer_layer::analyze_lengths(&stored_trace());
    // Live: stickiness ⇒ within-object ratio ≈ 1.
    assert!(
        live.within_object_variance_ratio > 0.98,
        "live ratio {}",
        live.within_object_variance_ratio
    );
    // Stored: object sizes absorb a big share ⇒ ratio clearly below 1.
    assert!(
        stored.within_object_variance_ratio < 0.8,
        "stored ratio {}",
        stored.within_object_variance_ratio
    );
    assert!(
        live.within_object_variance_ratio - stored.within_object_variance_ratio > 0.2,
        "duality gap too small"
    );
}

#[test]
fn stored_lengths_bounded_by_objects_live_lengths_are_not() {
    // For stored media the longest transfer cannot exceed the longest
    // object; for live media length is bounded only by the event horizon.
    let stored_cfg = StoredConfig {
        n_clients: 5_000,
        n_objects: 50,
        horizon_secs: HORIZON,
        target_requests: 20_000,
        ..StoredConfig::default()
    };
    let gen = StoredGenerator::new(stored_cfg, 9).expect("valid config");
    let trace = gen.generate();
    let max_object: f64 = (0..50)
        .map(|i| gen.object_duration(lsw::trace::ids::ObjectId(i)))
        .fold(0.0, f64::max);
    for e in trace.entries() {
        assert!(
            f64::from(e.duration) <= max_object + 1.0,
            "stored transfer {} exceeds longest object {max_object}",
            e.duration
        );
    }
}
